"""Real data-parallel training through the simulated Horovod runtime.

This is the mechanistic half of the paper's accuracy claim: the
distributed training path must compute *exactly* the gradients
synchronous SGD specifies.  Here, ``world`` replicas of
:class:`~repro.npnn.model.MiniDeepLab` each process their shard of every
global batch, their real numpy gradients travel through the actual
:class:`~repro.horovod.runtime.HorovodRuntime` (negotiation, fusion
packing, ring allreduce over the simulated Summit fabric), and each
replica applies the averaged result.

Two properties are load-bearing (and tested):

* **replica consistency** — the ring allreduce is bitwise identical
  across ranks, so replicas that start identical stay identical forever;
* **serial equivalence** — the allreduced gradient equals the mean of
  the per-shard gradients computed sequentially (float64: to ~1e-12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster import Fabric, build_summit
from repro.data.voc import VOCMini
from repro.horovod.config import HorovodConfig
from repro.horovod.runtime import HorovodRuntime
from repro.mpi.communicator import Comm
from repro.mpi.libraries import MVAPICH2_GDR
from repro.npnn.loss import softmax_cross_entropy
from repro.npnn.metrics import confusion_matrix, mean_iou
from repro.npnn.model import MiniDeepLab
from repro.npnn.optim import SGD
from repro.sim import Environment
from repro.sim.rng import stable_seed
from repro.sim.units import MiB

__all__ = ["DataParallelTrainer", "ParallelConfig", "StepResult"]


@dataclass(frozen=True)
class ParallelConfig:
    """Hyperparameters of one data-parallel npnn run."""

    world: int = 4
    per_replica_batch: int = 4
    lr: float = 0.05
    momentum: float = 0.9
    width: int = 8
    fusion_threshold_bytes: int = 1 * MiB
    #: Collective used for gradient averaging.  ``"recursive_doubling"``
    #: reduces every element in the same pairwise order regardless of
    #: fusion layout, so fused and unfused runs are bit-identical.
    allreduce_algorithm: str = "ring"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.world < 1:
            raise ValueError("world must be >= 1")
        if self.per_replica_batch < 1:
            raise ValueError("per_replica_batch must be >= 1")

    @property
    def global_batch(self) -> int:
        """World × per-replica batch."""
        return self.world * self.per_replica_batch


@dataclass
class StepResult:
    """One optimizer step's observables."""

    step: int
    mean_loss: float
    grad_norm: float
    allreduce_sim_seconds: float


class DataParallelTrainer:
    """Synchronous data-parallel trainer over real numpy replicas."""

    def __init__(self, dataset: VOCMini, config: ParallelConfig) -> None:
        self.dataset = dataset
        self.config = config
        self.replicas = [
            MiniDeepLab(
                num_classes=dataset.num_classes,
                width=config.width,
                seed=config.seed,
            )
            for _ in range(config.world)
        ]
        self.optimizers = [
            SGD(lr=config.lr, momentum=config.momentum)
            for _ in range(config.world)
        ]
        self._batch_rng = np.random.default_rng(
            stable_seed("dp-batches", config.seed)
        )
        self.history: list[StepResult] = []

    # -- gradient machinery -----------------------------------------------------
    def local_gradients(self, rank: int, indices: list[int]):
        """(loss, grads dict) for one replica on its shard."""
        images, masks = self.dataset.batch(indices)
        x = np.ascontiguousarray(images.transpose(0, 3, 1, 2)).astype(np.float64)
        model = self.replicas[rank]
        model.zero_grads()
        logits = model.forward(x)
        loss, dlogits = softmax_cross_entropy(logits, masks)
        model.backward(dlogits)
        grads = {name: g.copy() for name, _, g in model.named_params()}
        return loss, grads

    def allreduce_gradients(self, per_rank: list[dict]) -> tuple[list[dict], float]:
        """Average gradient dicts through the Horovod runtime.

        Returns per-rank averaged dicts plus the simulated seconds the
        exchange took on the modeled fabric.  With ``world == 1`` the
        input is returned unchanged.
        """
        world = len(per_rank)
        if world == 1:
            return per_rank, 0.0
        env = Environment()
        topo = build_summit(env, nodes=max(1, math.ceil(world / 6)))
        comm = Comm(Fabric(topo), topo.gpus()[:world], MVAPICH2_GDR)
        cfg = HorovodConfig.default().with_(
            fusion_threshold_bytes=self.config.fusion_threshold_bytes,
            cycle_time_s=1e-4,
            allreduce_algorithm=self.config.allreduce_algorithm,
        )
        runtime = HorovodRuntime(comm, cfg)
        names = list(per_rank[0])
        results: list[dict] = [dict() for _ in range(world)]

        def worker(env, rank):
            events = [
                (name, runtime.submit(rank, name, per_rank[rank][name]))
                for name in names
            ]
            for name, ev in events:
                results[rank][name] = yield ev

        procs = [env.process(worker(env, r)) for r in range(world)]
        env.run(until=env.all_of(procs))
        runtime.shutdown()
        env.run()
        self.last_runtime_stats = runtime.stats
        return results, env.now

    # -- training loop -------------------------------------------------------------
    def global_batch_indices(self, n_samples: int) -> list[list[int]]:
        """Draw one global batch and shard it contiguously by rank."""
        picks = self._batch_rng.integers(
            0, n_samples, size=self.config.global_batch
        )
        b = self.config.per_replica_batch
        return [
            [int(i) for i in picks[r * b:(r + 1) * b]]
            for r in range(self.config.world)
        ]

    def step(self, n_samples: int = 256) -> StepResult:
        """One synchronous step over a fresh global batch."""
        shards = self.global_batch_indices(n_samples)
        losses, grads = [], []
        for rank in range(self.config.world):
            loss, g = self.local_gradients(rank, shards[rank])
            losses.append(loss)
            grads.append(g)
        averaged, sim_seconds = self.allreduce_gradients(grads)
        for rank in range(self.config.world):
            self.optimizers[rank].step(
                self.replicas[rank], grads_override=averaged[rank]
            )
        norm = float(
            np.sqrt(sum((g ** 2).sum() for g in averaged[0].values()))
        )
        result = StepResult(
            step=len(self.history),
            mean_loss=float(np.mean(losses)),
            grad_norm=norm,
            allreduce_sim_seconds=sim_seconds,
        )
        self.history.append(result)
        return result

    def train(self, steps: int, n_samples: int = 256) -> list[StepResult]:
        """Run ``steps`` synchronous steps; returns the step history."""
        for _ in range(steps):
            self.step(n_samples=n_samples)
        return self.history

    # -- verification helpers ---------------------------------------------------
    def replicas_in_sync(self) -> bool:
        """True when all replicas hold bitwise-identical parameters."""
        ref = {name: p for name, p, _ in self.replicas[0].named_params()}
        for replica in self.replicas[1:]:
            for name, p, _ in replica.named_params():
                if not np.array_equal(ref[name], p):
                    return False
        return True

    def evaluate(self, indices: list[int]) -> float:
        """mIOU of replica 0 over the given sample indices."""
        images, masks = self.dataset.batch(indices)
        x = np.ascontiguousarray(images.transpose(0, 3, 1, 2)).astype(np.float64)
        pred = self.replicas[0].predict(x)
        return mean_iou(
            confusion_matrix(pred, masks, self.dataset.num_classes)
        )
