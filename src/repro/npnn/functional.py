"""Vectorized functional kernels: convolution and bilinear resize.

Convolution uses the im2col strategy (per the scientific-python guidance:
vectorize the inner loops away).  Geometry follows TensorFlow ``SAME``
padding so layer shapes line up with :mod:`repro.models.layers`:
``out = ceil(in / stride)`` and the total padding splits floor/ceil
between the leading and trailing edge.

Each forward returns whatever context its backward needs; backwards are
exact (validated by finite-difference gradcheck in the tests), including
through dilation, stride and the zero-padding scatter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bilinear_resize",
    "bilinear_resize_backward",
    "conv2d",
    "conv2d_backward",
    "conv_geometry",
    "depthwise_conv2d",
    "depthwise_conv2d_backward",
]


def conv_geometry(in_hw: tuple[int, int], k: int, stride: int,
                  dilation: int) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
    """SAME-padding geometry: (out_hw, pad_before, pad_after)."""
    if k < 1 or stride < 1 or dilation < 1:
        raise ValueError("kernel, stride and dilation must be >= 1")
    eff = (k - 1) * dilation + 1
    out_hw, before, after = [], [], []
    for dim in in_hw:
        out = -(-dim // stride)
        total = max(0, (out - 1) * stride + eff - dim)
        out_hw.append(out)
        before.append(total // 2)
        after.append(total - total // 2)
    return tuple(out_hw), tuple(before), tuple(after)


def _col_indices(c: int, hw: tuple[int, int], k: int, stride: int, dilation: int,
                 out_hw: tuple[int, int]):
    """Fancy-index arrays mapping padded input -> column matrix.

    Returns (ci, yi, xi), each of shape (C*k*k, out_h*out_w).
    """
    oy, ox = np.meshgrid(
        np.arange(out_hw[0]) * stride, np.arange(out_hw[1]) * stride,
        indexing="ij",
    )
    oy, ox = oy.ravel(), ox.ravel()  # (L,)
    ky, kx = np.meshgrid(
        np.arange(k) * dilation, np.arange(k) * dilation, indexing="ij"
    )
    ky, kx = ky.ravel(), kx.ravel()  # (k*k,)
    ci = np.repeat(np.arange(c), k * k)[:, None]  # (C*k*k, 1)
    yi = np.tile(ky, c)[:, None] + oy[None, :]  # (C*k*k, L)
    xi = np.tile(kx, c)[:, None] + ox[None, :]
    return np.broadcast_to(ci, yi.shape), yi, xi


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           stride: int = 1, dilation: int = 1):
    """2-D convolution, NCHW, SAME padding.

    ``weight`` has shape (F, C, k, k).  Returns ``(out, ctx)`` where
    ``ctx`` feeds :func:`conv2d_backward`.
    """
    n, c, h, w = x.shape
    f, cw, k, k2 = weight.shape
    if cw != c or k != k2:
        raise ValueError(f"weight shape {weight.shape} mismatches input C={c}")
    out_hw, before, after = conv_geometry((h, w), k, stride, dilation)
    xp = np.pad(x, ((0, 0), (0, 0), (before[0], after[0]), (before[1], after[1])))
    ci, yi, xi = _col_indices(c, (h, w), k, stride, dilation, out_hw)
    cols = xp[:, ci, yi, xi]  # (N, C*k*k, L)
    wmat = weight.reshape(f, -1)
    out = np.matmul(wmat, cols)  # (N, F, L)
    if bias is not None:
        out += bias[:, None]
    out = out.reshape(n, f, *out_hw)
    ctx = (cols, xp.shape, (ci, yi, xi), weight, stride, dilation, x.shape,
           (before, after))
    return out, ctx


def conv2d_backward(dout: np.ndarray, ctx):
    """Gradients of :func:`conv2d`: returns (dx, dweight, dbias)."""
    cols, xp_shape, (ci, yi, xi), weight, stride, dilation, x_shape, pads = ctx
    n, f = dout.shape[:2]
    dflat = dout.reshape(n, f, -1)  # (N, F, L)
    wmat = weight.reshape(f, -1)
    dw = np.einsum("nfl,nkl->fk", dflat, cols).reshape(weight.shape)
    db = dflat.sum(axis=(0, 2))
    dcols = np.matmul(wmat.T, dflat)  # (N, C*k*k, L)
    dxp = np.zeros((n, *xp_shape[1:]), dtype=dout.dtype)
    for i in range(n):  # N is small; np.add.at needs per-sample scatter
        np.add.at(dxp[i], (ci, yi, xi), dcols[i])
    (pb, _pa) = pads
    h, w = x_shape[2], x_shape[3]
    dx = dxp[:, :, pb[0]:pb[0] + h, pb[1]:pb[1] + w]
    return dx, dw, db


def depthwise_conv2d(x: np.ndarray, weight: np.ndarray, stride: int = 1,
                     dilation: int = 1):
    """Depthwise 2-D convolution (channel multiplier 1), SAME padding.

    ``weight`` has shape (C, k, k): one spatial filter per channel —
    DLv3+'s separable-convolution motif.  Returns ``(out, ctx)``.
    """
    n, c, h, w = x.shape
    cw, k, k2 = weight.shape
    if cw != c or k != k2:
        raise ValueError(f"weight shape {weight.shape} mismatches input C={c}")
    out_hw, before, after = conv_geometry((h, w), k, stride, dilation)
    xp = np.pad(x, ((0, 0), (0, 0), (before[0], after[0]), (before[1], after[1])))
    ci, yi, xi = _col_indices(c, (h, w), k, stride, dilation, out_hw)
    cols = xp[:, ci, yi, xi].reshape(n, c, k * k, -1)  # (N, C, k*k, L)
    out = np.einsum("nckl,ck->ncl", cols, weight.reshape(c, -1))
    out = out.reshape(n, c, *out_hw)
    ctx = (cols, xp.shape, (ci, yi, xi), weight, x.shape, (before, after))
    return out, ctx


def depthwise_conv2d_backward(dout: np.ndarray, ctx):
    """Gradients of :func:`depthwise_conv2d`: returns (dx, dweight)."""
    cols, xp_shape, (ci, yi, xi), weight, x_shape, pads = ctx
    n, c = dout.shape[:2]
    k2 = weight.shape[1] * weight.shape[2]
    dflat = dout.reshape(n, c, -1)  # (N, C, L)
    dw = np.einsum("ncl,nckl->ck", dflat, cols).reshape(weight.shape)
    # (N, C, k*k, L) gradient of the column matrix.
    dcols = dflat[:, :, None, :] * weight.reshape(1, c, k2, 1)
    dxp = np.zeros((n, *xp_shape[1:]), dtype=dout.dtype)
    dcols_flat = dcols.reshape(n, c * k2, -1)
    for i in range(n):
        np.add.at(dxp[i], (ci, yi, xi), dcols_flat[i])
    (pb, _pa) = pads
    h, w = x_shape[2], x_shape[3]
    dx = dxp[:, :, pb[0]:pb[0] + h, pb[1]:pb[1] + w]
    return dx, dw


def _resize_weights(in_dim: int, out_dim: int):
    """Half-pixel (align_corners=False) source indices and weights."""
    pos = (np.arange(out_dim) + 0.5) * in_dim / out_dim - 0.5
    lo = np.floor(pos).astype(int)
    frac = pos - lo
    lo = np.clip(lo, 0, in_dim - 1)
    hi = np.clip(lo + 1, 0, in_dim - 1)
    return lo, hi, frac


def bilinear_resize(x: np.ndarray, out_hw: tuple[int, int]):
    """Bilinear NCHW resize (half-pixel centers); returns (out, ctx)."""
    if min(out_hw) < 1:
        raise ValueError(f"bad target size {out_hw}")
    y0, y1, fy = _resize_weights(x.shape[2], out_hw[0])
    x0, x1, fx = _resize_weights(x.shape[3], out_hw[1])
    fy = fy[:, None]
    fx = fx[None, :]
    tl = x[:, :, y0[:, None], x0[None, :]]
    tr = x[:, :, y0[:, None], x1[None, :]]
    bl = x[:, :, y1[:, None], x0[None, :]]
    br = x[:, :, y1[:, None], x1[None, :]]
    out = (
        tl * (1 - fy) * (1 - fx)
        + tr * (1 - fy) * fx
        + bl * fy * (1 - fx)
        + br * fy * fx
    )
    ctx = (x.shape, (y0, y1, fy), (x0, x1, fx))
    return out, ctx


def bilinear_resize_backward(dout: np.ndarray, ctx) -> np.ndarray:
    """Gradient of :func:`bilinear_resize` w.r.t. its input."""
    x_shape, (y0, y1, fy), (x0, x1, fx) = ctx
    dx = np.zeros((dout.shape[0], dout.shape[1], x_shape[2], x_shape[3]),
                  dtype=dout.dtype)
    yy0 = y0[:, None]
    yy1 = y1[:, None]
    xx0 = np.broadcast_to(x0[None, :], (len(y0), len(x0)))
    xx1 = np.broadcast_to(x1[None, :], (len(y0), len(x1)))
    yy0b = np.broadcast_to(yy0, xx0.shape)
    yy1b = np.broadcast_to(yy1, xx0.shape)
    for n in range(dout.shape[0]):
        for c in range(dout.shape[1]):
            d = dout[n, c]
            np.add.at(dx[n, c], (yy0b, xx0), d * (1 - fy) * (1 - fx))
            np.add.at(dx[n, c], (yy0b, xx1), d * (1 - fy) * fx)
            np.add.at(dx[n, c], (yy1b, xx0), d * fy * (1 - fx))
            np.add.at(dx[n, c], (yy1b, xx1), d * fy * fx)
    return dx
