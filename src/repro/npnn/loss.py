"""Per-pixel softmax cross-entropy (the segmentation training loss)."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_cross_entropy"]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray,
                          ignore_label: int | None = None):
    """Mean per-pixel cross-entropy and its gradient.

    Parameters
    ----------
    logits:
        (N, C, H, W) raw scores.
    labels:
        (N, H, W) integer class ids.
    ignore_label:
        Pixels with this label contribute neither loss nor gradient
        (VOC's 255 boundary convention).

    Returns ``(loss, dlogits)`` where the loss is averaged over counted
    pixels and ``dlogits`` is the exact gradient of that average.
    """
    n, c, h, w = logits.shape
    if labels.shape != (n, h, w):
        raise ValueError(f"labels shape {labels.shape} mismatches logits {logits.shape}")
    valid = np.ones(labels.shape, dtype=bool)
    if ignore_label is not None:
        valid = labels != ignore_label
    count = int(valid.sum())
    if count == 0:
        return 0.0, np.zeros_like(logits)
    safe_labels = np.where(valid, labels, 0)
    if safe_labels.min() < 0 or safe_labels.max() >= c:
        raise ValueError("label id out of range")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    picked = np.take_along_axis(probs, safe_labels[:, None], axis=1)[:, 0]
    loss = float(-(np.log(np.maximum(picked, 1e-300)) * valid).sum() / count)
    dlogits = probs.copy()
    onehot_idx = safe_labels[:, None]
    np.put_along_axis(
        dlogits,
        onehot_idx,
        np.take_along_axis(dlogits, onehot_idx, axis=1) - 1.0,
        axis=1,
    )
    dlogits *= valid[:, None] / count
    return loss, dlogits
