"""MiniDeepLab: the laptop-scale analogue of DeepLab-v3+.

Same architectural motifs at 1/16 the resolution and a fraction of the
width: a strided encoder (output stride 4), an ASPP block with parallel
atrous branches (rates 1, 2, 4), and a decoder that upsamples, fuses a
reduced low-level feature, refines, classifies per pixel and upsamples to
input resolution.  ~60k parameters — small enough to gradcheck, big
enough to genuinely learn VOC-mini.
"""

from __future__ import annotations

import numpy as np

from repro.npnn.functional import bilinear_resize, bilinear_resize_backward
from repro.npnn.layers import (
    BatchNorm2D,
    Concat,
    Conv2D,
    DepthwiseConv2D,
    Layer,
    ReLU,
    Sequential,
)
from repro.sim.rng import stable_seed

__all__ = ["MiniDeepLab"]


def _conv_bn_relu(name: str, in_ch: int, out_ch: int, k: int, rng,
                  stride: int = 1, dilation: int = 1, dtype=np.float64,
                  separable: bool = False) -> Sequential:
    if separable and k > 1:
        # DLv3+'s actual motif: depthwise (possibly atrous) + pointwise.
        return Sequential([
            (f"{name}_dw", DepthwiseConv2D(in_ch, k, stride=stride,
                                           dilation=dilation, rng=rng,
                                           dtype=dtype)),
            (f"{name}_dw_bn", BatchNorm2D(in_ch, dtype=dtype)),
            (f"{name}_dw_relu", ReLU()),
            (f"{name}_pw", Conv2D(in_ch, out_ch, 1, bias=False, rng=rng,
                                  dtype=dtype)),
            (f"{name}_pw_bn", BatchNorm2D(out_ch, dtype=dtype)),
            (f"{name}_pw_relu", ReLU()),
        ])
    return Sequential([
        (f"{name}_conv", Conv2D(in_ch, out_ch, k, stride=stride,
                                dilation=dilation, bias=False, rng=rng,
                                dtype=dtype)),
        (f"{name}_bn", BatchNorm2D(out_ch, dtype=dtype)),
        (f"{name}_relu", ReLU()),
    ])


class MiniDeepLab(Layer):
    """Encoder + ASPP + decoder segmentation network (NCHW)."""

    def __init__(self, num_classes: int = 4, width: int = 8, seed: int = 0,
                 dtype=np.float64, separable: bool = False) -> None:
        super().__init__()
        if width < 2:
            raise ValueError("width must be >= 2")
        rng = np.random.default_rng(stable_seed("minideeplab", seed))
        w = width
        self.num_classes = num_classes
        self.separable = separable
        # Encoder: 32x32 -> 16x16 (low level) -> 8x8.
        self.stem = _conv_bn_relu("stem", 3, w, 3, rng, dtype=dtype)
        self.down1 = _conv_bn_relu("down1", w, 2 * w, 3, rng, stride=2, dtype=dtype)
        self.down2 = _conv_bn_relu("down2", 2 * w, 4 * w, 3, rng, stride=2, dtype=dtype)
        # ASPP: three parallel branches at rates 1 (1x1), 2, 4.  With
        # ``separable`` the atrous branches use the true DLv3+ motif
        # (depthwise atrous + pointwise).
        self.aspp0 = _conv_bn_relu("aspp0", 4 * w, w, 1, rng, dtype=dtype)
        self.aspp1 = _conv_bn_relu("aspp1", 4 * w, w, 3, rng, dilation=2,
                                   dtype=dtype, separable=separable)
        self.aspp2 = _conv_bn_relu("aspp2", 4 * w, w, 3, rng, dilation=4,
                                   dtype=dtype, separable=separable)
        self.aspp_concat = Concat()
        self.proj = _conv_bn_relu("proj", 3 * w, 2 * w, 1, rng, dtype=dtype)
        # Decoder.
        self.low = _conv_bn_relu("low", 2 * w, w, 1, rng, dtype=dtype)
        self.dec_concat = Concat()
        self.refine = _conv_bn_relu("refine", 3 * w, 2 * w, 3, rng,
                                    dtype=dtype, separable=separable)
        self.logits = Conv2D(2 * w, num_classes, 1, bias=True, rng=rng, dtype=dtype)
        self._modules = [
            ("stem", self.stem), ("down1", self.down1), ("down2", self.down2),
            ("aspp0", self.aspp0), ("aspp1", self.aspp1), ("aspp2", self.aspp2),
            ("proj", self.proj), ("low", self.low), ("refine", self.refine),
            ("logits", self.logits),
        ]
        self._up1_ctx = None
        self._up2_ctx = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != 3:
            raise ValueError(f"expected NCHW RGB input, got shape {x.shape}")
        s = self.stem.forward(x)
        low = self.down1.forward(s)
        enc = self.down2.forward(low)
        a = self.aspp_concat.forward([
            self.aspp0.forward(enc),
            self.aspp1.forward(enc),
            self.aspp2.forward(enc),
        ])
        p = self.proj.forward(a)
        up1, self._up1_ctx = bilinear_resize(p, low.shape[2:])
        lowf = self.low.forward(low)
        d = self.dec_concat.forward([up1, lowf])
        r = self.refine.forward(d)
        logit = self.logits.forward(r)
        out, self._up2_ctx = bilinear_resize(logit, x.shape[2:])
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dlogit = bilinear_resize_backward(dout, self._up2_ctx)
        dr = self.logits.backward(dlogit)
        dd = self.refine.backward(dr)
        dup1, dlowf = self.dec_concat.backward(dd)
        dlow_branch = self.low.backward(dlowf)
        dp = bilinear_resize_backward(dup1, self._up1_ctx)
        da = self.proj.backward(dp)
        da0, da1, da2 = self.aspp_concat.backward(da)
        denc = (
            self.aspp0.backward(da0)
            + self.aspp1.backward(da1)
            + self.aspp2.backward(da2)
        )
        dlow = self.down2.backward(denc) + dlow_branch
        ds = self.down1.backward(dlow)
        return self.stem.backward(ds)

    def named_params(self, prefix: str = ""):
        for name, module in self._modules:
            yield from module.named_params(f"{prefix}{name}/")

    def zero_grads(self) -> None:
        for _, module in self._modules:
            module.zero_grads()

    def set_training(self, training: bool) -> None:
        self.training = training
        for _, module in self._modules:
            module.set_training(training)

    # -- convenience -----------------------------------------------------------
    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class-id map (N, H, W) for NCHW ``images`` in eval mode."""
        was_training = self.training
        self.set_training(False)
        out = self.forward(images)
        self.set_training(was_training)
        return out.argmax(axis=1)

    @property
    def num_params(self) -> int:
        """Total trainable parameters."""
        return sum(p.size for _, p, _ in self.named_params())
