"""SGD with momentum (the DeepLab optimizer)."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD"]


class SGD:
    """Momentum SGD over a model's ``named_params()``.

    ``v ← μ·v + g ;  p ← p − lr·v`` — the classic (non-Nesterov) form
    TensorFlow's ``MomentumOptimizer`` implements, which DeepLab uses
    with μ = 0.9.  Velocities are keyed by qualified parameter name, so
    one optimizer instance follows one model instance.
    """

    def __init__(self, lr: float = 0.01, momentum: float = 0.9,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be > 0")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, model, lr: float | None = None,
             grads_override: dict[str, np.ndarray] | None = None) -> None:
        """Apply one update.

        ``grads_override`` (keyed like ``named_params`` names) substitutes
        external gradients — this is how the data-parallel trainer applies
        *allreduced* gradients instead of the local ones.
        """
        eff_lr = self.lr if lr is None else lr
        for name, param, grad in model.named_params():
            g = grads_override[name] if grads_override is not None else grad
            if g.shape != param.shape:
                raise ValueError(f"gradient shape mismatch for {name}")
            if self.weight_decay and param.ndim > 1:
                g = g + self.weight_decay * param
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(param)
                self._velocity[name] = v
            v *= self.momentum
            v += g
            param -= eff_lr * v
