"""Terminal visualization of segmentation masks.

Renders class-id maps as character grids so the real-training example can
*show* predictions next to ground truth without any plotting dependency.
Class 0 (background) renders as ``.``; foreground classes cycle through a
fixed glyph alphabet.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_mask", "side_by_side"]

GLYPHS = ".#o*+x%@&$"


def render_mask(mask: np.ndarray, max_classes: int = len(GLYPHS)) -> str:
    """Render an (H, W) integer mask as a character grid."""
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got shape {mask.shape}")
    if mask.min() < 0 or mask.max() >= max_classes:
        raise ValueError(
            f"mask classes must be in [0, {max_classes}); got "
            f"[{mask.min()}, {mask.max()}]"
        )
    return "\n".join(
        "".join(GLYPHS[int(c)] for c in row) for row in np.asarray(mask)
    )


def side_by_side(left: np.ndarray, right: np.ndarray,
                 titles: tuple[str, str] = ("truth", "prediction"),
                 gap: str = "   ") -> str:
    """Render two equally sized masks next to each other with titles."""
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    l_lines = render_mask(left).splitlines()
    r_lines = render_mask(right).splitlines()
    width = left.shape[1]
    header = f"{titles[0]:<{width}}{gap}{titles[1]}"
    body = "\n".join(f"{a}{gap}{b}" for a, b in zip(l_lines, r_lines))
    return f"{header}\n{body}"
