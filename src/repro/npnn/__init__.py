"""npnn: a real, pure-numpy neural-network substrate.

Everything else in the reproduction *models* computation; this package
*performs* it.  It exists to close the loop the convergence model cannot:
prove mechanically that the distributed training path — sharding,
backward, gradient submission through the Horovod runtime, ring
allreduce, averaged update — computes exactly the gradients synchronous
SGD specifies, and genuinely learns a segmentation task (real mIOU on
:class:`repro.data.voc.VOCMini`).

Contents:

* :mod:`repro.npnn.functional` — im2col convolution (stride + dilation,
  SAME padding), bilinear resize, both with exact backward passes
  (gradcheck-tested);
* :mod:`repro.npnn.layers` — Conv2D / BatchNorm2D / ReLU / containers
  with a params/grads dict API;
* :mod:`repro.npnn.model` — MiniDeepLab: a scaled-down encoder + ASPP +
  decoder with the same architectural motifs as DLv3+;
* :mod:`repro.npnn.loss` / :mod:`repro.npnn.optim` /
  :mod:`repro.npnn.metrics` — per-pixel softmax cross-entropy,
  SGD+momentum, confusion-matrix mIOU;
* :mod:`repro.npnn.parallel` — the data-parallel trainer that moves real
  gradients through the simulated Horovod runtime.

Arrays are NCHW, float64 by default (so distributed-vs-serial equality
is checkable to 1e-12).
"""

from repro.npnn.layers import (
    BatchNorm2D,
    Concat,
    Conv2D,
    DepthwiseConv2D,
    ReLU,
    Sequential,
)
from repro.npnn.loss import softmax_cross_entropy
from repro.npnn.metrics import confusion_matrix, mean_iou, pixel_accuracy
from repro.npnn.model import MiniDeepLab
from repro.npnn.optim import SGD
from repro.npnn.parallel import DataParallelTrainer, ParallelConfig

__all__ = [
    "BatchNorm2D",
    "Concat",
    "Conv2D",
    "DataParallelTrainer",
    "DepthwiseConv2D",
    "MiniDeepLab",
    "ParallelConfig",
    "ReLU",
    "SGD",
    "Sequential",
    "confusion_matrix",
    "mean_iou",
    "pixel_accuracy",
    "softmax_cross_entropy",
]
