"""Segmentation metrics: confusion matrix, mIOU, pixel accuracy.

mIOU here is exactly the PASCAL VOC definition the paper reports (80.8%):
per-class intersection-over-union from the global confusion matrix,
averaged over classes that appear in either prediction or ground truth.
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "mean_iou", "pixel_accuracy"]


def confusion_matrix(pred: np.ndarray, target: np.ndarray, num_classes: int,
                     ignore_label: int | None = None) -> np.ndarray:
    """(num_classes, num_classes) matrix: rows = target, cols = prediction."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    if num_classes < 1:
        raise ValueError("num_classes must be >= 1")
    p = pred.ravel()
    t = target.ravel()
    if ignore_label is not None:
        keep = t != ignore_label
        p, t = p[keep], t[keep]
    if len(t) and (t.min() < 0 or t.max() >= num_classes):
        raise ValueError("target label out of range")
    if len(p) and (p.min() < 0 or p.max() >= num_classes):
        raise ValueError("prediction label out of range")
    return np.bincount(
        t * num_classes + p, minlength=num_classes * num_classes
    ).reshape(num_classes, num_classes)


def mean_iou(matrix: np.ndarray) -> float:
    """Mean IOU over classes present in target or prediction."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("confusion matrix must be square")
    intersection = np.diag(matrix).astype(float)
    union = matrix.sum(axis=0) + matrix.sum(axis=1) - intersection
    present = union > 0
    if not present.any():
        return 0.0
    return float((intersection[present] / union[present]).mean())


def pixel_accuracy(matrix: np.ndarray) -> float:
    """Fraction of counted pixels predicted correctly."""
    total = matrix.sum()
    if total == 0:
        return 0.0
    return float(np.diag(matrix).sum() / total)
