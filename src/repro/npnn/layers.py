"""Trainable layers with a params/grads dict API.

Every layer exposes ``params`` and ``grads`` (same keys), ``forward`` /
``backward``, and ``named_params()`` for the optimizer and the
data-parallel gradient exchange.  ``backward`` *accumulates* into
``grads``; call :meth:`Layer.zero_grads` between steps.

Initialization is deterministic from an explicit ``rng`` so that
data-parallel replicas constructed with the same seed are bitwise
identical — the property the parallel-equivalence tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.npnn.functional import (
    conv2d,
    conv2d_backward,
    depthwise_conv2d,
    depthwise_conv2d_backward,
)

__all__ = [
    "BatchNorm2D",
    "Concat",
    "Conv2D",
    "DepthwiseConv2D",
    "Layer",
    "ReLU",
    "Sequential",
]


class Layer:
    """Base layer: parameter bookkeeping plus the forward/backward pair."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return the input gradient."""
        raise NotImplementedError

    def named_params(self, prefix: str = ""):
        """Yield (qualified_name, param_array, grad_array) triples."""
        for name in self.params:
            yield f"{prefix}{name}", self.params[name], self.grads[name]

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for g in self.grads.values():
            g[...] = 0.0

    def set_training(self, training: bool) -> None:
        """Switch between train and eval behavior (BN statistics)."""
        self.training = training


class Conv2D(Layer):
    """Convolution with SAME padding, stride and dilation (He init)."""

    def __init__(self, in_ch: int, out_ch: int, k: int = 3, stride: int = 1,
                 dilation: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None,
                 dtype=np.float64) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = np.sqrt(2.0 / (in_ch * k * k))
        self.stride = stride
        self.dilation = dilation
        self.params["weight"] = (
            rng.standard_normal((out_ch, in_ch, k, k)) * scale
        ).astype(dtype)
        self.grads["weight"] = np.zeros_like(self.params["weight"])
        if bias:
            self.params["bias"] = np.zeros(out_ch, dtype=dtype)
            self.grads["bias"] = np.zeros(out_ch, dtype=dtype)
        self._ctx = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._ctx = conv2d(
            x, self.params["weight"], self.params.get("bias"),
            stride=self.stride, dilation=self.dilation,
        )
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dx, dw, db = conv2d_backward(dout, self._ctx)
        self.grads["weight"] += dw
        if "bias" in self.grads:
            self.grads["bias"] += db
        return dx


class DepthwiseConv2D(Layer):
    """Depthwise convolution (channel multiplier 1), SAME padding.

    Combined with a 1×1 :class:`Conv2D` this forms the separable
    convolution DLv3+ is built from; ``dilation > 1`` makes it atrous.
    """

    def __init__(self, channels: int, k: int = 3, stride: int = 1,
                 dilation: int = 1, rng: np.random.Generator | None = None,
                 dtype=np.float64) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = np.sqrt(2.0 / (k * k))
        self.stride = stride
        self.dilation = dilation
        self.params["depthwise_kernel"] = (
            rng.standard_normal((channels, k, k)) * scale
        ).astype(dtype)
        self.grads["depthwise_kernel"] = np.zeros_like(
            self.params["depthwise_kernel"]
        )
        self._ctx = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._ctx = depthwise_conv2d(
            x, self.params["depthwise_kernel"],
            stride=self.stride, dilation=self.dilation,
        )
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dx, dw = depthwise_conv2d_backward(dout, self._ctx)
        self.grads["depthwise_kernel"] += dw
        return dx


class BatchNorm2D(Layer):
    """Batch normalization over (N, H, W) with running eval statistics."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5,
                 dtype=np.float64) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.params["gamma"] = np.ones(channels, dtype=dtype)
        self.params["beta"] = np.zeros(channels, dtype=dtype)
        self.grads["gamma"] = np.zeros(channels, dtype=dtype)
        self.grads["beta"] = np.zeros(channels, dtype=dtype)
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)
        self._ctx = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        g = self.params["gamma"][None, :, None, None]
        b = self.params["beta"][None, :, None, None]
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv[None, :, None, None]
        self._ctx = (xhat, inv, x.shape)
        return g * xhat + b

    def backward(self, dout: np.ndarray) -> np.ndarray:
        xhat, inv, shape = self._ctx
        n = shape[0] * shape[2] * shape[3]
        g = self.params["gamma"][None, :, None, None]
        self.grads["gamma"] += (dout * xhat).sum(axis=(0, 2, 3))
        self.grads["beta"] += dout.sum(axis=(0, 2, 3))
        dxhat = dout * g
        if not self.training:
            return dxhat * inv[None, :, None, None]
        s1 = dxhat.sum(axis=(0, 2, 3))[None, :, None, None]
        s2 = (dxhat * xhat).sum(axis=(0, 2, 3))[None, :, None, None]
        return (inv[None, :, None, None] / n) * (n * dxhat - s1 - xhat * s2)


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return dout * self._mask


class Sequential(Layer):
    """A chain of layers with a shared params namespace."""

    def __init__(self, layers: list[tuple[str, Layer]]) -> None:
        super().__init__()
        names = [name for name, _ in layers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate layer names in Sequential")
        self.layers = layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        for _, layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for _, layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def named_params(self, prefix: str = ""):
        for name, layer in self.layers:
            yield from layer.named_params(f"{prefix}{name}/")

    def zero_grads(self) -> None:
        for _, layer in self.layers:
            layer.zero_grads()

    def set_training(self, training: bool) -> None:
        self.training = training
        for _, layer in self.layers:
            layer.set_training(training)


class Concat:
    """Channel concatenation helper with backward split (not a Layer:
    it has no parameters and takes multiple inputs)."""

    def __init__(self) -> None:
        self._splits: list[int] | None = None

    def forward(self, xs: list[np.ndarray]) -> np.ndarray:
        """Concatenate NCHW tensors along channels."""
        self._splits = [x.shape[1] for x in xs]
        return np.concatenate(xs, axis=1)

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        """Split the gradient back into the input pieces."""
        if self._splits is None:
            raise RuntimeError("backward before forward")
        out = []
        start = 0
        for width in self._splits:
            out.append(dout[:, start:start + width])
            start += width
        return out
