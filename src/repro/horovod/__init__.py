"""A from-scratch reimplementation of Horovod's control plane.

Horovod's data-parallel engine has three moving parts the paper tunes:

* a **background coordinator** that ticks every ``HOROVOD_CYCLE_TIME``
  milliseconds, negotiates which gradient tensors are ready on *all*
  ranks (workers send requests to rank 0; rank 0 broadcasts responses),
  and enqueues collective operations (:mod:`repro.horovod.runtime`);
* a **tensor fusion buffer** that packs small tensors into batched
  allreduces up to ``HOROVOD_FUSION_THRESHOLD`` bytes
  (:mod:`repro.horovod.fusion`);
* optional **hierarchical allreduce** and **fp16 compression** paths
  (:mod:`repro.horovod.compression`).

All of it is reimplemented here as discrete-event processes over the
simulated MPI layer, configured through the same ``HOROVOD_*`` environment
knobs the paper sweeps (:mod:`repro.horovod.config`), plus the runtime
autotuner Horovod ships (:mod:`repro.horovod.autotune`).
"""

from repro.horovod.autotune import Autotuner, AutotuneResult
from repro.horovod.compression import compress_fp16, decompress_fp16
from repro.horovod.config import HorovodConfig
from repro.horovod.fusion import FusionGroup, PendingTensor, pack_tensors
from repro.horovod.runtime import HorovodRuntime
from repro.horovod.timeline import Timeline, TimelineEvent

__all__ = [
    "Autotuner",
    "AutotuneResult",
    "FusionGroup",
    "HorovodConfig",
    "HorovodRuntime",
    "PendingTensor",
    "Timeline",
    "TimelineEvent",
    "compress_fp16",
    "decompress_fp16",
    "pack_tensors",
]
