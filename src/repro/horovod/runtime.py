"""The Horovod background coordinator as a discrete-event process.

Faithful to Horovod's MPI-mode control flow:

1. Each rank's training loop calls :meth:`HorovodRuntime.submit` as its
   backward pass produces gradient tensors (Horovod: enqueuing a
   ``TensorTableEntry``).  The call returns an event that fires when the
   *averaged* tensor is back on that rank.
2. A background loop ticks every ``cycle_time``.  If any tensors are
   outstanding it runs a **negotiation** round: a linear gather of request
   metadata to rank 0 plus a broadcast of the response list (with the
   response cache on, previously seen ready-sets skip the gather and only
   pay the small broadcast — Horovod's bitvector path).
3. Tensors that are ready on **all** ranks are packed into fusion groups
   (:func:`repro.horovod.fusion.pack_tensors`) and executed in order:
   pack memcpy → (optional fp16 compress) → allreduce over the simulated
   MPI → (decompress) → unpack memcpy.  Like Horovod's MPI path, the
   background thread blocks while each collective runs.

The runtime works in both payload modes: :class:`VirtualBuffer` for
at-scale timing studies, real numpy arrays for the npnn trainer (where
fusion concatenation/splitting moves actual gradient data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.gpu import GPUSpec, V100
from repro.horovod.compression import cast_seconds
from repro.horovod.config import HorovodConfig
from repro.horovod.fusion import FusionGroup, PendingTensor, pack_tensors
from repro.horovod.timeline import Timeline
from repro.mpi.communicator import Comm
from repro.mpi.payload import VirtualBuffer
from repro.sim import Environment, Event

__all__ = ["HorovodRuntime", "RuntimeStats"]


@dataclass
class RuntimeStats:
    """Counters the tuning analysis reads after a run."""

    cycles: int = 0
    negotiations: int = 0
    cache_hits: int = 0
    fused_ops: int = 0
    tensors_reduced: int = 0
    bytes_reduced: int = 0
    negotiation_seconds: float = 0.0
    allreduce_seconds: float = 0.0
    memcpy_seconds: float = 0.0
    compression_seconds: float = 0.0
    # -- resilience counters (populated only with a negotiation deadline) --
    #: Ranks that missed the negotiation deadline at least once.
    suspects: int = 0
    #: Suspects that caught up before confirmation (stragglers, not crashes).
    suspects_cleared: int = 0
    #: Confirmed crashes: the communicator shrank past these ranks.
    rank_crashes: int = 0
    #: Ranks elastically re-admitted after a restart.
    rank_restarts: int = 0
    #: Total wall time ranks spent under suspicion (detection latency).
    suspect_seconds: float = 0.0

    @property
    def mean_fusion_size(self) -> float:
        """Average bytes per fused allreduce."""
        return self.bytes_reduced / self.fused_ops if self.fused_ops else 0.0


@dataclass
class _TensorEntry:
    """Per-tensor negotiation state."""

    name: str
    nbytes: int
    payloads: dict[int, Any] = field(default_factory=dict)
    events: dict[int, Event] = field(default_factory=dict)
    first_submit_s: float = 0.0
    #: True once the tensor has been moved to the ready queue.
    queued: bool = False


@dataclass
class _Suspicion:
    """Failure-detector state for one suspected rank."""

    since: float
    retries_left: int
    next_retry_at: float


class HorovodRuntime:
    """One Horovod process group's background engine.

    Parameters
    ----------
    comm:
        The simulated MPI communicator (defines world size and fabric).
    config:
        The ``HOROVOD_*`` knob settings.
    gpu:
        GPU spec used to price fusion-buffer memcpys and casts.
    timeline:
        Optional :class:`Timeline` to record phase spans into.
    control_bytes_per_tensor:
        Size of one tensor's negotiation metadata (name + shape + dtype
        descriptor in real Horovod; 64 B is representative).
    negotiation:
        ``"messages"`` simulates every control message of each round
        (linear gather + broadcast) through the fabric — ground truth but
        O(ranks) events per cycle.  ``"analytic"`` (default) charges the
        closed-form :meth:`repro.mpi.communicator.Comm.control_round_seconds`
        instead; tests pin the two against each other.
    """

    def __init__(self, comm: Comm, config: HorovodConfig,
                 gpu: GPUSpec = V100, timeline: Timeline | None = None,
                 control_bytes_per_tensor: int = 64,
                 negotiation: str = "analytic") -> None:
        if negotiation not in ("messages", "analytic"):
            raise ValueError(f"unknown negotiation mode {negotiation!r}")
        self.negotiation = negotiation
        self.comm = comm
        self.env: Environment = comm.env
        self.config = config
        self.gpu = gpu
        self.timeline = timeline if timeline is not None else Timeline()
        self.control_bytes_per_tensor = control_bytes_per_tensor
        #: Optional telemetry hook (``on_cycle`` / ``on_negotiation`` /
        #: ``on_group`` / ``on_detect``) — see
        #: :class:`repro.telemetry.TelemetryProbe`.
        self.probe: Any = None
        #: Optional span recorder (``repro.trace``); observation only.
        self.tracer: Any = None
        self.stats = RuntimeStats()
        self._entries: dict[str, _TensorEntry] = {}
        self._ready: list[tuple[PendingTensor, frozenset[int]]] = []
        self._response_cache: set[tuple[str, ...]] = set()
        self._shutdown = False
        # -- elastic membership ------------------------------------------------
        #: Ranks currently expected to participate in every tensor.
        self.active: set[int] = set(range(comm.size))
        self._removed: set[int] = set()
        self._crash_reports: set[int] = set()
        self._suspects: dict[int, _Suspicion] = {}
        self._loop = self.env.process(self._coordinator_loop())

    @property
    def size(self) -> int:
        """World size (launch-time; does not shrink with crashes)."""
        return self.comm.size

    @property
    def active_ranks(self) -> list[int]:
        """Currently participating ranks, sorted."""
        return sorted(self.active)

    def fast_path_report(self) -> dict:
        """Simulator fast-path counters under this runtime's traffic.

        Every collective this runtime fuses ultimately moves bytes
        through the fabric; this surfaces the shortcut/reference split
        (diagnostics only, never part of a compared payload).
        """
        return self.comm.fast_path_report()

    # -- worker API -----------------------------------------------------------
    def submit(self, rank: int, name: str, payload: Any) -> Event:
        """Enqueue ``payload`` (this rank's gradient tensor ``name``).

        Returns an event that fires with the averaged tensor once the
        fused allreduce containing it completes on this rank.  Submitting
        the same name twice from one rank before completion is an error
        (as in Horovod).
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        nbytes = (
            payload.nbytes if isinstance(payload, (np.ndarray, VirtualBuffer))
            else None
        )
        if nbytes is None:
            raise TypeError(f"unsupported payload type {type(payload).__name__}")
        entry = self._entries.get(name)
        if entry is None:
            entry = _TensorEntry(name, int(nbytes), first_submit_s=self.env.now)
            self._entries[name] = entry
        if rank in entry.payloads:
            raise ValueError(f"rank {rank} already submitted tensor {name!r}")
        if entry.nbytes != int(nbytes):
            raise ValueError(
                f"tensor {name!r} size mismatch across ranks: "
                f"{entry.nbytes} vs {nbytes}"
            )
        entry.payloads[rank] = payload
        event = Event(self.env)
        entry.events[rank] = event
        self._maybe_ready(entry)
        return event

    def shutdown(self) -> None:
        """Ask the coordinator loop to exit at its next tick."""
        self._shutdown = True

    # -- elastic membership API -------------------------------------------------
    def report_crash(self, rank: int) -> None:
        """Out-of-band crash notice (e.g. from a fault injector).

        This is the ground truth the failure detector consults: a suspect
        rank is only removed once its crash has been *reported*, so pure
        stragglers are never evicted, only genuinely dead ranks.
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        self._crash_reports.add(rank)

    def report_restart(self, rank: int) -> None:
        """Re-admit a previously crashed rank into the active set.

        The caller must ensure the rank's stale submissions have drained
        (see :meth:`drain_rank`) before re-admission.
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        if rank in self.active:
            return
        self._removed.discard(rank)
        self._crash_reports.discard(rank)
        self.active.add(rank)
        self.stats.rank_restarts += 1
        self.timeline.record(
            "RECOVER", f"rejoin_rank_{rank}", self.env.now, self.env.now
        )

    def drain_rank(self, rank: int):
        """Generator: wait until no pending tensor holds ``rank``'s payload.

        A restarting rank yields from this before rejoining, so its
        pre-crash submissions (still referenced by in-flight fusion
        groups of the surviving ranks) cannot collide with the fresh
        submissions of its new life.
        """
        while any(rank in e.payloads for e in self._entries.values()):
            yield self.env.timeout(self.config.cycle_time_s)

    def _maybe_ready(self, entry: _TensorEntry) -> None:
        """Queue ``entry`` once every active rank has submitted it."""
        if entry.queued or not self.active <= entry.payloads.keys():
            return
        entry.queued = True
        # Snapshot who takes part: everyone who submitted and is not
        # confirmed dead — a rank that submitted but crashed before the
        # group ran lost its process, so its queued gradient is dropped.
        participants = frozenset(entry.payloads) - self._removed
        self._ready.append(
            (PendingTensor(entry.name, entry.nbytes, self.env.now), participants)
        )

    # -- coordinator -----------------------------------------------------------
    def _coordinator_loop(self):
        while True:
            yield self.env.timeout(self.config.cycle_time_s)
            if self._shutdown:
                return
            self.stats.cycles += 1
            if self.probe is not None:
                self.probe.on_cycle(len(self._entries), len(self._ready))
            if not self._entries:
                continue
            if self.config.negotiation_deadline_s is not None:
                yield from self._failure_detector()
            ready = self._ready
            self._ready = []
            yield from self._negotiate([t for t, _ in ready])
            if not ready:
                continue
            # Tensors sharing a participant set fuse together; distinct
            # sets (mid-shrink transients) reduce as separate subgroups.
            buckets: dict[frozenset[int], list[PendingTensor]] = {}
            for tensor, participants in ready:
                buckets.setdefault(participants, []).append(tensor)
            for participants, tensors in buckets.items():
                if not participants:
                    for tensor in tensors:
                        self._entries.pop(tensor.name, None)
                    continue
                for group in pack_tensors(
                    tensors, self.config.fusion_threshold_bytes
                ):
                    yield from self._execute_group(group, participants)

    # -- failure detector --------------------------------------------------------
    def _failure_detector(self):
        """Deadline scan: suspect → backed-off re-probes → confirm → shrink.

        Runs once per cycle when ``negotiation_deadline_s`` is set.  A
        rank becomes *suspect* when some tensor has waited past the
        deadline without its submission.  Suspects get
        ``suspect_retries`` re-probes with exponential backoff (each
        charged one small cached control round); a suspect whose crash
        was reported (:meth:`report_crash`) is evicted after the last
        probe, shrinking the communicator to the survivors.  Suspects
        that catch up are cleared — a straggler never triggers eviction.
        """
        deadline = self.config.negotiation_deadline_s
        now = self.env.now
        missing: set[int] = set()
        for entry in self._entries.values():
            if entry.queued or now - entry.first_submit_s < deadline:
                continue
            missing |= self.active - entry.payloads.keys()
        for rank in [r for r in self._suspects if r not in missing]:
            info = self._suspects.pop(rank)
            self.stats.suspects_cleared += 1
            self.stats.suspect_seconds += now - info.since
            self.timeline.record("SUSPECT", f"rank_{rank}", info.since, now)
        for rank in sorted(missing):
            info = self._suspects.get(rank)
            if info is None:
                self._suspects[rank] = _Suspicion(
                    since=now,
                    retries_left=self.config.suspect_retries,
                    next_retry_at=now + deadline,
                )
                self.stats.suspects += 1
                continue
            if now < info.next_retry_at:
                continue
            if info.retries_left > 0:
                info.retries_left -= 1
                backoff = deadline * 2 ** (
                    self.config.suspect_retries - info.retries_left
                )
                info.next_retry_at = now + backoff
                # Each re-probe is one small control round to the rank.
                probe_s = self.comm.control_round_seconds(64, cached=True)
                if self.probe is not None:
                    self.probe.on_detect(probe_s)
                yield self.env.timeout(probe_s)
            elif rank in self._crash_reports:
                self._confirm_crash(rank, info)

    def _confirm_crash(self, rank: int, info: _Suspicion) -> None:
        now = self.env.now
        self._suspects.pop(rank, None)
        self.active.discard(rank)
        self._removed.add(rank)
        self.stats.rank_crashes += 1
        self.stats.suspect_seconds += now - info.since
        self.timeline.record("SUSPECT", f"rank_{rank}", info.since, now)
        self.timeline.record(
            "RECOVER", f"shrink_to_{len(self.active)}", info.since, now
        )
        # Tensors that were only waiting on the evicted rank are now ready.
        for entry in self._entries.values():
            self._maybe_ready(entry)

    def _negotiate(self, ready: list[PendingTensor]):
        """One negotiation round: gather requests, broadcast responses."""
        start = self.env.now
        signature = tuple(t.name for t in ready)
        cached = self.config.cache_enabled and signature in self._response_cache
        per_rank = max(
            4, self.control_bytes_per_tensor * max(1, len(self._entries))
        )
        per_rank = (per_rank + 3) // 4 * 4
        if cached and ready:
            # Bitvector path: one small broadcast.
            self.stats.cache_hits += 1
            if self.negotiation == "messages":
                yield self.comm.bcast(VirtualBuffer(64), root=0)
            else:
                yield self.env.timeout(self.comm.control_round_seconds(64, cached=True))
        else:
            if self.negotiation == "messages":
                payloads = [VirtualBuffer(per_rank) for _ in range(self.size)]
                yield self.comm.gather_linear(payloads, root=0)
                yield self.comm.bcast(VirtualBuffer(per_rank), root=0)
            else:
                yield self.env.timeout(self.comm.control_round_seconds(per_rank))
            if ready and self.config.cache_enabled:
                self._response_cache.add(signature)
        self.stats.negotiations += 1
        self.stats.negotiation_seconds += self.env.now - start
        if self.probe is not None:
            self.probe.on_negotiation(self.env.now - start, cached, len(ready))
        self.timeline.record(
            "NEGOTIATE", f"cycle_{self.stats.cycles}", start, self.env.now
        )
        if self.tracer is not None:
            self.tracer.record(
                "NEGOTIATE", f"cycle_{self.stats.cycles}", start, self.env.now,
                cycle=self.stats.cycles, cached=cached, tensors=len(ready))

    # -- data plane --------------------------------------------------------------
    def _execute_group(self, group: FusionGroup, participants: frozenset[int] | None = None):
        if participants is None:
            participants = frozenset(range(self.size))
        ranks = sorted(participants)
        entries = [self._entries.pop(t.name) for t in group.tensors]
        label = entries[0].name if len(entries) == 1 else f"fused_x{len(entries)}"
        numpy_mode = isinstance(entries[0].payloads[ranks[0]], np.ndarray)

        # Queue span: from the moment the group's last tensor became
        # ready on all ranks until execution starts now (cycle wait plus
        # serialization behind earlier groups).
        queued_since = max(t.ready_time for t in group.tensors)
        if self.env.now > queued_since:
            self.timeline.record("QUEUE", label, queued_since, self.env.now)
        if self.probe is not None:
            self.probe.on_group(
                group.nbytes, len(entries), len(ranks),
                self.config.fusion_threshold_bytes,
                max(0.0, self.env.now - queued_since),
            )
        tracer = self.tracer
        gspan = None
        if tracer is not None:
            gspan = tracer.begin(
                "GROUP", label, min(self.env.now, queued_since),
                tensors=len(entries), bytes=int(group.nbytes),
                participants=len(ranks))
            if self.env.now > queued_since:
                tracer.record("QUEUE", label, queued_since, self.env.now,
                              parent=gspan)

        # Pack into the fusion buffer (skipped for singletons, as Horovod
        # skips the copy when a tensor is reduced unfused).
        if len(entries) > 1:
            start = self.env.now
            yield self.env.timeout(2 * group.nbytes / self.gpu.sustained_mem_Bps)
            self.stats.memcpy_seconds += self.env.now - start
            self.timeline.record("MEMCPY_IN", label, start, self.env.now)
            if tracer is not None:
                tracer.record("MEMCPY_IN", label, start, self.env.now,
                              parent=gspan)

        wire_bytes = group.nbytes
        if self.config.compression == "fp16":
            start = self.env.now
            yield self.env.timeout(cast_seconds(group.nbytes, self.gpu.sustained_mem_Bps))
            self.stats.compression_seconds += self.env.now - start
            self.timeline.record("COMPRESS", label, start, self.env.now)
            if tracer is not None:
                tracer.record("COMPRESS", label, start, self.env.now,
                              parent=gspan)
            wire_bytes = group.nbytes // 2

        if numpy_mode:
            fused = [
                np.concatenate([e.payloads[r].ravel() for e in entries])
                for r in ranks
            ]
        else:
            elem = 2 if self.config.compression == "fp16" else 4
            aligned = (wire_bytes + elem - 1) // elem * elem
            fused = [VirtualBuffer(aligned, elem) for _ in ranks]

        start = self.env.now
        algorithm = (
            "hierarchical" if self.config.hierarchical_allreduce
            else self.config.allreduce_algorithm
        )
        subgroup = ranks if len(ranks) < self.size else None
        aspan = None
        if tracer is not None:
            aspan = tracer.begin("ALLREDUCE", label, start, parent=gspan)
            tracer.comm_parent = aspan
        results = yield self.comm.allreduce(
            fused, algorithm=algorithm, average=True, ranks=subgroup
        )
        if aspan is not None:
            tracer.comm_parent = None
            tracer.end(aspan, self.env.now)
        self.stats.allreduce_seconds += self.env.now - start
        self.timeline.record("ALLREDUCE", label, start, self.env.now)

        if self.config.compression == "fp16":
            start = self.env.now
            yield self.env.timeout(cast_seconds(group.nbytes, self.gpu.sustained_mem_Bps))
            self.stats.compression_seconds += self.env.now - start
            self.timeline.record("DECOMPRESS", label, start, self.env.now)
            if tracer is not None:
                tracer.record("DECOMPRESS", label, start, self.env.now,
                              parent=gspan)

        if len(entries) > 1:
            start = self.env.now
            yield self.env.timeout(2 * group.nbytes / self.gpu.sustained_mem_Bps)
            self.stats.memcpy_seconds += self.env.now - start
            self.timeline.record("MEMCPY_OUT", label, start, self.env.now)
            if tracer is not None:
                tracer.record("MEMCPY_OUT", label, start, self.env.now,
                              parent=gspan)
        if gspan is not None:
            tracer.end(gspan, self.env.now)

        self.stats.fused_ops += 1
        self.stats.tensors_reduced += len(entries)
        self.stats.bytes_reduced += group.nbytes

        # Hand each participating rank its averaged tensor back.
        for i, rank in enumerate(ranks):
            if numpy_mode:
                flat = results[i]
                offset = 0
                for e in entries:
                    shape = e.payloads[rank].shape
                    n = e.payloads[rank].size
                    e.events[rank].succeed(flat[offset:offset + n].reshape(shape))
                    offset += n
            else:
                for e in entries:
                    e.events[rank].succeed(VirtualBuffer((e.nbytes + 3) // 4 * 4))

        # Extra submitters — a rank that rejoined after this group's
        # participant snapshot — adopt the group consensus (elastic
        # Horovod semantics: late arrivals take the survivors' average).
        flat0 = results[0] if numpy_mode else None
        offset = 0
        for e in entries:
            n = next(iter(e.payloads.values())).size if numpy_mode else 0
            for rank in sorted(set(e.payloads) - participants - self._removed):
                if e.events[rank].triggered:
                    continue
                if numpy_mode:
                    shape = e.payloads[rank].shape
                    e.events[rank].succeed(flat0[offset:offset + n].reshape(shape))
                else:
                    e.events[rank].succeed(VirtualBuffer((e.nbytes + 3) // 4 * 4))
            offset += n
