"""The Horovod background coordinator as a discrete-event process.

Faithful to Horovod's MPI-mode control flow:

1. Each rank's training loop calls :meth:`HorovodRuntime.submit` as its
   backward pass produces gradient tensors (Horovod: enqueuing a
   ``TensorTableEntry``).  The call returns an event that fires when the
   *averaged* tensor is back on that rank.
2. A background loop ticks every ``cycle_time``.  If any tensors are
   outstanding it runs a **negotiation** round: a linear gather of request
   metadata to rank 0 plus a broadcast of the response list (with the
   response cache on, previously seen ready-sets skip the gather and only
   pay the small broadcast — Horovod's bitvector path).
3. Tensors that are ready on **all** ranks are packed into fusion groups
   (:func:`repro.horovod.fusion.pack_tensors`) and executed in order:
   pack memcpy → (optional fp16 compress) → allreduce over the simulated
   MPI → (decompress) → unpack memcpy.  Like Horovod's MPI path, the
   background thread blocks while each collective runs.

The runtime works in both payload modes: :class:`VirtualBuffer` for
at-scale timing studies, real numpy arrays for the npnn trainer (where
fusion concatenation/splitting moves actual gradient data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.gpu import GPUSpec, V100
from repro.horovod.compression import cast_seconds
from repro.horovod.config import HorovodConfig
from repro.horovod.fusion import FusionGroup, PendingTensor, pack_tensors
from repro.horovod.timeline import Timeline
from repro.mpi.communicator import Comm
from repro.mpi.payload import VirtualBuffer
from repro.sim import Environment, Event

__all__ = ["HorovodRuntime", "RuntimeStats"]


@dataclass
class RuntimeStats:
    """Counters the tuning analysis reads after a run."""

    cycles: int = 0
    negotiations: int = 0
    cache_hits: int = 0
    fused_ops: int = 0
    tensors_reduced: int = 0
    bytes_reduced: int = 0
    negotiation_seconds: float = 0.0
    allreduce_seconds: float = 0.0
    memcpy_seconds: float = 0.0
    compression_seconds: float = 0.0

    @property
    def mean_fusion_size(self) -> float:
        """Average bytes per fused allreduce."""
        return self.bytes_reduced / self.fused_ops if self.fused_ops else 0.0


@dataclass
class _TensorEntry:
    """Per-tensor negotiation state."""

    name: str
    nbytes: int
    payloads: dict[int, Any] = field(default_factory=dict)
    events: dict[int, Event] = field(default_factory=dict)
    first_submit_s: float = 0.0


class HorovodRuntime:
    """One Horovod process group's background engine.

    Parameters
    ----------
    comm:
        The simulated MPI communicator (defines world size and fabric).
    config:
        The ``HOROVOD_*`` knob settings.
    gpu:
        GPU spec used to price fusion-buffer memcpys and casts.
    timeline:
        Optional :class:`Timeline` to record phase spans into.
    control_bytes_per_tensor:
        Size of one tensor's negotiation metadata (name + shape + dtype
        descriptor in real Horovod; 64 B is representative).
    negotiation:
        ``"messages"`` simulates every control message of each round
        (linear gather + broadcast) through the fabric — ground truth but
        O(ranks) events per cycle.  ``"analytic"`` (default) charges the
        closed-form :meth:`repro.mpi.communicator.Comm.control_round_seconds`
        instead; tests pin the two against each other.
    """

    def __init__(self, comm: Comm, config: HorovodConfig,
                 gpu: GPUSpec = V100, timeline: Timeline | None = None,
                 control_bytes_per_tensor: int = 64,
                 negotiation: str = "analytic") -> None:
        if negotiation not in ("messages", "analytic"):
            raise ValueError(f"unknown negotiation mode {negotiation!r}")
        self.negotiation = negotiation
        self.comm = comm
        self.env: Environment = comm.env
        self.config = config
        self.gpu = gpu
        self.timeline = timeline if timeline is not None else Timeline()
        self.control_bytes_per_tensor = control_bytes_per_tensor
        self.stats = RuntimeStats()
        self._entries: dict[str, _TensorEntry] = {}
        self._ready: list[PendingTensor] = []
        self._response_cache: set[tuple[str, ...]] = set()
        self._shutdown = False
        self._loop = self.env.process(self._coordinator_loop())

    @property
    def size(self) -> int:
        """World size."""
        return self.comm.size

    # -- worker API -----------------------------------------------------------
    def submit(self, rank: int, name: str, payload: Any) -> Event:
        """Enqueue ``payload`` (this rank's gradient tensor ``name``).

        Returns an event that fires with the averaged tensor once the
        fused allreduce containing it completes on this rank.  Submitting
        the same name twice from one rank before completion is an error
        (as in Horovod).
        """
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        nbytes = (
            payload.nbytes if isinstance(payload, (np.ndarray, VirtualBuffer))
            else None
        )
        if nbytes is None:
            raise TypeError(f"unsupported payload type {type(payload).__name__}")
        entry = self._entries.get(name)
        if entry is None:
            entry = _TensorEntry(name, int(nbytes), first_submit_s=self.env.now)
            self._entries[name] = entry
        if rank in entry.payloads:
            raise ValueError(f"rank {rank} already submitted tensor {name!r}")
        if entry.nbytes != int(nbytes):
            raise ValueError(
                f"tensor {name!r} size mismatch across ranks: "
                f"{entry.nbytes} vs {nbytes}"
            )
        entry.payloads[rank] = payload
        event = Event(self.env)
        entry.events[rank] = event
        if len(entry.payloads) == self.size:
            self._ready.append(PendingTensor(name, entry.nbytes, self.env.now))
        return event

    def shutdown(self) -> None:
        """Ask the coordinator loop to exit at its next tick."""
        self._shutdown = True

    # -- coordinator -----------------------------------------------------------
    def _coordinator_loop(self):
        while True:
            yield self.env.timeout(self.config.cycle_time_s)
            if self._shutdown:
                return
            self.stats.cycles += 1
            if not self._entries:
                continue
            ready = self._ready
            self._ready = []
            yield from self._negotiate(ready)
            if not ready:
                continue
            for group in pack_tensors(ready, self.config.fusion_threshold_bytes):
                yield from self._execute_group(group)

    def _negotiate(self, ready: list[PendingTensor]):
        """One negotiation round: gather requests, broadcast responses."""
        start = self.env.now
        signature = tuple(t.name for t in ready)
        cached = self.config.cache_enabled and signature in self._response_cache
        per_rank = max(
            4, self.control_bytes_per_tensor * max(1, len(self._entries))
        )
        per_rank = (per_rank + 3) // 4 * 4
        if cached and ready:
            # Bitvector path: one small broadcast.
            self.stats.cache_hits += 1
            if self.negotiation == "messages":
                yield self.comm.bcast(VirtualBuffer(64), root=0)
            else:
                yield self.env.timeout(self.comm.control_round_seconds(64, cached=True))
        else:
            if self.negotiation == "messages":
                payloads = [VirtualBuffer(per_rank) for _ in range(self.size)]
                yield self.comm.gather_linear(payloads, root=0)
                yield self.comm.bcast(VirtualBuffer(per_rank), root=0)
            else:
                yield self.env.timeout(self.comm.control_round_seconds(per_rank))
            if ready and self.config.cache_enabled:
                self._response_cache.add(signature)
        self.stats.negotiations += 1
        self.stats.negotiation_seconds += self.env.now - start
        self.timeline.record(
            "NEGOTIATE", f"cycle_{self.stats.cycles}", start, self.env.now
        )

    # -- data plane --------------------------------------------------------------
    def _execute_group(self, group: FusionGroup):
        entries = [self._entries.pop(t.name) for t in group.tensors]
        label = entries[0].name if len(entries) == 1 else f"fused_x{len(entries)}"
        numpy_mode = isinstance(next(iter(entries[0].payloads.values())), np.ndarray)

        # Queue span: from the moment the group's last tensor became
        # ready on all ranks until execution starts now (cycle wait plus
        # serialization behind earlier groups).
        queued_since = max(t.ready_time for t in group.tensors)
        if self.env.now > queued_since:
            self.timeline.record("QUEUE", label, queued_since, self.env.now)

        # Pack into the fusion buffer (skipped for singletons, as Horovod
        # skips the copy when a tensor is reduced unfused).
        if len(entries) > 1:
            start = self.env.now
            yield self.env.timeout(2 * group.nbytes / self.gpu.sustained_mem_Bps)
            self.stats.memcpy_seconds += self.env.now - start
            self.timeline.record("MEMCPY_IN", label, start, self.env.now)

        wire_bytes = group.nbytes
        if self.config.compression == "fp16":
            start = self.env.now
            yield self.env.timeout(cast_seconds(group.nbytes, self.gpu.sustained_mem_Bps))
            self.stats.compression_seconds += self.env.now - start
            self.timeline.record("COMPRESS", label, start, self.env.now)
            wire_bytes = group.nbytes // 2

        if numpy_mode:
            fused = [
                np.concatenate([e.payloads[r].ravel() for e in entries])
                for r in range(self.size)
            ]
        else:
            elem = 2 if self.config.compression == "fp16" else 4
            aligned = (wire_bytes + elem - 1) // elem * elem
            fused = [VirtualBuffer(aligned, elem) for _ in range(self.size)]

        start = self.env.now
        algorithm = (
            "hierarchical" if self.config.hierarchical_allreduce
            else self.config.allreduce_algorithm
        )
        results = yield self.comm.allreduce(fused, algorithm=algorithm, average=True)
        self.stats.allreduce_seconds += self.env.now - start
        self.timeline.record("ALLREDUCE", label, start, self.env.now)

        if self.config.compression == "fp16":
            start = self.env.now
            yield self.env.timeout(cast_seconds(group.nbytes, self.gpu.sustained_mem_Bps))
            self.stats.compression_seconds += self.env.now - start
            self.timeline.record("DECOMPRESS", label, start, self.env.now)

        if len(entries) > 1:
            start = self.env.now
            yield self.env.timeout(2 * group.nbytes / self.gpu.sustained_mem_Bps)
            self.stats.memcpy_seconds += self.env.now - start
            self.timeline.record("MEMCPY_OUT", label, start, self.env.now)

        self.stats.fused_ops += 1
        self.stats.tensors_reduced += len(entries)
        self.stats.bytes_reduced += group.nbytes

        # Hand each rank its averaged tensor back.
        for rank in range(self.size):
            if numpy_mode:
                flat = results[rank]
                offset = 0
                for e in entries:
                    shape = e.payloads[rank].shape
                    n = e.payloads[rank].size
                    e.events[rank].succeed(flat[offset:offset + n].reshape(shape))
                    offset += n
            else:
                for e in entries:
                    e.events[rank].succeed(VirtualBuffer((e.nbytes + 3) // 4 * 4))
