"""fp16 gradient compression (Horovod's ``Compression.fp16``).

Horovod can cast gradients to half precision before the allreduce and
back after, halving wire bytes at the cost of two casts and reduced
mantissa.  The runtime models the timing (cast kernels are
bandwidth-bound sweeps); these functions implement the *data* path for
numpy payloads so the real npnn trainer can exercise compression and the
tests can quantify its rounding error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cast_seconds", "compress_fp16", "decompress_fp16"]


def compress_fp16(x: np.ndarray) -> np.ndarray:
    """Cast to fp16 (the lossy half of the round trip)."""
    return x.astype(np.float16)


def decompress_fp16(x: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Cast back to working precision."""
    if x.dtype != np.float16:
        raise ValueError(f"expected fp16 payload, got {x.dtype}")
    return x.astype(dtype)


def cast_seconds(nbytes: int, mem_bandwidth_Bps: float) -> float:
    """Time of one cast kernel over ``nbytes`` of fp32 input.

    Reads the fp32 buffer and writes the fp16 one (1.5× traffic).
    """
    if nbytes < 0:
        raise ValueError("negative size")
    if mem_bandwidth_Bps <= 0:
        raise ValueError("bandwidth must be positive")
    return 1.5 * nbytes / mem_bandwidth_Bps
