"""Runtime autotuning of the Horovod knobs.

Horovod ships an autotuner (``HOROVOD_AUTOTUNE=1``) that perturbs cycle
time and fusion threshold between batches and keeps what helps.  The
paper's methodological point is that *manual staged tuning* of the same
knobs (library first, then fusion, then cycle, then hierarchy) reaches the
same place without code or framework changes; experiment E10 compares the
two.

:class:`Autotuner` here is a deterministic coordinate-descent search over
the same discrete grids a practitioner sweeps, maximizing an arbitrary
objective (the tuning harness passes measured images/second of a short
simulated run).  Coordinate descent matches how the knobs interact: they
are close to separable, which is also why the paper's staged manual
procedure works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.horovod.config import HorovodConfig
from repro.sim.units import MiB

__all__ = ["Autotuner", "AutotuneResult"]

#: Default search grids (the values practitioners actually try).
CYCLE_GRID_S = (0.5e-3, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3)
FUSION_GRID_BYTES = (0, 1 * MiB, 8 * MiB, 32 * MiB, 64 * MiB, 128 * MiB, 256 * MiB)
HIERARCHICAL_GRID = (False, True)


@dataclass
class AutotuneResult:
    """Outcome of one autotuning run."""

    best_config: HorovodConfig
    best_score: float
    #: Every (config, score) evaluated, in order.
    history: list[tuple[HorovodConfig, float]] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        """Number of objective evaluations spent."""
        return len(self.history)


class Autotuner:
    """Deterministic coordinate descent over the Horovod knob grids."""

    def __init__(self,
                 cycle_grid: Sequence[float] = CYCLE_GRID_S,
                 fusion_grid: Sequence[int] = FUSION_GRID_BYTES,
                 hierarchical_grid: Sequence[bool] = HIERARCHICAL_GRID,
                 max_rounds: int = 3) -> None:
        if not cycle_grid or not fusion_grid or not hierarchical_grid:
            raise ValueError("search grids must be non-empty")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.cycle_grid = tuple(cycle_grid)
        self.fusion_grid = tuple(fusion_grid)
        self.hierarchical_grid = tuple(hierarchical_grid)
        self.max_rounds = max_rounds

    def run(self, objective: Callable[[HorovodConfig], float],
            base: HorovodConfig | None = None) -> AutotuneResult:
        """Maximize ``objective`` starting from ``base`` (default config).

        One round sweeps each knob in turn, holding the others at their
        current best; rounds repeat until a full round yields no
        improvement or ``max_rounds`` is hit.  Evaluations are memoized,
        so the cost is bounded by the grid sizes.
        """
        current = base if base is not None else HorovodConfig.default()
        history: list[tuple[HorovodConfig, float]] = []
        memo: dict[HorovodConfig, float] = {}

        def score(cfg: HorovodConfig) -> float:
            if cfg not in memo:
                memo[cfg] = objective(cfg)
                history.append((cfg, memo[cfg]))
            return memo[cfg]

        best = score(current)
        for _ in range(self.max_rounds):
            improved = False
            for knob, grid in (
                ("cycle_time_s", self.cycle_grid),
                ("fusion_threshold_bytes", self.fusion_grid),
                ("hierarchical_allreduce", self.hierarchical_grid),
            ):
                for value in grid:
                    candidate = current.with_(**{knob: value})
                    s = score(candidate)
                    if s > best:
                        best, current, improved = s, candidate, True
            if not improved:
                break
        return AutotuneResult(best_config=current, best_score=best, history=history)
