"""Tensor fusion: packing small gradients into batched allreduces.

Horovod's fusion buffer answers the mismatch between models that emit
hundreds of tiny gradient tensors (DLv3+ has 440, median < 16 KB — see
experiment E2) and collectives whose cost has a large per-operation
latency term: tensors that are ready in the same negotiation cycle are
copied into one pre-allocated buffer and reduced together, up to
``HOROVOD_FUSION_THRESHOLD`` bytes per fused operation.

``pack_tensors`` reproduces Horovod's greedy first-fit-in-order policy:
tensors are taken in readiness order; a tensor larger than the threshold
always forms its own group (Horovod reduces oversized tensors unfused
rather than splitting them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FusionGroup", "PendingTensor", "pack_tensors"]


@dataclass(frozen=True)
class PendingTensor:
    """A gradient tensor queued for negotiation on some rank.

    ``ready_time`` is when the submitting rank produced it (backward
    emission time); the coordinator only schedules it once all ranks have
    submitted it.
    """

    name: str
    nbytes: int
    ready_time: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative tensor size for {self.name!r}")


@dataclass
class FusionGroup:
    """One fused allreduce: the tensors packed into a single buffer."""

    tensors: list[PendingTensor] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Total payload bytes of the fused operation."""
        return sum(t.nbytes for t in self.tensors)

    @property
    def names(self) -> list[str]:
        """Names of the packed tensors, in buffer order."""
        return [t.name for t in self.tensors]

    def __len__(self) -> int:
        return len(self.tensors)


def pack_tensors(tensors: list[PendingTensor], threshold_bytes: int) -> list[FusionGroup]:
    """Greedy in-order packing into groups of at most ``threshold_bytes``.

    ``threshold_bytes == 0`` disables fusion (one group per tensor).
    A tensor larger than the threshold forms a singleton group.  Order is
    preserved both across and within groups — Horovod reduces in
    readiness order so that every rank packs identically.
    """
    if threshold_bytes < 0:
        raise ValueError("threshold must be >= 0")
    groups: list[FusionGroup] = []
    current = FusionGroup()
    for tensor in tensors:
        if threshold_bytes == 0:
            groups.append(FusionGroup([tensor]))
            continue
        if current.tensors and current.nbytes + tensor.nbytes > threshold_bytes:
            groups.append(current)
            current = FusionGroup()
        current.tensors.append(tensor)
        if current.nbytes >= threshold_bytes:
            groups.append(current)
            current = FusionGroup()
    if current.tensors:
        groups.append(current)
    return groups
