"""Horovod-timeline style event tracing.

Horovod can emit a Chrome-trace JSON (``HOROVOD_TIMELINE``) that the paper's
methodology uses to find where cycles go (negotiation vs. queueing vs.
allreduce).  :class:`Timeline` is the equivalent here: runtime components
record phase spans, and :meth:`Timeline.to_chrome_trace` writes the same
``traceEvents`` JSON structure, loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Timeline", "TimelineEvent"]

#: Recognized phases, in typical lifecycle order.
PHASES = (
    "NEGOTIATE",   # coordinator gather/bcast of readiness
    "QUEUE",       # tensor waiting for its cycle / for other ranks
    "MEMCPY_IN",   # pack into the fusion buffer
    "ALLREDUCE",   # the collective itself
    "MEMCPY_OUT",  # unpack from the fusion buffer
    "COMPRESS",    # fp16 encode
    "DECOMPRESS",  # fp16 decode
    "FAULT",       # an injected fault was active (span = fault lifetime)
    "SUSPECT",     # a rank was suspected missing (span = suspicion window)
    "RECOVER",     # resilience action: communicator shrink / rank rejoin
)

#: The subset of :data:`PHASES` added by the fault/resilience subsystem.
FAULT_PHASES = ("FAULT", "SUSPECT", "RECOVER")


@dataclass(frozen=True)
class TimelineEvent:
    """One completed phase span."""

    phase: str
    label: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Span length in seconds."""
        return self.end_s - self.start_s


@dataclass
class Timeline:
    """An append-only trace of runtime phase spans."""

    events: list[TimelineEvent] = field(default_factory=list)

    def record(self, phase: str, label: str, start_s: float, end_s: float) -> None:
        """Append a span; phases must be from :data:`PHASES`."""
        if phase not in PHASES:
            raise ValueError(f"unknown timeline phase {phase!r}")
        if end_s < start_s:
            raise ValueError(f"negative span for {label!r}")
        self.events.append(TimelineEvent(phase, label, start_s, end_s))

    def total_by_phase(self) -> dict[str, float]:
        """Summed span duration per phase (seconds)."""
        totals: dict[str, float] = {}
        for ev in self.events:
            totals[ev.phase] = totals.get(ev.phase, 0.0) + ev.duration_s
        return totals

    def spans(self, phase: str) -> list[TimelineEvent]:
        """All spans of one phase, in record order."""
        return [ev for ev in self.events if ev.phase == phase]

    def to_chrome_trace(self) -> str:
        """Serialize as Chrome-trace JSON (µs units, complete events).

        Events are emitted in ascending ``ts`` order (stable for ties),
        which trace viewers tolerate but schema checks can rely on.
        """
        trace = {
            "traceEvents": [
                {
                    "name": ev.label,
                    "cat": ev.phase,
                    "ph": "X",
                    "ts": ev.start_s * 1e6,
                    "dur": ev.duration_s * 1e6,
                    "pid": 0,
                    "tid": PHASES.index(ev.phase),
                }
                for ev in sorted(self.events, key=lambda e: e.start_s)
            ]
        }
        return json.dumps(trace, indent=1)
