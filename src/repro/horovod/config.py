"""Horovod runtime knobs (`HOROVOD_*` environment variables).

This is the paper's tuning surface.  Defaults mirror the Horovod releases
of the paper's timeframe (0.16–0.19): 64 MB fusion threshold, 5 ms cycle
time, flat (non-hierarchical) allreduce, no compression, response cache
on.  :meth:`HorovodConfig.from_env` parses the same string forms users
put in their job scripts, so the sweep harness can be driven with literal
``HOROVOD_FUSION_THRESHOLD=268435456`` style settings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.sim.units import MiB

__all__ = ["HorovodConfig"]


@dataclass(frozen=True)
class HorovodConfig:
    """One complete setting of the Horovod knobs.

    Attributes
    ----------
    fusion_threshold_bytes:
        ``HOROVOD_FUSION_THRESHOLD`` — max bytes packed into one fused
        allreduce.  0 disables fusion (every tensor goes alone).
    cycle_time_s:
        ``HOROVOD_CYCLE_TIME`` (seconds here; milliseconds in the env
        var) — period of the coordinator's negotiation tick.
    hierarchical_allreduce:
        ``HOROVOD_HIERARCHICAL_ALLREDUCE`` — use the two-level
        node-leader allreduce instead of a flat one.
    cache_enabled:
        ``HOROVOD_CACHE_CAPACITY > 0`` — reuse negotiation responses for
        previously seen ready-tensor sets (skips the per-cycle gather).
    compression:
        ``"none"`` or ``"fp16"`` — gradient compression before allreduce.
    allreduce_algorithm:
        Force a specific collective algorithm (``None`` = the MPI
        library's size-based selection table).
    negotiation_deadline_s:
        Resilience knob: how long the coordinator lets a tensor wait for
        missing ranks before marking them *suspect*.  ``None`` (the
        default) disables the failure detector entirely — healthy runs
        pay nothing.
    suspect_retries:
        How many exponentially backed-off re-probes a suspect rank gets
        before a reported crash is confirmed and the communicator
        shrinks to the survivors.
    """

    fusion_threshold_bytes: int = 64 * MiB
    cycle_time_s: float = 5e-3
    hierarchical_allreduce: bool = False
    cache_enabled: bool = True
    compression: str = "none"
    allreduce_algorithm: str | None = None
    negotiation_deadline_s: float | None = None
    suspect_retries: int = 2

    def __post_init__(self) -> None:
        if self.fusion_threshold_bytes < 0:
            raise ValueError("fusion threshold must be >= 0")
        if self.cycle_time_s <= 0:
            raise ValueError("cycle time must be > 0")
        if self.compression not in ("none", "fp16"):
            raise ValueError(f"unknown compression {self.compression!r}")
        if self.negotiation_deadline_s is not None and self.negotiation_deadline_s <= 0:
            raise ValueError("negotiation deadline must be > 0 (or None)")
        if self.suspect_retries < 0:
            raise ValueError("suspect_retries must be >= 0")

    @classmethod
    def default(cls) -> "HorovodConfig":
        """Horovod out-of-the-box settings (the paper's baseline)."""
        return cls()

    @classmethod
    def from_env(cls, env: Mapping[str, str]) -> "HorovodConfig":
        """Parse job-script style ``HOROVOD_*`` variables.

        Unknown variables are ignored (like Horovod itself); malformed
        values raise ``ValueError``.
        """
        cfg = cls()
        updates: dict = {}
        if "HOROVOD_FUSION_THRESHOLD" in env:
            updates["fusion_threshold_bytes"] = int(env["HOROVOD_FUSION_THRESHOLD"])
        if "HOROVOD_CYCLE_TIME" in env:
            # Horovod takes milliseconds (float allowed).
            updates["cycle_time_s"] = float(env["HOROVOD_CYCLE_TIME"]) * 1e-3
        if "HOROVOD_HIERARCHICAL_ALLREDUCE" in env:
            updates["hierarchical_allreduce"] = _parse_bool(
                env["HOROVOD_HIERARCHICAL_ALLREDUCE"]
            )
        if "HOROVOD_CACHE_CAPACITY" in env:
            updates["cache_enabled"] = int(env["HOROVOD_CACHE_CAPACITY"]) > 0
        if "HOROVOD_COMPRESSION" in env:
            updates["compression"] = env["HOROVOD_COMPRESSION"].lower()
        if "HOROVOD_NEGOTIATION_DEADLINE" in env:
            # Milliseconds, like HOROVOD_CYCLE_TIME; 0 disables.
            ms = float(env["HOROVOD_NEGOTIATION_DEADLINE"])
            updates["negotiation_deadline_s"] = ms * 1e-3 if ms > 0 else None
        return replace(cfg, **updates)

    def with_(self, **kwargs) -> "HorovodConfig":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Compact human-readable form for reports and timelines."""
        parts = [
            f"fusion={self.fusion_threshold_bytes // MiB}MiB"
            if self.fusion_threshold_bytes >= MiB
            else f"fusion={self.fusion_threshold_bytes}B",
            f"cycle={self.cycle_time_s * 1e3:g}ms",
            f"hier={'on' if self.hierarchical_allreduce else 'off'}",
            f"cache={'on' if self.cache_enabled else 'off'}",
        ]
        if self.compression != "none":
            parts.append(f"comp={self.compression}")
        if self.allreduce_algorithm:
            parts.append(f"alg={self.allreduce_algorithm}")
        if self.negotiation_deadline_s is not None:
            parts.append(f"deadline={self.negotiation_deadline_s * 1e3:g}ms")
        return " ".join(parts)


def _parse_bool(value: str) -> bool:
    """Horovod-style boolean env parsing ('1'/'true'/'yes' etc.)."""
    v = value.strip().lower()
    if v in ("1", "true", "yes", "on"):
        return True
    if v in ("0", "false", "no", "off", ""):
        return False
    raise ValueError(f"cannot parse boolean env value {value!r}")
