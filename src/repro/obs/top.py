"""``repro top``: a live terminal dashboard over the service surfaces.

One screen aggregates what an operator otherwise greps four endpoints
for: job counts by state and the most recent jobs with live progress
(``/v1/jobs``), queue depth / health / uptime (``/v1/healthz``),
stage-latency means and cache traffic (``/v1/metrics``), the fabric
worker fleet with per-worker heartbeat ages (``/v1/fabric/status``,
when the service runs the fabric backend), and the tail of the
flight-recorder event ring (``/v1/events``).

The module splits the same way the service API does: :func:`gather`
fetches (tolerating partial failures — a degraded endpoint renders as
a dash, not a crash), :func:`render` is a pure snapshot -> text
function the unit tests drive directly, and :func:`run` is the
clear-screen refresh loop.  Plain ANSI, no curses — it works in any
terminal and in captured CI logs.
"""

from __future__ import annotations

import time

__all__ = ["gather", "render", "run"]

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"

_STATE_ORDER = ("SUBMITTED", "LEASED", "RUNNING", "DONE", "FAILED",
                "QUARANTINED", "CANCELLED")

_LEVEL_COLOR = {"warn": _YELLOW, "error": _RED}


def _color(text: str, code: str, enabled: bool) -> str:
    return f"{code}{text}{_RESET}" if enabled else text


def gather(client, events_since: int = 0, events_limit: int = 12) -> dict:
    """One snapshot of every surface the dashboard renders.

    Each section degrades independently: an endpoint that errors
    contributes ``None`` and the failure lands in ``snap["errors"]``.
    """
    snap: dict = {"taken_s": time.time(), "errors": {}}

    def fetch(name, call):
        try:
            snap[name] = call()
        except Exception as err:
            snap[name] = None
            snap["errors"][name] = f"{type(err).__name__}: {err}"

    fetch("healthz", client.healthz)
    fetch("jobs", client.jobs)
    fetch("metrics", client.metrics)
    fetch("events", lambda: client.events(since=events_since,
                                          limit=events_limit))
    fetch("fabric", lambda: client.transport.json(
        "GET", "/v1/fabric/status")["fabric"])
    return snap


def _samples(snap: dict) -> dict:
    from repro.telemetry.export import parse_prometheus

    if not snap.get("metrics"):
        return {}
    try:
        return parse_prometheus(snap["metrics"])["samples"]
    except Exception:
        return {}


def _sample(samples: dict, name: str, **labels) -> float | None:
    want = tuple(sorted(labels.items()))
    for (sample_name, sample_labels), value in samples.items():
        if sample_name == name and tuple(sorted(sample_labels)) == want:
            return value
    return None


def _stage_means(samples: dict) -> list[tuple[str, float, int]]:
    """``(stage, mean_seconds, count)`` rows from the stage histogram."""
    out = []
    for stage in ("submit_to_lease", "lease_to_start", "start_to_complete"):
        total = _sample(samples, "service_job_stage_seconds_sum", stage=stage)
        count = _sample(samples, "service_job_stage_seconds_count",
                        stage=stage)
        if total is None or not count:
            continue
        out.append((stage, total / count, int(count)))
    return out


def _progress_cell(job: dict) -> str:
    progress = job.get("progress") or {}
    total = progress.get("total")
    if not total:
        return "-"
    done = progress.get("done", 0)
    cached = progress.get("cached", 0)
    cell = f"{done}/{total}"
    if cached:
        cell += f" ({cached} cached)"
    return cell


def render(snap: dict, width: int = 78, color: bool = True,
           max_jobs: int = 8, max_events: int = 8) -> str:
    """The dashboard frame for one snapshot (pure; no I/O)."""
    lines: list[str] = []
    rule = "-" * width

    healthz = snap.get("healthz") or {}
    status = healthz.get("status", "?")
    status_color = _GREEN if status == "ok" else _RED
    lines.append(_color(f" repro top  |  service {status}  "
                        f"|  v{healthz.get('version', '?')}  "
                        f"|  up {healthz.get('uptime_s', 0):.0f}s  "
                        f"|  queue depth {healthz.get('queue_depth', '?')}",
                        _BOLD, color).replace(
                            f"service {status}",
                            _color(f"service {status}", status_color, color)))
    reasons = (healthz.get("health") or {}).get("reasons") or {}
    for key, detail in sorted(reasons.items()):
        lines.append(_color(f"   degraded: {key}: {detail}", _RED, color))
    lines.append(rule)

    jobs = snap.get("jobs")
    if jobs is None:
        lines.append(" jobs: unavailable")
    else:
        counts = {state: 0 for state in _STATE_ORDER}
        for job in jobs:
            counts[job.get("state", "?")] = counts.get(
                job.get("state", "?"), 0) + 1
        lines.append(" jobs   " + "  ".join(
            f"{state.lower()}={counts[state]}" for state in _STATE_ORDER
            if counts.get(state)))
        recent = sorted(jobs, key=lambda j: j.get("created_s", 0.0),
                        reverse=True)[:max_jobs]
        if recent:
            lines.append(f"   {'id':<17}{'state':<12}{'tenant':<11}"
                         f"{'progress':<18}{'elapsed':<9}")
        for job in recent:
            state = job.get("state", "?")
            state_text = _color(
                f"{state:<12}",
                {"FAILED": _RED, "QUARANTINED": _RED,
                 "DONE": _GREEN, "RUNNING": _YELLOW}.get(state, _DIM),
                color)
            elapsed = job.get("elapsed_s")
            lines.append(
                f"   {job.get('id', '?'):<17}{state_text}"
                f"{job.get('tenant', '?'):<11}"
                f"{_progress_cell(job):<18}"
                f"{'' if elapsed is None else f'{elapsed:.2f}s':<9}")
    lines.append(rule)

    samples = _samples(snap)
    stages = _stage_means(samples)
    if stages:
        lines.append(" stage latency (mean)  " + "   ".join(
            f"{stage.replace('_', '>')}: {mean * 1000:.0f}ms x{count}"
            for stage, mean, count in stages))
    hits = _sample(samples, "service_cache", field="hits")
    misses = _sample(samples, "service_cache", field="misses")
    if hits is not None and misses is not None and (hits + misses) > 0:
        lines.append(f" cache hit ratio       "
                     f"{hits / (hits + misses):.0%} "
                     f"({int(hits)} hits / {int(misses)} misses)")

    fabric = snap.get("fabric")
    if fabric:
        lines.append(rule)
        states = fabric.get("states") or {}
        lines.append(
            " fabric  " + "  ".join(
                f"{k.lower()}={v}" for k, v in sorted(states.items()) if v)
            + ("  draining" if fabric.get("draining") else ""))
        detail = fabric.get("worker_detail") or {}
        for name, info in sorted(detail.items()):
            beat = info.get("last_heartbeat_s")
            flags = []
            if info.get("leased"):
                flags.append("leased")
            if info.get("stale"):
                flags.append(_color("STALE", _RED, color))
            lines.append(
                f"   {name:<28} contact {info.get('last_contact_s', 0):>7.1f}s"
                f"  heartbeat {'-' if beat is None else f'{beat:.1f}s':>7}"
                f"  {' '.join(flags)}")

    events = (snap.get("events") or {}).get("events") or []
    if events:
        lines.append(rule)
        lines.append(" recent events")
        for record in events[-max_events:]:
            level = record.get("level", "info")
            ctx = record.get("ctx") or {}
            tag = ctx.get("job_id") or ctx.get("request_id") or ""
            line = (f"   {record.get('seq', ''):>5} "
                    f"{level:<5} {record.get('event', '?'):<24} "
                    f"{tag[:16]}")
            lines.append(_color(line, _LEVEL_COLOR.get(level, _DIM), color))

    for name, err in sorted((snap.get("errors") or {}).items()):
        if name == "fabric":
            continue  # absent on the local backend: expected, not news
        lines.append(_color(f" ! {name}: {err}", _RED, color))
    return "\n".join(lines)


def run(client, interval_s: float = 2.0, iterations: int | None = None,
        color: bool = True, out=None, clock=time.monotonic,
        sleep=time.sleep) -> int:
    """The refresh loop; returns the number of frames drawn.

    ``iterations=None`` runs until interrupted; ``iterations=1`` is
    ``repro top --once`` (a single frame, no screen clearing — safe to
    pipe).  ``out``/``clock``/``sleep`` are injectable for tests.
    """
    import sys

    out = out if out is not None else sys.stdout
    frames = 0
    since = 0
    try:
        while iterations is None or frames < iterations:
            snap = gather(client, events_since=max(0, since - 64))
            last = (snap.get("events") or {}).get("last_seq")
            if isinstance(last, int):
                since = last
            frame = render(snap, color=color)
            if iterations != 1:
                out.write(_CLEAR)
            out.write(frame + "\n")
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
