"""Server-Sent-Events framing: the wire format of live job streams.

``GET /v1/jobs/{id}/events`` speaks the SSE subset this module
implements — ``id:``/``event:``/``data:``/``retry:`` fields, comment
keep-alives, blank-line dispatch — and ``repro submit --follow`` /
``repro jobs tail`` consume it through :func:`follow`, which
reconnects with ``Last-Event-ID`` when a stream drops mid-run.

Framing and parsing are pure functions over lines, so the unit tests
exercise the exact bytes that cross the wire without a socket.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

__all__ = [
    "SSEvent",
    "follow",
    "format_comment",
    "format_event",
    "parse_sse",
]


def format_event(data, *, id=None, event=None,  # noqa: A002 - SSE field name
                 retry_ms: int | None = None) -> bytes:
    """One SSE frame.  ``data`` may be a dict (compact JSON), a
    string, or bytes; multi-line data becomes multiple ``data:``
    lines, which parsers rejoin with ``\\n``."""
    if isinstance(data, (dict, list)):
        text = json.dumps(data, sort_keys=True, separators=(",", ":"))
    elif isinstance(data, bytes):
        text = data.decode("utf-8", "replace")
    else:
        text = str(data)
    lines = []
    if retry_ms is not None:
        lines.append(f"retry: {int(retry_ms)}")
    if id is not None:
        lines.append(f"id: {id}")
    if event is not None:
        lines.append(f"event: {event}")
    for part in (text.split("\n") if text else [""]):
        lines.append(f"data: {part}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_comment(text: str = "heartbeat") -> bytes:
    """An SSE comment line — the keep-alive that holds idle
    connections open without dispatching an event."""
    return f": {text}\n\n".encode("utf-8")


@dataclass
class SSEvent:
    """One parsed SSE frame."""

    data: str = ""
    id: str | None = None  # noqa: A003 - SSE field name
    event: str = "message"
    retry_ms: int | None = None
    comments: list = field(default_factory=list)

    def json(self) -> dict:
        """``data`` decoded as JSON (``{}`` when not valid JSON)."""
        try:
            doc = json.loads(self.data)
        except (json.JSONDecodeError, ValueError):
            return {}
        return doc if isinstance(doc, dict) else {}


def parse_sse(lines) -> "list[SSEvent]":
    """Parse an iterable of SSE lines (str or bytes, newline-tolerant)
    into dispatched events, per the spec's accumulate-until-blank-line
    state machine.  ``retry:`` updates stick to the frame they arrive
    in; comments are collected onto the next dispatched event."""
    events: list[SSEvent] = []
    current = SSEvent()
    has_fields = False

    def dispatch():
        nonlocal current, has_fields
        if has_fields:
            events.append(current)
            current = SSEvent()
        else:
            # A comment-only frame dispatches nothing, but its
            # comments ride along to the next real event.
            current = SSEvent(comments=current.comments)
        has_fields = False

    data_parts: list[str] = []
    for raw in lines:
        line = raw.decode("utf-8", "replace") if isinstance(raw, bytes) \
            else raw
        line = line.rstrip("\r\n")
        if line == "":
            current.data = "\n".join(data_parts)
            data_parts = []
            dispatch()
            continue
        if line.startswith(":"):
            current.comments.append(line[1:].strip())
            continue
        name, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if name == "data":
            data_parts.append(value)
            has_fields = True
        elif name == "id":
            current.id = value
            has_fields = True
        elif name == "event":
            current.event = value or "message"
            has_fields = True
        elif name == "retry":
            try:
                current.retry_ms = int(value)
            except ValueError:
                pass
            else:
                has_fields = True
    if data_parts:
        current.data = "\n".join(data_parts)
        dispatch()
    return events


def _iter_frames(response):
    """Incrementally parse SSE frames off a streaming file-like."""
    pending: list[str] = []
    for raw in response:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        pending.append(line)
        if line == "":
            for event in parse_sse(pending):
                yield event
            pending = []
    if pending:
        for event in parse_sse(pending + [""]):
            yield event


def follow(url: str, *, token: str | None = None,
           last_event_id: str | None = None, timeout_s: float = 30.0,
           max_reconnects: int = 5, sleep=time.sleep, opener=None):
    """Stream SSE events from ``url``, yielding :class:`SSEvent`.

    Terminates when the server dispatches an ``end`` event (our job
    streams always do) or the stream closes cleanly.  A stream that
    *drops* (connection reset, timeout) reconnects up to
    ``max_reconnects`` times with the ``Last-Event-ID`` header, so a
    follower resumes where it left off instead of replaying.  A
    non-2xx response raises ``urllib.error.HTTPError`` for the caller
    to fall back to long-polling.
    """
    opener = opener or urllib.request.urlopen
    reconnects = 0
    retry_ms = 2000
    while True:
        headers = {"Accept": "text/event-stream"}
        if token is not None:
            headers["Authorization"] = f"Bearer {token}"
        if last_event_id is not None:
            headers["Last-Event-ID"] = str(last_event_id)
        request = urllib.request.Request(url, headers=headers)
        try:
            with opener(request, timeout=timeout_s) as response:
                for event in _iter_frames(response):
                    if event.id is not None:
                        last_event_id = event.id
                    if event.retry_ms is not None:
                        retry_ms = event.retry_ms
                    yield event
                    if event.event == "end":
                        return
            return  # clean close without an end event
        except urllib.error.HTTPError:
            raise  # a response is an answer; let the caller fall back
        except (urllib.error.URLError, OSError, TimeoutError):
            reconnects += 1
            if reconnects > max_reconnects:
                raise
            sleep(retry_ms / 1000.0)
