"""Flight recorder: a bounded in-memory ring of recent events.

Every process that emits obs events keeps its last ``capacity``
records here, each stamped with a process-monotonic ``seq``.  Three
consumers:

* ``GET /v1/events?since=SEQ`` — operators (and ``repro top``) page
  through recent events without any file access;
* :meth:`wait_since` — the blocking primitive behind SSE streams and
  the long-poll fallback (one condition variable, no polling);
* :meth:`dump` — on job failure/quarantine/health flip the whole ring
  is written next to the journal, so a chaos-run postmortem ships its
  own evidence even when nobody was watching live.

The ring is deliberately lossy (old events fall off) and the dump is
write-then-rename so a crash mid-dump never leaves a torn file where
a postmortem expects evidence.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded event ring with sequence numbers and change signaling."""

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._ring: list[dict] = []
        self._seq = 0
        self.dumps = 0

    def add(self, record: dict) -> int:
        """Append one event record; returns its assigned ``seq``."""
        with self._cond:
            self._seq += 1
            record["seq"] = self._seq
            self._ring.append(record)
            if len(self._ring) > self.capacity:
                del self._ring[:len(self._ring) - self.capacity]
            self._cond.notify_all()
            return self._seq

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def since(self, seq: int = 0, limit: int | None = None,
              match=None) -> list[dict]:
        """Events with ``seq`` strictly greater than ``seq``, oldest
        first, optionally filtered by ``match(record)`` and capped at
        ``limit``."""
        with self._lock:
            out = [dict(r) for r in self._ring if r.get("seq", 0) > seq]
        if match is not None:
            out = [r for r in out if match(r)]
        if limit is not None and limit >= 0:
            out = out[:limit]
        return out

    def wait_since(self, seq: int, timeout_s: float,
                   match=None) -> list[dict]:
        """Block until an event newer than ``seq`` *and* passing
        ``match`` arrives (or ``timeout_s`` elapses); returns the
        matching events, or ``[]`` on timeout.  Events the filter
        rejects are skipped permanently, so a selective waiter never
        spins on traffic it doesn't care about."""
        deadline = time.monotonic() + max(0.0, timeout_s)
        cursor = seq
        while True:
            fresh = self.since(cursor)
            if fresh:
                cursor = fresh[-1]["seq"]
                if match is not None:
                    fresh = [r for r in fresh if match(r)]
                if fresh:
                    return fresh
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return []
            with self._cond:
                if self._seq <= cursor:
                    self._cond.wait(min(remaining, 0.5))

    def dump(self, path: str | Path, reason: str = "",
             clock=time.time) -> Path:
        """Write the whole ring as JSONL to ``path`` (atomic rename).

        The first line is a header record describing the dump itself;
        the rest are the ring's events, oldest first.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            records = [dict(r) for r in self._ring]
        header = {"schema": 1, "ts": clock(), "event": "flight_recorder_dump",
                  "reason": reason, "pid": os.getpid(),
                  "events": len(records)}
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in [header] + records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, path)
        with self._lock:
            self.dumps += 1
        return path
