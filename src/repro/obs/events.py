"""The process-wide structured event emitter.

One :class:`EventEmitter` per process (the module-level singleton via
:func:`emitter` / :func:`emit`) turns named events into leveled,
schema-versioned JSONL records::

    {"schema": 1, "seq": 42, "ts": 1754560123.4, "level": "info",
     "event": "job_leased", "pid": 31337,
     "ctx": {"job_id": "1f2e...", "request_id": "9a0b..."},
     "worker": "svc:0", ...}

``ctx`` is whatever correlation context (:mod:`repro.obs.context`)
was bound when the event fired — the grep key that stitches one job's
life together across coordinator and worker processes.

Sinks, both optional and both crash-proof (an emitter failure must
never take down the code being observed):

* the per-process :class:`~repro.obs.recorder.FlightRecorder` ring —
  always on while the emitter is enabled;
* an append-only JSONL file ``events-<pid>.jsonl`` under the
  configured obs directory — on when a directory is configured, via
  :func:`configure` or the ``REPRO_OBS_DIR`` environment variable
  (which child worker processes inherit, so one ``repro serve`` run
  yields one obs directory holding every process's log).

``REPRO_OBS=0`` disables the emitter entirely; the acceptance gate
proves result envelopes are byte-identical either way.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs.context import current_context
from repro.obs.recorder import FlightRecorder

__all__ = [
    "OBS_SCHEMA",
    "EventEmitter",
    "configure",
    "emit",
    "emitter",
    "reset_emitter",
]

#: Version stamped into every record; bump on incompatible change.
OBS_SCHEMA = 1

ENV_DIR = "REPRO_OBS_DIR"
ENV_ENABLED = "REPRO_OBS"

DUMP_NAME = "flight-recorder.jsonl"

_LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}


class EventEmitter:
    """Leveled JSONL event emitter with a flight-recorder ring.

    ``enabled=False`` turns :meth:`emit` into a no-op returning
    ``None`` — the switch the byte-identity acceptance test flips.
    ``level`` is the floor below which events are dropped (they still
    cost one dict build, nothing more).
    """

    def __init__(self, *, directory: str | Path | None = None,
                 recorder: FlightRecorder | None = None,
                 level: str = "debug", enabled: bool = True,
                 capacity: int = 2048, clock=time.time) -> None:
        self.recorder = recorder or FlightRecorder(capacity=capacity)
        self.level = level
        self.enabled = bool(enabled)
        self.clock = clock
        self._lock = threading.Lock()
        self._file = None
        self.path: Path | None = None
        self.directory: Path | None = None
        self.write_errors = 0
        if directory is not None:
            self.set_directory(directory)

    def set_directory(self, directory: str | Path) -> None:
        """Attach (or move) the JSONL file sink and dump location."""
        directory = Path(directory)
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None
            self.directory = directory
            self.path = directory / f"events-{os.getpid()}.jsonl"

    def emit(self, event: str, level: str = "info",
             **fields) -> dict | None:
        """Record one event; returns the record, or ``None`` when
        disabled/filtered.  Never raises."""
        if not self.enabled:
            return None
        if _LEVELS.get(level, 20) < _LEVELS.get(self.level, 10):
            return None
        record = {
            "schema": OBS_SCHEMA,
            "ts": self.clock(),
            "level": level if level in _LEVELS else "info",
            "event": str(event),
            "pid": os.getpid(),
            "ctx": current_context(),
        }
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        try:
            self.recorder.add(record)  # assigns record["seq"]
            self._write(record)
        except Exception:
            # Observability must never break the observed code.
            self.write_errors += 1
        return record

    def _write(self, record: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            try:
                if self._file is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(line)
                self._file.flush()
            except OSError:
                self.write_errors += 1
                self._file = None

    def dump(self, reason: str = "",
             directory: str | Path | None = None) -> Path | None:
        """Flight-recorder dump to ``<obs dir>/flight-recorder.jsonl``.

        Called on job failure/quarantine and health flips; a no-op
        (returning ``None``) when no directory is configured or the
        emitter is disabled.  Never raises.
        """
        if not self.enabled:
            return None
        target = Path(directory) if directory is not None else self.directory
        if target is None:
            return None
        try:
            return self.recorder.dump(target / DUMP_NAME, reason=reason,
                                      clock=self.clock)
        except OSError:
            self.write_errors += 1
            return None

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None


_GLOBAL_LOCK = threading.Lock()
_EMITTER: EventEmitter | None = None


def _from_env() -> EventEmitter:
    enabled = os.environ.get(ENV_ENABLED, "1") not in ("0", "false", "no")
    directory = os.environ.get(ENV_DIR) or None
    return EventEmitter(directory=directory, enabled=enabled)


def emitter() -> EventEmitter:
    """The process-wide emitter (built from the environment on first
    use: ``REPRO_OBS_DIR`` file sink, ``REPRO_OBS=0`` kill switch)."""
    global _EMITTER
    with _GLOBAL_LOCK:
        if _EMITTER is None:
            _EMITTER = _from_env()
        return _EMITTER


def configure(directory: str | Path | None = None, *,
              enabled: bool | None = None) -> EventEmitter:
    """Adjust the process-wide emitter (and export ``REPRO_OBS_DIR``
    so spawned worker processes log into the same directory)."""
    current = emitter()
    if directory is not None:
        current.set_directory(directory)
        os.environ[ENV_DIR] = str(directory)
    if enabled is not None:
        current.enabled = bool(enabled)
    return current


def emit(event: str, level: str = "info", **fields) -> dict | None:
    """Emit one event through the process-wide emitter."""
    return emitter().emit(event, level=level, **fields)


def reset_emitter() -> None:
    """Drop the singleton (tests; next :func:`emitter` re-reads env)."""
    global _EMITTER
    with _GLOBAL_LOCK:
        if _EMITTER is not None:
            _EMITTER.close()
        _EMITTER = None
