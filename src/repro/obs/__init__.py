"""Operator observability plane: events, correlation, streaming.

Everything in :mod:`repro.telemetry` and :mod:`repro.trace` is
*simulation-facing* — it measures and attributes **simulated** time.
This package is the wall-clock counterpart: what the service, fabric,
scheduler and workers are doing *right now*, in real seconds, across
real processes.

Four pieces:

* :mod:`repro.obs.events` — a process-wide structured JSONL event
  emitter with leveled, schema-versioned records.  Every record
  carries a correlation context (``job_id``, ``point_key``,
  ``worker_id``, ``request_id``) bound via :func:`bind` and
  propagated across HTTP hops in the ``X-Repro-Context`` header, so
  one job's life is grep-able end to end across coordinator and
  worker processes.
* :mod:`repro.obs.recorder` — a bounded in-memory flight recorder
  (ring buffer) of recent events per process, queryable at
  ``GET /v1/events?since=`` and auto-dumped next to the journal on
  job failure/quarantine/health flips.
* :mod:`repro.obs.sse` — Server-Sent-Events framing and a streaming
  client with ``Last-Event-ID`` reconnect, behind
  ``GET /v1/jobs/{id}/events``, ``repro submit --follow`` and
  ``repro jobs tail``.
* :mod:`repro.obs.top` — the curses-free ANSI dashboard behind
  ``repro top``.

The emitter is **isolated from the simulated plane**: events are
wall-clock stamped, never consulted by any simulation code path, and
a fully disabled emitter (``REPRO_OBS=0``) produces byte-identical
result envelopes — CI enforces this.
"""

from repro.obs.clock import Clock, ManualClock, SYSTEM_CLOCK
from repro.obs.context import (
    CONTEXT_HEADER,
    CONTEXT_KEYS,
    bind,
    context_header,
    current_context,
    decode_context,
    new_request_id,
)
from repro.obs.events import (
    OBS_SCHEMA,
    EventEmitter,
    configure,
    emit,
    emitter,
    reset_emitter,
)
from repro.obs.recorder import FlightRecorder

__all__ = [
    "CONTEXT_HEADER",
    "CONTEXT_KEYS",
    "Clock",
    "EventEmitter",
    "FlightRecorder",
    "ManualClock",
    "OBS_SCHEMA",
    "SYSTEM_CLOCK",
    "bind",
    "configure",
    "context_header",
    "current_context",
    "decode_context",
    "emit",
    "emitter",
    "new_request_id",
    "reset_emitter",
]
