"""One injectable wall + monotonic clock pair.

The codebase needs *both* time planes: wall time for lease deadlines
and event timestamps that must survive process restarts and compare
across machines (:func:`time.time`), and monotonic time for durations
and local timeouts that must not jump when NTP slews the wall clock
(:func:`time.monotonic`).  Before this module, call sites mixed
``time.perf_counter``, ``time.time`` and ``time.monotonic`` ad hoc,
which made it impossible for chaos/tests to freeze "now" consistently
— freezing one plane left the other running.

:class:`Clock` packages the pair; :data:`SYSTEM_CLOCK` is the real
one; :class:`ManualClock` is the test double whose planes advance
together (or apart, when a test wants deliberate skew).
"""

from __future__ import annotations

import time

__all__ = ["Clock", "ManualClock", "SYSTEM_CLOCK"]


class Clock:
    """A wall + monotonic clock pair with injectable sources."""

    def __init__(self, wall=time.time, mono=time.monotonic) -> None:
        self._wall = wall
        self._mono = mono

    def wall(self) -> float:
        """Seconds since the epoch (comparable across processes)."""
        return self._wall()

    def mono(self) -> float:
        """Monotonic seconds (durations/timeouts within a process)."""
        return self._mono()


#: The production pair: ``time.time`` + ``time.monotonic``.
SYSTEM_CLOCK = Clock()


class ManualClock(Clock):
    """Frozen clock pair for tests: both planes move only on
    :meth:`advance`, and always by the same amount unless a test
    skews one plane explicitly via ``advance(wall_s=..., mono_s=...)``.
    """

    def __init__(self, wall_s: float = 1_700_000_000.0,
                 mono_s: float = 0.0) -> None:
        self._wall_now = float(wall_s)
        self._mono_now = float(mono_s)
        super().__init__(wall=lambda: self._wall_now,
                         mono=lambda: self._mono_now)

    def advance(self, seconds: float = 0.0, *,
                wall_s: float | None = None,
                mono_s: float | None = None) -> None:
        """Advance both planes by ``seconds`` (or each by its own)."""
        self._wall_now += seconds if wall_s is None else wall_s
        self._mono_now += seconds if mono_s is None else mono_s
