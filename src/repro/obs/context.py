"""Correlation context: who a wall-clock event is *about*.

A context is a small dict of identity fields — ``job_id``,
``point_key``, ``worker_id``, ``request_id`` — bound for the duration
of a unit of work (:func:`bind` is a context manager) and stamped onto
every event the emitter writes while it is bound.  The binding lives
in a :class:`contextvars.ContextVar`, so concurrent requests in a
threaded server each see their own context.

Propagation across HTTP hops is one header, ``X-Repro-Context``,
holding the context as compact JSON: every
:class:`~repro.fabric.transport.Transport` injects it on outgoing
requests (:meth:`Transport.headers`), and ``ServiceApp`` /
``FabricApp`` decode and re-bind it around request dispatch.  A
``request_id`` is minted at the first hop that lacks one, so a fault
observed deep in the fabric is traceable back to the HTTP request
that triggered it.

Only the four known keys cross the wire, values are forced to short
strings, and a garbled header decodes to ``{}`` — a hostile or ancient
peer cannot inject arbitrary structure into event logs.
"""

from __future__ import annotations

import json
import uuid
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "CONTEXT_HEADER",
    "CONTEXT_KEYS",
    "bind",
    "context_header",
    "current_context",
    "decode_context",
    "new_request_id",
]

CONTEXT_HEADER = "X-Repro-Context"

#: The only fields that exist (and cross process boundaries).
CONTEXT_KEYS = ("job_id", "point_key", "worker_id", "request_id")

_MAX_VALUE_LEN = 200

_CONTEXT: ContextVar[dict | None] = ContextVar("repro_obs_context",
                                               default=None)


def current_context() -> dict:
    """A copy of the currently bound context (``{}`` when none)."""
    ctx = _CONTEXT.get()
    return dict(ctx) if ctx else {}


def _clean(fields: dict) -> dict:
    """Filter to known keys with non-empty, bounded string values."""
    out = {}
    for key in CONTEXT_KEYS:
        value = fields.get(key)
        if value is None:
            continue
        text = str(value)[:_MAX_VALUE_LEN]
        if text:
            out[key] = text
    return out


@contextmanager
def bind(**fields):
    """Bind correlation fields for the enclosed block (merge-down).

    Unknown keys and ``None`` values are ignored; nested binds merge
    (inner wins on conflict) and unwind on exit.  Yields the merged
    context dict.
    """
    merged = current_context()
    merged.update(_clean(fields))
    token = _CONTEXT.set(merged)
    try:
        yield merged
    finally:
        _CONTEXT.reset(token)


def context_header() -> str | None:
    """The ``X-Repro-Context`` value for the current context.

    ``None`` when nothing is bound — callers skip the header entirely
    rather than send an empty one.
    """
    ctx = current_context()
    if not ctx:
        return None
    return json.dumps(ctx, sort_keys=True, separators=(",", ":"))


def decode_context(value: str | None) -> dict:
    """Parse a received ``X-Repro-Context`` header, defensively.

    Garbled JSON, non-dict payloads, unknown keys and non-scalar
    values all degrade to "not there" — observability must never turn
    a bad header into a 500.
    """
    if not value:
        return {}
    try:
        doc = json.loads(value)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(doc, dict):
        return {}
    return _clean({k: v for k, v in doc.items()
                   if isinstance(v, (str, int, float))})


def new_request_id() -> str:
    """A fresh request correlation id (12 hex chars)."""
    return uuid.uuid4().hex[:12]
