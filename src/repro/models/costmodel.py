"""V100 execution-time model for layer graphs.

Turns a :class:`~repro.models.layers.ModelGraph` into the two artifacts
distributed training needs:

* forward / backward / optimizer **times** per iteration on one GPU, via
  the roofline kernel model of :class:`repro.cluster.gpu.GPUSpec`;
* the **gradient emission schedule** — for every gradient tensor, the
  time offset (from backward start) at which it becomes available for
  allreduce.  This is what determines how much communication the Horovod
  runtime can overlap with the rest of the backward pass.

Cost conventions (standard for training-time estimation):

* backward of a weighted layer costs 2× forward (input-gradient +
  weight-gradient kernels); backward of an unweighted layer costs 1×;
* activation traffic doubles in backward;
* the SGD+momentum update is a bandwidth-bound sweep over parameters,
  momentum and gradients (5 accesses per element).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.gpu import GPUSpec, V100
from repro.models.layers import FP32, GradTensor, LayerSpec, ModelGraph

__all__ = ["IterationProfile", "LayerTimes", "ModelCost"]


@dataclass(frozen=True)
class LayerTimes:
    """Forward and backward execution times of one layer at a batch size."""

    layer: LayerSpec
    forward_s: float
    backward_s: float


@dataclass(frozen=True)
class IterationProfile:
    """Everything one training iteration costs on one GPU (no comm).

    ``emission_schedule`` lists ``(offset_s, GradTensor)`` pairs: the
    tensor becomes allreduce-ready ``offset_s`` seconds after backward
    starts, in emission order.
    """

    batch_size: int
    forward_s: float
    backward_s: float
    optimizer_s: float
    emission_schedule: tuple[tuple[float, GradTensor], ...]

    @property
    def compute_s(self) -> float:
        """Total compute-only iteration time."""
        return self.forward_s + self.backward_s + self.optimizer_s

    @property
    def images_per_second(self) -> float:
        """Compute-only throughput at this batch size."""
        return self.batch_size / self.compute_s


class ModelCost:
    """Cost model binding a model graph to a GPU spec.

    Kernel-class efficiency factors (calibration constants, set once):

    * ``DW_MEM_FACTOR`` — TF-era depthwise convolutions achieved only a
      few percent of HBM bandwidth (no fused NHWC kernels yet); this is
      the dominant reason DLv3+ trains at 6.7 img/s, far below its FLOP
      rate, while ResNet-50 (no depthwise) hits 300 img/s.
    * ``DILATED_FACTOR`` — atrous kernels lose im2col locality; applied
      multiplicatively on top of the kind factor.

    With these two constants the calibrated V100 spec reproduces both
    paper-measured throughputs from the layer graphs alone: ResNet-50
    298.5 img/s (paper: 300) and DLv3+ 6.72 img/s (paper: 6.7).
    """

    #: Backward-to-forward flop ratio for weighted / unweighted layers.
    BWD_WEIGHTED = 2.0
    BWD_UNWEIGHTED = 1.0
    #: Memory accesses per parameter element in the SGD+momentum update
    #: (read param, grad, momentum; write param, momentum).
    OPT_ACCESSES = 5
    #: Depthwise-conv memory-efficiency factor (fraction of sustained BW).
    DW_MEM_FACTOR = 0.03
    #: Extra compute+memory derate for dilated (atrous) kernels.
    DILATED_FACTOR = 0.6

    def __init__(self, graph: ModelGraph, gpu: GPUSpec = V100) -> None:
        self.graph = graph
        self.gpu = gpu

    def kernel_factors(self, layer: LayerSpec) -> tuple[float, float]:
        """(compute_factor, mem_factor) for one layer's kernel class."""
        compute, mem = 1.0, 1.0
        if layer.kind == "dwconv":
            mem = self.DW_MEM_FACTOR
        if layer.dilation > 1:
            compute *= self.DILATED_FACTOR
            mem *= self.DILATED_FACTOR
        return compute, mem

    def layer_times(self, layer: LayerSpec, batch_size: int) -> LayerTimes:
        """Roofline forward/backward times of one layer."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        cf, mf = self.kernel_factors(layer)
        fwd = self.gpu.kernel_seconds(
            layer.flops * batch_size, layer.act_bytes * batch_size, cf, mf
        )
        ratio = self.BWD_WEIGHTED if layer.trainable else self.BWD_UNWEIGHTED
        bwd = self.gpu.kernel_seconds(
            layer.flops * batch_size * ratio, 2 * layer.act_bytes * batch_size, cf, mf
        )
        return LayerTimes(layer, fwd, bwd)

    def forward_seconds(self, batch_size: int) -> float:
        """Whole-model forward time."""
        return sum(
            self.layer_times(l, batch_size).forward_s for l in self.graph.layers
        )

    def backward_seconds(self, batch_size: int) -> float:
        """Whole-model backward time."""
        return sum(
            self.layer_times(l, batch_size).backward_s for l in self.graph.layers
        )

    def optimizer_seconds(self) -> float:
        """SGD+momentum parameter update time (bandwidth bound)."""
        nbytes = self.graph.total_params * FP32 * self.OPT_ACCESSES
        return self.gpu.kernel_seconds(0, nbytes)

    def profile(self, batch_size: int) -> IterationProfile:
        """Build the full iteration profile, including emission schedule."""
        forward = 0.0
        times: dict[str, LayerTimes] = {}
        for layer in self.graph.layers:
            lt = self.layer_times(layer, batch_size)
            times[layer.name] = lt
            forward += lt.forward_s

        schedule: list[tuple[float, GradTensor]] = []
        offset = 0.0
        emitted = 0
        for layer in reversed(self.graph.layers):
            offset += times[layer.name].backward_s
            for suffix, numel in layer.weights:
                schedule.append(
                    (offset, GradTensor(f"{layer.name}/{suffix}", numel, emitted))
                )
                emitted += 1
        return IterationProfile(
            batch_size=batch_size,
            forward_s=forward,
            backward_s=offset,
            optimizer_s=self.optimizer_seconds(),
            emission_schedule=tuple(schedule),
        )
