"""Layer specifications and the model-graph container.

A :class:`LayerSpec` records, for one executable layer, everything the
cost model and the Horovod runtime need: trainable parameter tensors
(name + element count), forward FLOPs per image, and activation bytes
per image.  A :class:`ModelGraph` is the ordered forward sequence of
layers; the backward pass is its reverse, and the *gradient emission
order* (what Horovod negotiates, in order) is derived from it.

Conventions
-----------
* FLOPs count multiply and add separately (1 MAC = 2 FLOPs).
* Spatial geometry uses TensorFlow ``SAME`` padding: ``out = ceil(in/stride)``.
* Activation byte counts assume fp32 and count input read + output write,
  the traffic that prices bandwidth-bound layers (BN, ReLU, add) in the
  roofline model.

The :class:`_GraphBuilder` helpers (``conv``, ``sep_conv``, ``bn_relu``…)
compute geometry, FLOPs and parameters so model definitions read like the
papers' architecture tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["GradTensor", "LayerSpec", "ModelGraph"]

FP32 = 4  # bytes per element


@dataclass(frozen=True)
class GradTensor:
    """One gradient tensor as seen by the Horovod runtime.

    ``emission_index`` orders tensors by backward-pass readiness:
    index 0 becomes ready first (the *last* forward layer's gradients).
    """

    name: str
    numel: int
    emission_index: int

    @property
    def nbytes(self) -> int:
        """fp32 byte size of the tensor."""
        return self.numel * FP32


@dataclass(frozen=True)
class LayerSpec:
    """One executable layer of a model graph.

    Attributes
    ----------
    name:
        Unique layer name (``"conv2_block1_conv1"``…).
    kind:
        ``"conv"``, ``"dwconv"``, ``"bn"``, ``"relu"``, ``"pool"``,
        ``"fc"``, ``"add"``, ``"upsample"``, ``"concat"``, ``"pad"``.
    out_hw:
        Output spatial size (h, w).
    out_ch:
        Output channels.
    flops:
        Forward FLOPs per image (MAC = 2).
    act_bytes:
        Activation bytes read + written per image (fp32).
    weights:
        Trainable parameter tensors as ``(suffix, numel)`` pairs, in the
        order their gradients become ready within this layer's backward.
    dilation:
        Atrous rate (1 = dense).  Dilated kernels run at reduced
        efficiency in the cost model, as they did in TF-era cuDNN.
    """

    name: str
    kind: str
    out_hw: tuple[int, int]
    out_ch: int
    flops: int
    act_bytes: int
    weights: tuple[tuple[str, int], ...] = ()
    dilation: int = 1

    @property
    def params(self) -> int:
        """Total trainable parameters in this layer."""
        return sum(n for _, n in self.weights)

    @property
    def trainable(self) -> bool:
        """True when the layer has parameters (emits gradients)."""
        return bool(self.weights)


@dataclass
class ModelGraph:
    """An ordered forward sequence of layers plus model metadata."""

    name: str
    input_hw: tuple[int, int]
    input_ch: int
    layers: list[LayerSpec] = field(default_factory=list)

    @property
    def total_params(self) -> int:
        """Trainable parameter count of the whole model."""
        return sum(layer.params for layer in self.layers)

    @property
    def total_flops(self) -> int:
        """Forward FLOPs per image (MAC = 2)."""
        return sum(layer.flops for layer in self.layers)

    @property
    def gradient_nbytes(self) -> int:
        """Total fp32 gradient bytes per step (== 4 × total_params)."""
        return self.total_params * FP32

    def grad_tensors(self) -> list[GradTensor]:
        """Gradient tensors in backward emission order.

        Backward runs layers in reverse; within a layer, weight tensors
        keep their declared order.  This ordering is what the Horovod
        fusion buffer packs.
        """
        tensors: list[GradTensor] = []
        for layer in reversed(self.layers):
            for suffix, numel in layer.weights:
                tensors.append(
                    GradTensor(f"{layer.name}/{suffix}", numel, len(tensors))
                )
        return tensors

    def layer(self, name: str) -> LayerSpec:
        """Look up a layer by exact name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in {self.name}")

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        seen = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            seen.add(layer.name)
            if layer.flops < 0 or layer.act_bytes < 0:
                raise ValueError(f"negative cost on layer {layer.name!r}")
            if min(layer.out_hw) < 1 or layer.out_ch < 1:
                raise ValueError(f"degenerate geometry on layer {layer.name!r}")

    def summary(self) -> str:
        """A human-readable per-layer table (name, kind, shape, params, GFLOPs)."""
        lines = [
            f"{self.name}  input {self.input_hw[0]}x{self.input_hw[1]}x{self.input_ch}",
            f"{'layer':<42} {'kind':<9} {'output':<14} {'params':>12} {'MFLOPs':>10}",
        ]
        for layer in self.layers:
            shape = f"{layer.out_hw[0]}x{layer.out_hw[1]}x{layer.out_ch}"
            lines.append(
                f"{layer.name:<42} {layer.kind:<9} {shape:<14} "
                f"{layer.params:>12,} {layer.flops / 1e6:>10.1f}"
            )
        lines.append(
            f"total params {self.total_params:,}  "
            f"forward GFLOPs {self.total_flops / 1e9:.2f}"
        )
        return "\n".join(lines)


def same_pad_out(hw: tuple[int, int], stride: int) -> tuple[int, int]:
    """TensorFlow SAME-padding output size."""
    return (math.ceil(hw[0] / stride), math.ceil(hw[1] / stride))


class GraphBuilder:
    """Imperative builder that threads geometry through layer helpers.

    Not exported: model modules use it internally.  Branching (residual /
    ASPP) is handled with :meth:`checkpoint` / :meth:`restore` around each
    branch, plus :meth:`add` / :meth:`concat` to merge.
    """

    def __init__(self, name: str, input_hw: tuple[int, int], input_ch: int) -> None:
        self.graph = ModelGraph(name, input_hw, input_ch)
        self.hw = input_hw
        self.ch = input_ch

    # -- state management --------------------------------------------------
    def checkpoint(self) -> tuple[tuple[int, int], int]:
        """Snapshot (hw, channels) before entering a branch."""
        return (self.hw, self.ch)

    def restore(self, state: tuple[tuple[int, int], int]) -> None:
        """Restore a snapshot taken by :meth:`checkpoint`."""
        self.hw, self.ch = state

    def _emit(self, spec: LayerSpec) -> LayerSpec:
        self.graph.layers.append(spec)
        self.hw = spec.out_hw
        self.ch = spec.out_ch
        return spec

    # -- layers -------------------------------------------------------------
    def conv(self, name: str, out_ch: int, k: int, stride: int = 1,
             dilation: int = 1, bias: bool = False) -> LayerSpec:
        """2-D convolution, SAME padding."""
        out_hw = same_pad_out(self.hw, stride)
        macs = out_hw[0] * out_hw[1] * out_ch * self.ch * k * k
        weights = [("kernel", k * k * self.ch * out_ch)]
        if bias:
            weights.append(("bias", out_ch))
        act = FP32 * (self.hw[0] * self.hw[1] * self.ch + out_hw[0] * out_hw[1] * out_ch)
        return self._emit(
            LayerSpec(name, "conv", out_hw, out_ch, 2 * macs, act, tuple(weights),
                      dilation=dilation)
        )

    def dwconv(self, name: str, k: int, stride: int = 1, dilation: int = 1) -> LayerSpec:
        """Depthwise convolution (channel multiplier 1)."""
        out_hw = same_pad_out(self.hw, stride)
        macs = out_hw[0] * out_hw[1] * self.ch * k * k
        act = FP32 * (self.hw[0] * self.hw[1] + out_hw[0] * out_hw[1]) * self.ch
        return self._emit(
            LayerSpec(name, "dwconv", out_hw, self.ch, 2 * macs, act,
                      (("depthwise_kernel", k * k * self.ch),), dilation=dilation)
        )

    def bn(self, name: str) -> LayerSpec:
        """Batch normalization (γ, β trainable)."""
        n = self.hw[0] * self.hw[1] * self.ch
        return self._emit(
            LayerSpec(name, "bn", self.hw, self.ch, 4 * n, 2 * FP32 * n,
                      (("gamma", self.ch), ("beta", self.ch)))
        )

    def relu(self, name: str) -> LayerSpec:
        """ReLU activation."""
        n = self.hw[0] * self.hw[1] * self.ch
        return self._emit(LayerSpec(name, "relu", self.hw, self.ch, n, 2 * FP32 * n))

    def bn_relu(self, prefix: str) -> None:
        """The ubiquitous BN+ReLU pair."""
        self.bn(f"{prefix}_bn")
        self.relu(f"{prefix}_relu")

    def sep_conv(self, prefix: str, out_ch: int, k: int = 3, stride: int = 1,
                 dilation: int = 1, depth_activation: bool = True) -> None:
        """Separable conv as DeepLab builds it: DW → BN(+ReLU) → PW → BN(+ReLU)."""
        self.dwconv(f"{prefix}_depthwise", k, stride=stride, dilation=dilation)
        self.bn(f"{prefix}_depthwise_bn")
        if depth_activation:
            self.relu(f"{prefix}_depthwise_relu")
        self.conv(f"{prefix}_pointwise", out_ch, 1)
        self.bn(f"{prefix}_pointwise_bn")
        if depth_activation:
            self.relu(f"{prefix}_pointwise_relu")

    def maxpool(self, name: str, k: int = 3, stride: int = 2) -> LayerSpec:
        """Max pooling, SAME padding."""
        out_hw = same_pad_out(self.hw, stride)
        n = out_hw[0] * out_hw[1] * self.ch * k * k
        act = FP32 * (self.hw[0] * self.hw[1] + out_hw[0] * out_hw[1]) * self.ch
        return self._emit(LayerSpec(name, "pool", out_hw, self.ch, n, act))

    def global_avgpool(self, name: str) -> LayerSpec:
        """Global average pooling to 1×1."""
        n = self.hw[0] * self.hw[1] * self.ch
        return self._emit(LayerSpec(name, "pool", (1, 1), self.ch, n, FP32 * (n + self.ch)))

    def fc(self, name: str, out_features: int, bias: bool = True) -> LayerSpec:
        """Fully connected layer on a 1×1 feature."""
        if self.hw != (1, 1):
            raise ValueError(f"fc after non-global feature {self.hw}")
        macs = self.ch * out_features
        weights = [("kernel", self.ch * out_features)]
        if bias:
            weights.append(("bias", out_features))
        act = FP32 * (self.ch + out_features)
        return self._emit(
            LayerSpec(name, "fc", (1, 1), out_features, 2 * macs, act, tuple(weights))
        )

    def add(self, name: str) -> LayerSpec:
        """Elementwise residual add (geometry unchanged)."""
        n = self.hw[0] * self.hw[1] * self.ch
        return self._emit(LayerSpec(name, "add", self.hw, self.ch, n, 3 * FP32 * n))

    def concat(self, name: str, extra_ch: int) -> LayerSpec:
        """Channel concatenation with a branch of ``extra_ch`` channels."""
        out_ch = self.ch + extra_ch
        n = self.hw[0] * self.hw[1] * out_ch
        return self._emit(LayerSpec(name, "concat", self.hw, out_ch, 0, 2 * FP32 * n))

    def upsample(self, name: str, out_hw: tuple[int, int]) -> LayerSpec:
        """Bilinear resize to ``out_hw``."""
        n = out_hw[0] * out_hw[1] * self.ch
        act = FP32 * (self.hw[0] * self.hw[1] + out_hw[0] * out_hw[1]) * self.ch
        return self._emit(LayerSpec(name, "upsample", out_hw, self.ch, 8 * n, act))
