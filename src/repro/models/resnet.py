"""ResNet-50 v1.5 layer graph (the paper's throughput yardstick).

The paper contrasts DLv3+'s 6.7 img/s against ResNet-50's 300 img/s on the
same V100 — a ~45× per-image cost gap that motivates scaling out.  This is
the standard ImageNet ResNet-50: 7×7/2 stem, four bottleneck stages of
(3, 4, 6, 3) blocks, global average pool, 1000-way FC.  v1.5 places the
stride-2 convolution on the 3×3 (not the first 1×1) inside downsampling
bottlenecks.

Reference checks (tested): 25.56M trainable parameters, ≈8.2 GFLOPs
forward per 224×224 image (4.1 GMACs).
"""

from __future__ import annotations

from repro.models.layers import GraphBuilder, ModelGraph

__all__ = ["build_resnet", "build_resnet101", "build_resnet50"]

#: Per-depth stage configuration: blocks per stage (bottleneck widths are
#: always 64/128/256/512, with 4× output expansion).
DEPTH_BLOCKS = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}
WIDTHS = (64, 128, 256, 512)


def _bottleneck(b: GraphBuilder, name: str, width: int, stride: int) -> None:
    """One bottleneck residual block (1×1 → 3×3 → 1×1 + shortcut)."""
    out_ch = 4 * width
    entry = b.checkpoint()
    needs_projection = stride != 1 or entry[1] != out_ch

    b.conv(f"{name}_conv1", width, 1)
    b.bn_relu(f"{name}_1")
    b.conv(f"{name}_conv2", width, 3, stride=stride)
    b.bn_relu(f"{name}_2")
    b.conv(f"{name}_conv3", out_ch, 1)
    b.bn(f"{name}_3_bn")
    main = b.checkpoint()

    if needs_projection:
        b.restore(entry)
        b.conv(f"{name}_shortcut_conv", out_ch, 1, stride=stride)
        b.bn(f"{name}_shortcut_bn")
    b.restore(main)
    b.add(f"{name}_add")
    b.relu(f"{name}_out_relu")


def build_resnet(depth: int = 50, input_hw: tuple[int, int] = (224, 224),
                 num_classes: int = 1000) -> ModelGraph:
    """Build a bottleneck ResNet (depth 50, 101 or 152), v1.5 striding."""
    if depth not in DEPTH_BLOCKS:
        raise ValueError(
            f"unsupported depth {depth}; choose from {sorted(DEPTH_BLOCKS)}"
        )
    b = GraphBuilder(f"resnet{depth}", input_hw, 3)
    b.conv("conv1", 64, 7, stride=2)
    b.bn_relu("conv1")
    b.maxpool("pool1", 3, 2)
    stages = zip(DEPTH_BLOCKS[depth], WIDTHS)
    for stage_idx, (blocks, width) in enumerate(stages, start=2):
        for block_idx in range(1, blocks + 1):
            stride = 2 if (block_idx == 1 and stage_idx > 2) else 1
            _bottleneck(b, f"conv{stage_idx}_block{block_idx}", width, stride)
    b.global_avgpool("avg_pool")
    b.fc(f"fc{num_classes}", num_classes)
    b.graph.validate()
    return b.graph


def build_resnet50(input_hw: tuple[int, int] = (224, 224),
                   num_classes: int = 1000) -> ModelGraph:
    """Build the ResNet-50 v1.5 graph for ``input_hw`` RGB inputs."""
    return build_resnet(50, input_hw, num_classes)


def build_resnet101(input_hw: tuple[int, int] = (224, 224),
                    num_classes: int = 1000) -> ModelGraph:
    """Build the ResNet-101 graph (DeepLab-v3's alternative backbone)."""
    return build_resnet(101, input_hw, num_classes)
