"""Modified Aligned Xception-65 backbone, as used by DeepLab-v3+.

DeepLab's changes vs. the original Xception: deeper (65 layers), all max
pooling replaced by stride-2 separable convolutions, and BN + ReLU after
every 3×3 depthwise convolution ("depth activation") in the exit flow.
With output stride 16 on 513×513 inputs the feature maps run
513 → 257 → 129 → 65 → 33, the exit flow switches to dilation 2 instead
of striding, and the decoder taps the stride-4 (129×129×256) feature after
entry-flow block 2.
"""

from __future__ import annotations

from repro.models.layers import GraphBuilder

__all__ = ["build_xception65_backbone"]

#: Number of middle-flow residual blocks in Xception-65.
MIDDLE_BLOCKS = 16


def _xception_block(b: GraphBuilder, name: str, channels: list[int],
                    stride: int, dilation: int = 1,
                    depth_activation: bool = False,
                    skip: str = "conv") -> None:
    """One Xception block: 3 separable convs + (conv|identity|none) shortcut.

    ``channels`` lists the three pointwise output widths; the stride (or
    dilation at output-stride saturation) applies to the last sep conv.
    """
    entry = b.checkpoint()
    for i, ch in enumerate(channels, start=1):
        s = stride if i == len(channels) else 1
        b.sep_conv(f"{name}_sepconv{i}", ch, 3, stride=s, dilation=dilation,
                   depth_activation=depth_activation)
    main = b.checkpoint()
    if skip == "conv":
        b.restore(entry)
        b.conv(f"{name}_shortcut_conv", channels[-1], 1, stride=stride)
        b.bn(f"{name}_shortcut_bn")
        b.restore(main)
        b.add(f"{name}_add")
    elif skip == "sum":
        b.restore(main)
        b.add(f"{name}_add")
    elif skip != "none":
        raise ValueError(f"unknown skip mode {skip!r}")


def build_xception65_backbone(b: GraphBuilder, output_stride: int = 16) -> dict:
    """Append the Xception-65 backbone to builder ``b``.

    Returns a dict with the builder states at the decoder tap points:
    ``{"low_level": (hw, ch) at stride 4, "out": (hw, ch) at output_stride}``.
    """
    if output_stride not in (8, 16):
        raise ValueError(f"output_stride must be 8 or 16, got {output_stride}")
    # Entry flow stem.
    b.conv("entry_flow_conv1_1", 32, 3, stride=2)
    b.bn_relu("entry_flow_conv1_1")
    b.conv("entry_flow_conv1_2", 64, 3)
    b.bn_relu("entry_flow_conv1_2")
    _xception_block(b, "entry_flow_block1", [128, 128, 128], stride=2)
    low_level = b.checkpoint()  # stride 4 features feed the decoder
    _xception_block(b, "entry_flow_block2", [256, 256, 256], stride=2)
    # Block 3 takes the net to stride 16; with OS=8 it would keep stride 8
    # and dilate everything after (we model the paper's OS=16 training).
    block3_stride = 2 if output_stride == 16 else 1
    dilation = 1 if output_stride == 16 else 2
    _xception_block(b, "entry_flow_block3", [728, 728, 728], stride=block3_stride,
                    dilation=dilation)
    # Middle flow: 16 identity-residual blocks at constant width.
    for i in range(1, MIDDLE_BLOCKS + 1):
        _xception_block(b, f"middle_flow_block{i}", [728, 728, 728], stride=1,
                        dilation=dilation, skip="sum")
    # Exit flow: at OS=16 the exit block stops striding and dilates instead.
    exit_dilation = dilation * 2
    _xception_block(b, "exit_flow_block1", [728, 1024, 1024], stride=1,
                    dilation=exit_dilation)
    b.sep_conv("exit_flow_sepconv1", 1536, 3, dilation=exit_dilation,
               depth_activation=True)
    b.sep_conv("exit_flow_sepconv2", 1536, 3, dilation=exit_dilation,
               depth_activation=True)
    b.sep_conv("exit_flow_sepconv3", 2048, 3, dilation=exit_dilation,
               depth_activation=True)
    return {"low_level": low_level, "out": b.checkpoint()}
