"""DeepLab-v3+ (Xception-65 encoder, ASPP, decoder) layer graph.

The paper's training configuration: 513×513 crops of PASCAL VOC 2012,
output stride 16, ASPP atrous rates (6, 12, 18), 21 classes.  The graph is

* Xception-65 backbone (:mod:`repro.models.xception`) → 33×33×2048;
* ASPP: 1×1 conv, three 3×3 *separable* atrous convs (rates 6/12/18, the
  Xception-variant choice), and global image pooling — each to 256
  channels, concatenated and projected to 256;
* decoder: 4× bilinear upsample, concat with the stride-4 low-level
  feature (1×1-reduced to 48 channels), two 3×3 separable convs at 256,
  a 1×1 classifier to ``num_classes``, and a final 4× upsample to the
  input resolution.

Modeling simplification (documented in DESIGN.md): the decoder taps the
stride-4 feature after entry-flow block 1 (129×129×128) rather than the
mid-block-2 tensor TF-DeepLab uses (same stride, 128 vs 256 channels) —
the 1×1 reduction to 48 channels makes the cost difference negligible.

Reference checks (tested): ≈41M trainable parameters, forward cost ≈45×
ResNet-50's per image, ≈160+ gradient tensors dominated by a few large
pointwise kernels — the long-tail size distribution that motivates tensor
fusion (experiment E2).
"""

from __future__ import annotations

from repro.models.layers import GraphBuilder, ModelGraph
from repro.models.xception import build_xception65_backbone

__all__ = ["build_deeplabv3plus"]

#: PASCAL VOC 2012: 20 object classes + background.
VOC_NUM_CLASSES = 21


def build_deeplabv3plus(input_hw: tuple[int, int] = (513, 513),
                        num_classes: int = VOC_NUM_CLASSES,
                        output_stride: int = 16,
                        atrous_rates: tuple[int, int, int] = (6, 12, 18)) -> ModelGraph:
    """Build the DeepLab-v3+ graph for ``input_hw`` RGB inputs."""
    b = GraphBuilder("deeplabv3plus_xception65", input_hw, 3)
    taps = build_xception65_backbone(b, output_stride=output_stride)
    encoder_hw = b.hw

    # --- ASPP ---------------------------------------------------------------
    encoder_out = b.checkpoint()
    b.conv("aspp0_conv", 256, 1)
    b.bn_relu("aspp0")
    aspp_branches = [b.checkpoint()]
    for i, rate in enumerate(atrous_rates, start=1):
        b.restore(encoder_out)
        b.sep_conv(f"aspp{i}", 256, 3, dilation=rate, depth_activation=True)
        aspp_branches.append(b.checkpoint())
    # Image-level pooling branch.
    b.restore(encoder_out)
    b.global_avgpool("image_pooling")
    b.conv("image_pooling_conv", 256, 1)
    b.bn_relu("image_pooling")
    b.upsample("image_pooling_upsample", encoder_hw)
    # Concatenate the five 256-channel branches.
    b.concat("aspp_concat", extra_ch=4 * 256)
    b.conv("aspp_projection_conv", 256, 1)
    b.bn_relu("aspp_projection")

    # --- Decoder --------------------------------------------------------------
    low_hw = taps["low_level"][0]
    b.upsample("decoder_upsample1", low_hw)
    decoder_main = b.checkpoint()
    b.restore(taps["low_level"])
    b.conv("decoder_low_level_conv", 48, 1)
    b.bn_relu("decoder_low_level")
    low_ch = b.ch
    b.restore(decoder_main)
    b.concat("decoder_concat", extra_ch=low_ch)
    b.sep_conv("decoder_conv1", 256, 3, depth_activation=True)
    b.sep_conv("decoder_conv2", 256, 3, depth_activation=True)
    b.conv("logits_conv", num_classes, 1, bias=True)
    b.upsample("logits_upsample", input_hw)
    b.graph.validate()
    return b.graph
