"""Model zoo: layer-graph reconstructions with compute/size accounting.

The Horovod control plane never sees TensorFlow ops — it sees (a) how long
forward/backward take on the GPU and (b) the sequence of gradient tensors
(name, size, readiness time) the backward pass emits.  This package
reconstructs exactly that for the paper's two models:

* :func:`~repro.models.resnet.build_resnet50` — ResNet-50 v1.5 at 224²,
  the paper's throughput yardstick (300 img/s on one V100).
* :func:`~repro.models.deeplab.build_deeplabv3plus` — DeepLab-v3+ with the
  modified-aligned Xception-65 backbone, output stride 16, ASPP rates
  (6, 12, 18) and the paper's 513×513 crops (6.7 img/s on one V100).

Every layer carries its trainable parameter count, forward FLOPs and
activation bytes; :mod:`repro.models.costmodel` turns those into V100
kernel times and a backward-pass gradient emission schedule.
"""

from repro.models.costmodel import IterationProfile, ModelCost
from repro.models.deeplab import build_deeplabv3plus
from repro.models.layers import GradTensor, LayerSpec, ModelGraph
from repro.models.mobilenet import build_mobilenetv2
from repro.models.resnet import build_resnet, build_resnet50, build_resnet101
from repro.models.xception import build_xception65_backbone

__all__ = [
    "GradTensor",
    "IterationProfile",
    "LayerSpec",
    "ModelCost",
    "ModelGraph",
    "build_deeplabv3plus",
    "build_mobilenetv2",
    "build_resnet",
    "build_resnet101",
    "build_resnet50",
    "build_xception65_backbone",
]
