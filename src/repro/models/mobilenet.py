"""MobileNetV2 layer graph (DeepLab's lightweight backbone option).

The DeepLab family offers MobileNetV2 as the fast backbone (the paper's
related work uses Xception-65 for accuracy; MobileNetV2 is the standard
latency-oriented alternative).  Included in the zoo both for completeness
and because its parameter count (3,504,872 at width 1.0, 1000 classes) is
a strong external check on the graph-builder arithmetic.

Architecture (Sandler et al., 2018): a 32-channel stride-2 stem, seven
groups of inverted-residual bottlenecks (expansion 6 except the first),
a 1280-channel 1×1 head, global pooling and the classifier.
"""

from __future__ import annotations

from repro.models.layers import GraphBuilder, ModelGraph

__all__ = ["build_mobilenetv2"]

#: (expansion t, output channels c, repeats n, first stride s) per group.
INVERTED_RESIDUAL_CFG = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _inverted_residual(b: GraphBuilder, name: str, expansion: int,
                       out_ch: int, stride: int) -> None:
    """One inverted-residual block: expand → depthwise → project."""
    in_ch = b.ch
    entry = b.checkpoint()
    hidden = in_ch * expansion
    if expansion != 1:
        b.conv(f"{name}_expand", hidden, 1)
        b.bn_relu(f"{name}_expand")
    b.dwconv(f"{name}_depthwise", 3, stride=stride)
    b.bn_relu(f"{name}_depthwise")
    b.conv(f"{name}_project", out_ch, 1)
    b.bn(f"{name}_project_bn")  # linear bottleneck: no activation
    if stride == 1 and in_ch == out_ch:
        main = b.checkpoint()
        b.restore(main)
        b.add(f"{name}_add")
    _ = entry  # geometry bookkeeping only; shortcut is identity


def build_mobilenetv2(input_hw: tuple[int, int] = (224, 224),
                      num_classes: int = 1000) -> ModelGraph:
    """Build MobileNetV2 (width multiplier 1.0)."""
    b = GraphBuilder("mobilenetv2", input_hw, 3)
    b.conv("stem_conv", 32, 3, stride=2)
    b.bn_relu("stem")
    block = 0
    for expansion, out_ch, repeats, first_stride in INVERTED_RESIDUAL_CFG:
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            _inverted_residual(b, f"block{block}", expansion, out_ch, stride)
            block += 1
    b.conv("head_conv", 1280, 1)
    b.bn_relu("head")
    b.global_avgpool("avg_pool")
    b.fc("classifier", num_classes)
    b.graph.validate()
    return b.graph
