"""Cross-layer instrumentation: one probe object, hooked into every layer.

A :class:`TelemetryProbe` is the single object a measured run carries
through the stack.  Each layer exposes a narrow, optional hook (an
attribute that defaults to ``None`` and costs one ``is None`` check when
unused):

* ``Environment.monitor`` — the DES kernel calls :meth:`on_schedule` /
  :meth:`on_step` (event-queue depth, queue-residency latency);
* ``Comm.probe`` — :meth:`on_allreduce` per collective (algorithm, bytes,
  participant count, wall seconds);
* ``HorovodRuntime.probe`` — :meth:`on_cycle`, :meth:`on_negotiation`,
  :meth:`on_group`, :meth:`on_detect` (outstanding tensors, negotiation
  latency and cache hits, fusion-buffer occupancy and cycle wait,
  failure-detector probe time);
* ``DistributedTrainer.probe`` — :meth:`on_iteration` with the exact
  simulated instants of each phase boundary (input stall, forward, last
  gradient emission, allreduce barrier, optimizer), the raw material of
  the attribution engine (:mod:`repro.telemetry.attribution`).

Everything the probe records is *observation only*: no simulation events
are created and no ordering changes, so an instrumented run reproduces
the uninstrumented run's timings bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.telemetry.metrics import MetricRegistry

__all__ = ["IterationSample", "TelemetryProbe"]

#: Sample the tracked event-queue-depth gauge every N kernel steps — the
#: histogram sees every step; the track stays small enough to merge into
#: a Chrome trace.
QUEUE_TRACK_STRIDE = 64


@dataclass(frozen=True)
class IterationSample:
    """Phase-boundary instants of one rank's iteration (simulated seconds).

    ``start_s <= stall_end_s <= forward_end_s <= last_emit_s <=
    barrier_s <= end_s`` always holds; differences between consecutive
    instants are the phase durations (input stall, forward, backward,
    allreduce wait, optimizer).
    """

    rank: int
    iteration: int
    start_s: float
    stall_end_s: float
    forward_end_s: float
    last_emit_s: float
    barrier_s: float
    end_s: float

    @property
    def forward_s(self) -> float:
        """Forward-pass duration."""
        return self.forward_end_s - self.stall_end_s

    @property
    def backward_s(self) -> float:
        """Backward pass: forward end to last gradient emission."""
        return self.last_emit_s - self.forward_end_s

    @property
    def wait_s(self) -> float:
        """Exposed allreduce wait: last emission to the sync barrier."""
        return self.barrier_s - self.last_emit_s

    @property
    def optimizer_s(self) -> float:
        """Optimizer-update duration."""
        return self.end_s - self.barrier_s

    @property
    def stall_s(self) -> float:
        """Input-pipeline stall before the iteration's forward pass."""
        return self.stall_end_s - self.start_s

    @property
    def compute_s(self) -> float:
        """Total busy compute (forward + backward + optimizer)."""
        return self.forward_s + self.backward_s + self.optimizer_s


class TelemetryProbe:
    """Metric registry plus the hook methods every layer calls into."""

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        #: Per-rank, per-iteration phase instants (attribution input).
        self.iteration_samples: list[IterationSample] = []
        self._fabric = None
        self._comm = None
        self._runtime = None
        self._steps = 0
        r = self.registry
        # -- sim kernel ---------------------------------------------------
        self._events_total = r.counter(
            "sim_events_processed_total", "DES events popped and dispatched")
        self._queue_depth = r.histogram(
            "sim_event_queue_depth", "event-queue depth observed at each step",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, float("inf")))
        self._queue_track = r.gauge(
            "sim_event_queue_depth_now", "event-queue depth (sampled track)",
            track=True)
        self._schedule_delay = r.histogram(
            "sim_schedule_delay_seconds",
            "queue residency: delay between scheduling and dispatch")
        # -- MPI ----------------------------------------------------------
        self._allreduce_ops = r.counter(
            "mpi_allreduce_total", "collective invocations",
            labelnames=("algorithm",))
        self._allreduce_seconds = r.counter(
            "mpi_allreduce_seconds_total", "wall seconds inside collectives",
            labelnames=("algorithm",))
        self._allreduce_bytes = r.counter(
            "mpi_allreduce_bytes_total", "payload bytes per collective",
            labelnames=("algorithm",))
        self._messages_total = r.counter(
            "mpi_messages_total", "point-to-point messages (control + data)")
        # -- Horovod runtime ----------------------------------------------
        self._cycles = r.counter(
            "hvd_cycles_total", "coordinator ticks")
        self._outstanding = r.gauge(
            "hvd_outstanding_tensors", "tensors awaiting negotiation",
            track=True)
        self._negotiations = r.counter(
            "hvd_negotiations_total", "negotiation rounds",
            labelnames=("cached",))
        self._negotiation_latency = r.histogram(
            "hvd_negotiation_seconds", "per-round negotiation latency")
        self._fusion_occupancy = r.histogram(
            "hvd_fusion_occupancy_ratio",
            "fused-group bytes / fusion threshold",
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0, float("inf")))
        self._fusion_tensors = r.histogram(
            "hvd_fusion_tensors_per_group", "tensors packed per fused op",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, float("inf")))
        self._fusion_wait = r.histogram(
            "hvd_fusion_queue_wait_seconds",
            "ready-to-execution wait (cycle wait + serialization)")
        self._detector_seconds = r.counter(
            "hvd_detector_seconds_total", "failure-detector probe time")
        self._cache_hit_ratio = r.gauge(
            "hvd_cache_hit_ratio", "response-cache hits / negotiations")
        # -- trainer ------------------------------------------------------
        self._phase_seconds = r.counter(
            "train_phase_seconds_total", "per-phase busy/wait seconds",
            labelnames=("phase",))
        self._iterations = r.counter(
            "train_iterations_total", "rank-iterations completed")
        # -- links (pulled at finalize) -----------------------------------
        self._link_bytes = r.counter(
            "link_bytes_total", "bytes carried per link type",
            labelnames=("type",))
        self._link_busy = r.counter(
            "link_busy_seconds_total", "busy seconds per link type",
            labelnames=("type",))
        self._link_utilization = r.gauge(
            "link_mean_utilization", "mean utilization per link type",
            labelnames=("type",))
        self._link_queue = r.gauge(
            "link_contention_queued", "transfers queued on busy links",
            track=True)

    def __getstate__(self) -> dict:
        # Live layer objects (fabric/comm/runtime hold the simulation
        # kernel's generators) cannot cross a process boundary; the
        # recorded registry and iteration samples — everything the
        # attribution engine reads — can.  Call :meth:`finalize` before
        # pickling so run-level aggregates are already pulled.
        state = self.__dict__.copy()
        state["_fabric"] = None
        state["_comm"] = None
        state["_runtime"] = None
        return state

    # -- wiring ------------------------------------------------------------
    def attach(self, env: Any = None, comm: Any = None, runtime: Any = None,
               trainer: Any = None, fabric: Any = None) -> "TelemetryProbe":
        """Install this probe on the given layer objects (any subset)."""
        if env is not None:
            self.registry.bind_clock(lambda: env.now)
            env.monitor = self
        if comm is not None:
            comm.probe = self
            self._comm = comm
        if runtime is not None:
            runtime.probe = self
            self._runtime = runtime
        if trainer is not None:
            trainer.probe = self
        if fabric is not None:
            self._fabric = fabric
        return self

    def finalize(self) -> None:
        """Pull run-level aggregates (links, message counts, cache ratio)."""
        if self._fabric is not None:
            for name, entry in self._fabric.utilization_report().items():
                self._link_bytes.labels(type=name).inc(entry["bytes"])
                self._link_busy.labels(type=name).inc(entry["busy_s"])
                self._link_utilization.labels(type=name).set(
                    entry["mean_utilization"])
        if self._comm is not None:
            self._messages_total.inc(self._comm.messages_sent)
        if self._runtime is not None:
            stats = self._runtime.stats
            if stats.negotiations:
                self._cache_hit_ratio.set(stats.cache_hits / stats.negotiations)

    # -- sim kernel hooks --------------------------------------------------
    def on_schedule(self, env: Any, event: Any, delay: float) -> None:
        """An event was pushed to fire ``delay`` seconds from now."""
        self._schedule_delay.observe(delay)

    def on_step(self, env: Any, event: Any, depth: int) -> None:
        """One event was popped and its callbacks ran."""
        self._events_total.inc()
        self._queue_depth.observe(depth)
        self._steps += 1
        if self._steps % QUEUE_TRACK_STRIDE == 0:
            self._queue_track.set(depth)

    # -- MPI hooks ---------------------------------------------------------
    def on_allreduce(self, algorithm: str, nbytes: int, ranks: int,
                     seconds: float) -> None:
        """One collective completed."""
        self._allreduce_ops.labels(algorithm=algorithm).inc()
        self._allreduce_seconds.labels(algorithm=algorithm).inc(seconds)
        self._allreduce_bytes.labels(algorithm=algorithm).inc(nbytes)

    # -- Horovod runtime hooks ----------------------------------------------
    def on_cycle(self, outstanding: int, ready: int) -> None:
        """One coordinator tick; sample queue state."""
        self._cycles.inc()
        self._outstanding.set(outstanding)
        if self._fabric is not None:
            queued = sum(
                link.resource.queue_len
                for link in self._fabric.topology.links()
                if link.resource.queue_len
            )
            self._link_queue.set(queued)

    def on_negotiation(self, seconds: float, cached: bool,
                       tensors: int) -> None:
        """One negotiation round finished."""
        self._negotiations.labels(cached="yes" if cached else "no").inc()
        self._negotiation_latency.observe(seconds)

    def on_group(self, nbytes: int, tensors: int, ranks: int,
                 threshold_bytes: int, queue_wait_s: float) -> None:
        """One fused allreduce group executed."""
        if threshold_bytes > 0:
            self._fusion_occupancy.observe(nbytes / threshold_bytes)
        self._fusion_tensors.observe(tensors)
        self._fusion_wait.observe(queue_wait_s)

    def on_detect(self, seconds: float) -> None:
        """The failure detector spent ``seconds`` re-probing a suspect."""
        self._detector_seconds.inc(seconds)

    # -- trainer hooks -------------------------------------------------------
    def on_iteration(self, sample: IterationSample) -> None:
        """One rank finished one iteration; record phases + keep the sample."""
        self.iteration_samples.append(sample)
        self._iterations.inc()
        phases = self._phase_seconds
        phases.labels(phase="input_stall").inc(sample.stall_s)
        phases.labels(phase="forward").inc(sample.forward_s)
        phases.labels(phase="backward").inc(sample.backward_s)
        phases.labels(phase="allreduce_wait").inc(sample.wait_s)
        phases.labels(phase="optimizer").inc(sample.optimizer_s)
