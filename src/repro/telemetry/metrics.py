"""Process-wide metric registry: labeled counters, gauges, histograms.

The observability layer's data model follows the Prometheus client
conventions — a :class:`MetricRegistry` owns metric *families* (one per
name), each family owns *children* (one per label combination), and a
child carries the actual value.  Two deliberate differences:

* samples are keyed on **simulated time**: the registry holds a ``clock``
  callable (normally ``lambda: env.now``) and every update stamps the
  child with the simulation instant, so exported samples line up with the
  Chrome trace rather than with host wall time;
* a family created with ``track=True`` additionally appends every update
  to a ``(t, value)`` series — the "counter track" the trace exporter
  merges into ``chrome://tracing`` counter rows.

Updates are a couple of attribute writes, cheap enough to leave always-on;
with ``registry.enabled = False`` every update short-circuits to a no-op
so instrumented code needs no conditional of its own.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, in seconds (the dominant unit here):
#: microseconds through tens of seconds, plus the implicit +Inf.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf")
)

_VALID_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing value (events, bytes, operations)."""

    __slots__ = ("family", "labels", "value", "last_t", "track")

    def __init__(self, family: "MetricFamily", labels: tuple[str, ...]) -> None:
        self.family = family
        self.labels = labels
        self.value = 0.0
        self.last_t = family.registry.clock()
        self.track: list[tuple[float, float]] | None = (
            [] if family.tracked else None
        )

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) at the current simulated time."""
        registry = self.family.registry
        if not registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.family.name!r} cannot decrease")
        self.value += amount
        self.last_t = registry.clock()
        if self.track is not None:
            self.track.append((self.last_t, self.value))


class Gauge:
    """A value that can go up and down (queue depth, occupancy)."""

    __slots__ = ("family", "labels", "value", "last_t", "track")

    def __init__(self, family: "MetricFamily", labels: tuple[str, ...]) -> None:
        self.family = family
        self.labels = labels
        self.value = 0.0
        self.last_t = family.registry.clock()
        self.track: list[tuple[float, float]] | None = (
            [] if family.tracked else None
        )

    def set(self, value: float) -> None:
        """Set the gauge at the current simulated time."""
        registry = self.family.registry
        if not registry.enabled:
            return
        self.value = float(value)
        self.last_t = registry.clock()
        if self.track is not None:
            self.track.append((self.last_t, self.value))

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.set(self.value - amount)


class Histogram:
    """A distribution with cumulative buckets plus sum and count."""

    __slots__ = ("family", "labels", "bucket_counts", "sum", "count", "last_t")

    def __init__(self, family: "MetricFamily", labels: tuple[str, ...]) -> None:
        self.family = family
        self.labels = labels
        self.bucket_counts = [0] * len(family.buckets)
        self.sum = 0.0
        self.count = 0
        self.last_t = family.registry.clock()

    def observe(self, value: float) -> None:
        """Record one observation at the current simulated time."""
        registry = self.family.registry
        if not registry.enabled:
            return
        for i, bound in enumerate(self.family.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
        self.sum += value
        self.count += 1
        self.last_t = registry.clock()

    def cumulative(self) -> list[int]:
        """Per-bucket counts as already-cumulative values (they are)."""
        return list(self.bucket_counts)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name (one per label combination)."""

    def __init__(self, registry: "MetricRegistry", kind: str, name: str,
                 help: str, labelnames: tuple[str, ...],
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 track: bool = False) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if kind == "histogram" and track:
            raise ValueError("histograms do not support track=True")
        self.registry = registry
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.tracked = track
        if kind == "histogram":
            bounds = tuple(sorted(set(buckets)))
            if not bounds or bounds[-1] != float("inf"):
                bounds = bounds + (float("inf"),)
            self.buckets: tuple[float, ...] = bounds
        else:
            self.buckets = ()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labelvalues: str) -> "Counter | Gauge | Histogram":
        """The child for one label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[ln]) for ln in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = _CHILD_TYPES[self.kind](self, key)
            self._children[key] = child
        return child

    @property
    def default(self) -> "Counter | Gauge | Histogram":
        """The unlabeled child (only valid for label-less families)."""
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} requires labels")
        return self.labels()

    # Label-less convenience delegation: family.inc() etc.
    def inc(self, amount: float = 1.0) -> None:
        """Delegate to the unlabeled child (counter/gauge families)."""
        self.default.inc(amount)

    def set(self, value: float) -> None:
        """Delegate to the unlabeled child (gauge families)."""
        self.default.set(value)

    def dec(self, amount: float = 1.0) -> None:
        """Delegate to the unlabeled child (gauge families)."""
        self.default.dec(amount)

    def observe(self, value: float) -> None:
        """Delegate to the unlabeled child (histogram families)."""
        self.default.observe(value)

    def children(self) -> Iterable["Counter | Gauge | Histogram"]:
        """All children in creation order."""
        return self._children.values()

    def child_items(self):
        """``(label_values, child)`` pairs in creation order."""
        return self._children.items()


class MetricRegistry:
    """Owns every metric family of one measured run (or process).

    ``clock`` supplies the simulated time used to stamp samples; attach
    it to an environment with :meth:`bind_clock` once the run's
    :class:`~repro.sim.Environment` exists.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._families: dict[str, MetricFamily] = {}
        #: Master switch: False turns every metric update into a no-op.
        self.enabled = True

    def clock(self) -> float:
        """Current sample timestamp (simulated seconds)."""
        return self._clock()

    def __getstate__(self) -> dict:
        # The clock is a live closure over a run's Environment; recorded
        # samples already carry their timestamps, so a pickled registry
        # (runner workers, result cache) travels without it.
        state = self.__dict__.copy()
        state["_clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the registry at a run's simulated clock."""
        self._clock = clock

    def _family(self, kind: str, name: str, help: str,
                labelnames: tuple[str, ...], **kwargs) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            if family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{family.labelnames}"
                )
            return family
        family = MetricFamily(self, kind, name, help, tuple(labelnames), **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = (),
                track: bool = False) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family("counter", name, help, labelnames, track=track)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = (),
              track: bool = False) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family("gauge", name, help, labelnames, track=track)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> MetricFamily:
        """Register (or fetch) a histogram family."""
        return self._family("histogram", name, help, labelnames,
                            buckets=buckets)

    def collect(self) -> Iterable[MetricFamily]:
        """All families in registration order."""
        return self._families.values()

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families
