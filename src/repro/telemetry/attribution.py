"""Critical-path efficiency attribution: where each iteration's time goes.

The paper's headline is a scaling-efficiency number; this module explains
it.  Every measured iteration is decomposed into buckets that **sum to
the iteration's wall time exactly** (by construction, not by fitting):

``compute``
    The marking rank's own busy time: forward + backward + optimizer,
    including its compute jitter and any fault slowdown.
``input_stall``
    Waiting on the input pipeline before the forward pass.
``straggler_skew``
    From the marking rank's last gradient emission until the *slowest*
    rank's last emission — time the synchronous barrier is stretched by
    peer compute skew, before any communication could finish.
``exposed_comm``
    Within the tail window (last emission anywhere → barrier), the time
    covered by communication work on the coordinator's critical path:
    negotiation, pack/unpack memcpys, compression, and the allreduce
    itself (taken from the runtime timeline, clipped to the window).
``fusion_wait``
    The remainder of the tail window: the coordinator idling for its next
    cycle tick while gradients sit in the fusion queue — the
    ``HOROVOD_CYCLE_TIME`` cost the paper tunes.
``fault_suspect``
    The idle-tail fraction that co-occurs with an active failure-detector
    suspicion (``SUSPECT`` timeline spans): stall attributable to a
    suspected-missing rank rather than to cycle cadence.

The decomposition uses the *marking rank* (the lowest-numbered alive
rank, whose optimizer completion defines the trainer's iteration marks),
so ``wall = start→end`` of that rank's
:class:`~repro.telemetry.instrument.IterationSample` matches the
trainer's recorded iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.telemetry.instrument import IterationSample

__all__ = [
    "BUCKETS",
    "IterationBreakdown",
    "RunAttribution",
    "attribute_measurement",
    "attribute_samples",
    "compare_attributions",
]

#: Attribution buckets, in report order.
BUCKETS = (
    "compute",
    "input_stall",
    "straggler_skew",
    "exposed_comm",
    "fusion_wait",
    "fault_suspect",
)

#: Timeline phases that are communication work on the critical path.
COMM_PHASES = (
    "NEGOTIATE", "ALLREDUCE", "MEMCPY_IN", "MEMCPY_OUT",
    "COMPRESS", "DECOMPRESS",
)


def _union_seconds(spans: Iterable[tuple[float, float]],
                   lo: float, hi: float) -> float:
    """Total length of the union of ``spans`` clipped to ``[lo, hi]``."""
    clipped = sorted(
        (max(s, lo), min(e, hi)) for s, e in spans if e > lo and s < hi
    )
    total = 0.0
    cursor = lo
    for s, e in clipped:
        s = max(s, cursor)
        if e > s:
            total += e - s
            cursor = e
    return total


@dataclass(frozen=True)
class IterationBreakdown:
    """One iteration's wall time split into the attribution buckets."""

    iteration: int
    wall_s: float
    buckets: dict[str, float]

    @property
    def bucket_sum_s(self) -> float:
        """Sum over buckets (equals ``wall_s`` up to float rounding)."""
        return sum(self.buckets.values())

    def share(self, bucket: str) -> float:
        """Bucket seconds / wall seconds."""
        return self.buckets[bucket] / self.wall_s if self.wall_s > 0 else 0.0


@dataclass
class RunAttribution:
    """Steady-state attribution of one measured run."""

    gpus: int
    label: str
    breakdowns: list[IterationBreakdown] = field(default_factory=list)

    @property
    def mean_wall_s(self) -> float:
        """Mean steady-state iteration wall time."""
        if not self.breakdowns:
            raise ValueError("no iterations attributed")
        return sum(b.wall_s for b in self.breakdowns) / len(self.breakdowns)

    def totals(self) -> dict[str, float]:
        """Mean seconds per bucket across steady iterations."""
        n = len(self.breakdowns)
        if not n:
            raise ValueError("no iterations attributed")
        return {
            bucket: sum(b.buckets[bucket] for b in self.breakdowns) / n
            for bucket in BUCKETS
        }

    def shares(self) -> dict[str, float]:
        """Mean bucket seconds as a fraction of mean wall time."""
        wall = self.mean_wall_s
        return {k: v / wall for k, v in self.totals().items()}

    @property
    def max_sum_error(self) -> float:
        """Worst relative |bucket sum − wall| across iterations."""
        return max(
            abs(b.bucket_sum_s - b.wall_s) / b.wall_s if b.wall_s > 0 else 0.0
            for b in self.breakdowns
        )

    def overhead_share(self) -> float:
        """Exposed-comm + fusion-wait share (the tunable overhead)."""
        shares = self.shares()
        return shares["exposed_comm"] + shares["fusion_wait"]

    def table(self) -> str:
        """Fixed-width per-bucket summary table."""
        totals = self.totals()
        shares = self.shares()
        lines = [
            f"-- attribution: {self.label} @ {self.gpus} GPUs "
            f"(wall {self.mean_wall_s * 1e3:.1f} ms/iter) --",
            f"{'bucket':<16} {'ms/iter':>10} {'share':>8}",
        ]
        for bucket in BUCKETS:
            lines.append(
                f"{bucket:<16} {totals[bucket] * 1e3:>10.2f} "
                f"{shares[bucket] * 100:>7.1f}%"
            )
        return "\n".join(lines)


def attribute_samples(samples: list[IterationSample], timeline,
                      warmup_iterations: int = 1, gpus: int = 0,
                      label: str = "") -> RunAttribution:
    """Decompose per-rank iteration samples against a runtime timeline.

    ``timeline`` is duck-typed: anything with ``spans(phase)`` returning
    objects with ``start_s``/``end_s`` (the runtime's
    :class:`~repro.horovod.timeline.Timeline`).
    """
    if not samples:
        raise ValueError("no iteration samples to attribute")
    comm_spans = [
        (ev.start_s, ev.end_s)
        for phase in COMM_PHASES
        for ev in timeline.spans(phase)
    ]
    suspect_spans = [
        (ev.start_s, ev.end_s) for ev in timeline.spans("SUSPECT")
    ]
    by_iteration: dict[int, list[IterationSample]] = {}
    for s in samples:
        by_iteration.setdefault(s.iteration, []).append(s)

    breakdowns = []
    for iteration in sorted(by_iteration):
        if iteration < warmup_iterations:
            continue
        group = by_iteration[iteration]
        # The marking rank defines the trainer's iteration span.
        mark = min(group, key=lambda s: s.rank)
        wall = mark.end_s - mark.start_s
        emit_max = max(s.last_emit_s for s in group)
        skew = max(0.0, emit_max - mark.last_emit_s)
        tail_lo = min(emit_max, mark.barrier_s)
        tail = mark.barrier_s - tail_lo
        exposed = min(tail, _union_seconds(comm_spans, tail_lo, mark.barrier_s))
        idle = max(0.0, tail - exposed)
        suspect_frac = 0.0
        if idle > 0 and suspect_spans:
            overlap = _union_seconds(suspect_spans, tail_lo, mark.barrier_s)
            suspect_frac = min(1.0, overlap / tail) if tail > 0 else 0.0
        buckets = {
            "compute": mark.compute_s,
            "input_stall": mark.stall_s,
            "straggler_skew": skew,
            "exposed_comm": exposed,
            "fusion_wait": idle * (1.0 - suspect_frac),
            "fault_suspect": idle * suspect_frac,
        }
        breakdowns.append(IterationBreakdown(iteration, wall, buckets))
    if not breakdowns:
        raise ValueError(
            f"all {len(by_iteration)} iterations fell inside the "
            f"{warmup_iterations}-iteration warmup"
        )
    return RunAttribution(gpus=gpus, label=label, breakdowns=breakdowns)


def attribute_measurement(measurement) -> RunAttribution:
    """Attribution of a telemetry-enabled :class:`~repro.core.sweep.Measurement`.

    The measurement must have been produced with ``telemetry=True`` (its
    ``telemetry`` attribute carries the probe whose iteration samples
    feed the decomposition).
    """
    probe = getattr(measurement, "telemetry", None)
    if probe is None or not getattr(probe, "iteration_samples", None):
        raise ValueError(
            "measurement has no telemetry samples; run measure_training "
            "with telemetry=True"
        )
    return attribute_samples(
        probe.iteration_samples,
        measurement.timeline,
        warmup_iterations=measurement.stats.warmup_iterations,
        gpus=measurement.gpus,
        label=measurement.config.label,
    )


def compare_attributions(a: RunAttribution, b: RunAttribution) -> list[dict]:
    """Per-bucket delta rows between two runs (e.g. default vs tuned)."""
    ta, sa = a.totals(), a.shares()
    tb, sb = b.totals(), b.shares()
    rows = []
    for bucket in BUCKETS:
        rows.append({
            "bucket": bucket,
            f"{a.label or 'A'} ms": round(ta[bucket] * 1e3, 2),
            f"{a.label or 'A'} share": f"{sa[bucket] * 100:.1f}%",
            f"{b.label or 'B'} ms": round(tb[bucket] * 1e3, 2),
            f"{b.label or 'B'} share": f"{sb[bucket] * 100:.1f}%",
            "delta ms": round((tb[bucket] - ta[bucket]) * 1e3, 2),
        })
    return rows
