"""Exporters: Prometheus text exposition, JSONL event log, Chrome trace.

Three views of the same :class:`~repro.telemetry.metrics.MetricRegistry`:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  ``_bucket``/``_sum``/``_count`` expansion for histograms), so a real
  scraper — or :func:`parse_prometheus`, which the tests round-trip
  through — can consume a run's final counters;
* :func:`to_jsonl` — one JSON object per sample (plus every point of the
  tracked time series and, optionally, the per-rank iteration samples),
  an append-friendly event log;
* :func:`merge_chrome_trace` — the runtime's phase-span Chrome trace with
  the registry's tracked series appended as counter (``"ph": "C"``) rows,
  so queue depths render under the phase spans in ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.metrics import Histogram, MetricRegistry

__all__ = [
    "merge_chrome_trace",
    "parse_prometheus",
    "to_jsonl",
    "to_prometheus",
]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _labels_text(names: tuple[str, ...], values: tuple[str, ...],
                 extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{n}="{_escape(v)}"' for n, v in list(zip(names, values)) + list(extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def to_prometheus(registry: MetricRegistry) -> str:
    """Render every family as Prometheus text exposition (v0.0.4)."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.child_items():
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                for bound, count in zip(family.buckets, cumulative):
                    labels = _labels_text(
                        family.labelnames, values, (("le", _fmt(bound)),)
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                base = _labels_text(family.labelnames, values)
                lines.append(f"{family.name}_sum{base} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{base} {child.count}")
            else:
                labels = _labels_text(family.labelnames, values)
                lines.append(f"{family.name}{labels} {_fmt(child.value)}")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    if not text:
        return ()
    assert text[0] == "{" and text[-1] == "}", text
    body = text[1:-1]
    pairs = []
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq]
        assert body[eq + 1] == '"'
        j = eq + 2
        raw = []
        while body[j] != '"':
            if body[j] == "\\":
                raw.append(body[j:j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        pairs.append((name, _unescape("".join(raw))))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return tuple(pairs)


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse text exposition back into types, help and samples.

    Returns ``{"types": {name: kind}, "help": {name: text},
    "samples": {(name, ((label, value), ...)): float}}``.  Histogram
    series appear under their expanded ``_bucket``/``_sum``/``_count``
    names, exactly as exposed.
    """
    types: dict[str, str] = {}
    help_texts: dict[str, str] = {}
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, rest = line[len("# HELP "):].partition(" ")
            help_texts[name] = rest
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace != -1:
            close = line.rindex("}")
            name = line[:brace]
            labels = _parse_labels(line[brace:close + 1])
            value_text = line[close + 1:].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        value_text = value_text.strip()
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        samples[(name, labels)] = value
    return {"types": types, "help": help_texts, "samples": samples}


def to_jsonl(registry: MetricRegistry, samples: list | None = None) -> str:
    """One JSON object per line: final values, track points, iterations.

    ``samples`` (optional) is a list of
    :class:`~repro.telemetry.instrument.IterationSample`; each becomes an
    ``{"event": "iteration", ...}`` record, making the log a complete
    machine-readable account of the run.
    """
    lines: list[str] = []
    for family in registry.collect():
        for values, child in family.child_items():
            labels = dict(zip(family.labelnames, values))
            if isinstance(child, Histogram):
                lines.append(json.dumps({
                    "event": "metric",
                    "t": child.last_t,
                    "metric": family.name,
                    "kind": family.kind,
                    "labels": labels,
                    "sum": child.sum,
                    "count": child.count,
                    "buckets": {
                        _fmt(b): c
                        for b, c in zip(family.buckets, child.cumulative())
                    },
                }))
                continue
            lines.append(json.dumps({
                "event": "metric",
                "t": child.last_t,
                "metric": family.name,
                "kind": family.kind,
                "labels": labels,
                "value": child.value,
            }))
            if child.track:
                for t, v in child.track:
                    lines.append(json.dumps({
                        "event": "track",
                        "t": t,
                        "metric": family.name,
                        "labels": labels,
                        "value": v,
                    }))
    for sample in samples or ():
        lines.append(json.dumps({
            "event": "iteration",
            "rank": sample.rank,
            "iteration": sample.iteration,
            "start_s": sample.start_s,
            "stall_s": sample.stall_s,
            "forward_s": sample.forward_s,
            "backward_s": sample.backward_s,
            "wait_s": sample.wait_s,
            "optimizer_s": sample.optimizer_s,
            "end_s": sample.end_s,
        }))
    return "\n".join(lines) + ("\n" if lines else "")


def merge_chrome_trace(timeline, registry: MetricRegistry,
                       recorder=None) -> str:
    """The timeline's Chrome trace plus tracked series as counter rows.

    ``timeline`` is the runtime's
    :class:`~repro.horovod.timeline.Timeline`; every tracked
    counter/gauge series in ``registry`` becomes ``"ph": "C"`` events on
    a dedicated ``counters`` thread row so Perfetto draws it under the
    phase spans.  ``recorder`` (optional, a
    :class:`~repro.trace.SpanRecorder`) adds the span hierarchy and
    cross-rank flow arrows.  Delegates to
    :func:`repro.trace.export.merged_chrome_trace` — one coherent
    pid/tid scheme, metadata first, events sorted by timestamp.
    """
    # Lazy import: repro.trace imports attribution from this package.
    from repro.trace.export import merged_chrome_trace

    return merged_chrome_trace(timeline, registry, recorder)
