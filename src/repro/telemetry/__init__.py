"""Observability subsystem: metrics, cross-layer instrumentation, attribution.

``repro.telemetry`` watches a measured run from the inside and explains
where its time goes:

* :mod:`~repro.telemetry.metrics` — a process-wide :class:`MetricRegistry`
  of labeled counters/gauges/histograms keyed on **simulated** time;
* :mod:`~repro.telemetry.instrument` — a :class:`TelemetryProbe` threaded
  through the DES kernel, MPI layer, Horovod runtime and trainer via
  optional, observation-only hooks;
* :mod:`~repro.telemetry.attribution` — the critical-path engine that
  decomposes each iteration into compute / input-stall / straggler-skew /
  exposed-comm / fusion-wait / fault-suspect buckets summing to wall time;
* :mod:`~repro.telemetry.export` — Prometheus text exposition, JSONL event
  log, and counter-track merging into the Chrome trace.
"""

from repro.telemetry.attribution import (
    BUCKETS,
    IterationBreakdown,
    RunAttribution,
    attribute_measurement,
    attribute_samples,
    compare_attributions,
)
from repro.telemetry.export import (
    merge_chrome_trace,
    parse_prometheus,
    to_jsonl,
    to_prometheus,
)
from repro.telemetry.instrument import IterationSample, TelemetryProbe
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
)

__all__ = [
    "BUCKETS",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "IterationBreakdown",
    "IterationSample",
    "MetricFamily",
    "MetricRegistry",
    "RunAttribution",
    "TelemetryProbe",
    "attribute_measurement",
    "attribute_samples",
    "compare_attributions",
    "merge_chrome_trace",
    "parse_prometheus",
    "to_jsonl",
    "to_prometheus",
]
