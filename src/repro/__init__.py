"""repro: executable reproduction of "Efficient Training of Semantic Image
Segmentation on Summit using Horovod and MVAPICH2-GDR" (IPDPSW 2020).

The package builds every system the paper depends on — a discrete-event
simulation kernel, a Summit hardware model, a simulated MPI with real
collective algorithms and per-library performance profiles, Horovod's
control plane, DeepLab-v3+/ResNet-50 cost models, a distributed trainer,
and a real pure-numpy segmentation network — and reproduces every number
in the paper's evaluation on a laptop.

Start at :mod:`repro.core` (``measure_training``, ``StagedTuner``) or run
``python -m repro --help``.  See README.md, DESIGN.md and EXPERIMENTS.md.
"""

__version__ = "1.0.0"


def package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        return __version__


__all__ = ["__version__", "package_version"]
