"""REST API layer: pure request dispatch + stdlib HTTP server.

The API is split so it is testable without sockets:

* :class:`ServiceApp` — a pure function of ``(method, path, headers,
  body) -> (status, content_type, payload bytes)``.  Every route,
  auth check and error envelope lives here;
* :class:`Service` — composition root: config + queue + scheduler +
  cache + telemetry registry, with ``start()``/``stop()`` lifecycle
  (recovery of a crashed predecessor's leases happens in ``start()``);
* :func:`serve` — wraps the app in a stdlib
  ``http.server.ThreadingHTTPServer``; zero dependencies beyond the
  standard library.

Routes (all JSON unless noted)::

    GET  /v1/healthz           liveness (unauthenticated)
    GET  /v1/metrics           Prometheus text exposition (unauth)
    GET  /v1/experiments       the ExperimentSpec registry
    POST /v1/jobs              submit {"experiment", "variant"} or
                               {"points": [...]}; 201 + job doc
    GET  /v1/jobs[?state=]     list job docs
    GET  /v1/jobs/{id}         one job doc
    GET  /v1/jobs/{id}/result  the result envelope (exact stored bytes)
    GET  /v1/jobs/{id}/events  live job stream: SSE by default,
                               ``?poll=1&since=&timeout=`` long-poll
    POST /v1/jobs/{id}/cancel  cancel a SUBMITTED job
    GET  /v1/events            flight-recorder ring (``?since=&limit=``)
    GET  /v1/fabric/...        read-only delegation to the fabric
                               coordinator (``--backend fabric`` only)

Errors use one envelope: ``{"error": {"code", "message"}}`` with the
matching HTTP status (400 bad spec, 401 auth, 404 unknown, 409 wrong
state, 429 quota, 503 overloaded/degraded).  429 and 503 carry a
``Retry-After`` header plus a ``retry_after`` envelope field.
"""

from __future__ import annotations

import json
import threading
import time
from urllib.parse import parse_qs, urlparse

from repro.fabric.health import Health
from repro.fabric.transport import serve_app
from repro.obs import (CONTEXT_HEADER, bind as obs_bind, decode_context,
                       emit as obs_emit, new_request_id)
from repro.runner import ResultCache
from repro.runner.cache import SNAPSHOT_STAT_FIELDS
from repro.service.config import AuthError, QuotaError, ServiceConfig, TokenAuth
from repro.service.jobs import JobState, SpecError, parse_spec
from repro.service.queue import JobQueue, QueueError, QueueWriteError
from repro.service.scheduler import Scheduler
from repro.telemetry.metrics import MetricRegistry

__all__ = ["Service", "ServiceApp", "serve", "serve_in_thread"]

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"


class Service:
    """Composition root for one running simulation service."""

    def __init__(self, config: ServiceConfig | None = None,
                 fs=None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.registry = MetricRegistry(clock=time.time)
        self.health = Health(registry=self.registry, component="service")
        self.cache = ResultCache(directory=self.config.cache_dir, fs=fs,
                                 registry=self.registry, health=self.health)
        self.queue = JobQueue(self.config.state_dir, registry=self.registry,
                              max_recoveries=3, fs=fs, health=self.health)
        #: The distributed execution backend (``--backend fabric``):
        #: one in-process coordinator plus ``fabric_workers`` pulled
        #: ``repro worker`` subprocesses, all sharing this service's
        #: ResultCache — job-level semantics and result bytes are
        #: identical to the local backend.
        self.fabric = None
        if self.config.backend == "fabric":
            from repro.fabric.runner import FabricRunner

            self.fabric = FabricRunner(
                workers=self.config.fabric_workers, cache=self.cache,
                registry=self.registry,
                retries=self.config.point_retries,
                failure_policy="quarantine",
                state_dir=self.config.fabric_dir, fs=fs)
        elif self.config.backend != "local":
            raise ValueError(
                f"unknown backend {self.config.backend!r}; "
                f"expected 'local' or 'fabric'")
        self.scheduler = Scheduler(
            self.queue, results_dir=self.config.results_dir,
            cache=self.cache, registry=self.registry,
            workers=self.config.workers, lease_s=self.config.lease_s,
            job_retries=self.config.job_retries,
            point_retries=self.config.point_retries,
            backend=self.fabric)
        self.auth = TokenAuth.load(self.config.tokens_path,
                                   default_quota=self.config.max_active_jobs)
        self.app = ServiceApp(self)
        self.started_at = time.time()

    def start(self) -> list:
        """Recover leases a dead predecessor left, then start workers.

        Returns the jobs recovery touched (requeued or quarantined) so
        the caller can log them.
        """
        recovered = self.queue.recover()
        self.scheduler.start()
        return recovered

    def stop(self, drain: bool = False) -> None:
        """Stop the worker pool (queue state stays on disk).

        ``drain=True`` additionally flips :attr:`health` to its
        terminal ``draining`` state — final shutdown, as opposed to a
        pause/restart cycle (tests stop and start schedulers freely).
        """
        if drain:
            self.health.drain()
        self.scheduler.stop()
        if drain and self.fabric is not None:
            # Final shutdown reaps the worker subprocesses; a plain
            # pause (tests stop/start schedulers) leaves the fleet up.
            self.fabric.close()


class ServiceApp:
    """Pure HTTP-shaped dispatch over a :class:`Service`."""

    def __init__(self, service: Service) -> None:
        self.service = service
        self._m_requests = service.registry.counter(
            "service_requests_total", "API requests served",
            labelnames=("route", "code"))

    # -- plumbing ----------------------------------------------------------
    @staticmethod
    def _json(status: int, payload, headers: dict | None = None):
        body = json.dumps(payload, indent=1).encode("utf-8")
        if headers:
            return status, _JSON, body, headers
        return status, _JSON, body

    def _error(self, status: int, code: str, message: str,
               retry_after: float | None = None):
        """The single error envelope every failure path goes through.

        ``retry_after`` (429 quota, 503 overload/degraded) is emitted
        three ways on purpose: as the standard ``Retry-After`` header
        for generic HTTP clients, inside the envelope so in-process
        transports and logged bodies carry the same hint, and as a
        ``retry_after_hint`` obs event so operators watching the stream
        see backpressure the moment it starts.
        """
        envelope: dict = {"code": code, "message": message}
        headers = None
        if retry_after is not None:
            envelope["retry_after"] = retry_after
            headers = {"Retry-After": f"{retry_after:g}"}
            obs_emit("retry_after_hint", level="warn", status=status,
                     code=code, retry_after_s=retry_after)
        return self._json(status, {"error": envelope}, headers)

    def handle(self, method: str, path: str, headers: dict | None = None,
               body: bytes | None = None):
        """Dispatch one request; never raises (500 envelope instead).

        Returns ``(status, content_type, payload)``, extended with a
        fourth extra-headers dict for responses that carry one
        (``Retry-After`` on 429/503).
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        url = urlparse(path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        route = "/".join(parts[:3]) or "/"
        # Re-bind the caller's correlation context (one header hop) and
        # mint a request_id at this, the first hop that lacks one —
        # every event emitted below, on any thread this request touches
        # synchronously, carries it.
        ctx = decode_context(headers.get(CONTEXT_HEADER.lower()))
        ctx.setdefault("request_id", new_request_id())
        with obs_bind(**ctx):
            try:
                response = self._dispatch(
                    method.upper(), parts, query, headers, body)
            except QueueWriteError as err:
                # The journal disk is refusing writes: the node is
                # degraded, the transition did not happen — shed the
                # request and tell the client when to come back.
                response = self._error(
                    503, "degraded", str(err),
                    retry_after=self.service.config.retry_after_s)
            except QueueError as err:
                response = self._error(404, "unknown_job", str(err))
            except Exception as err:  # pragma: no cover - defensive
                response = self._error(
                    500, "internal", f"{type(err).__name__}: {err}")
            self._m_requests.labels(route=route,
                                    code=str(response[0])).inc()
            obs_emit("http_request", level="debug", method=method.upper(),
                     route=route, code=response[0])
            return response

    def _tenant(self, headers: dict) -> str:
        return self.service.auth.authenticate(headers.get("authorization"))

    # -- routing -----------------------------------------------------------
    def _dispatch(self, method, parts, query, headers, body):
        if len(parts) < 2 or parts[0] != "v1":
            return self._error(404, "unknown_route",
                               "routes live under /v1/")
        head = parts[1]
        if head == "healthz" and method == "GET":
            return self._healthz()
        if head == "metrics" and method == "GET":
            return self._metrics()
        try:
            tenant = self._tenant(headers)
        except AuthError as err:
            return self._error(401, "unauthorized", str(err))
        if head == "experiments" and method == "GET":
            return self._experiments()
        if head == "events" and len(parts) == 2 and method == "GET":
            return self._events(query)
        if head == "fabric" and method == "GET":
            return self._fabric(method, parts, headers, body)
        if head == "jobs":
            if len(parts) == 2:
                if method == "POST":
                    return self._submit(tenant, body)
                if method == "GET":
                    return self._jobs(query)
            elif len(parts) == 3 and method == "GET":
                return self._job(parts[2])
            elif len(parts) == 4 and parts[3] == "result" and method == "GET":
                return self._result(parts[2])
            elif len(parts) == 4 and parts[3] == "events" and method == "GET":
                return self._job_events(parts[2], query, headers)
            elif len(parts) == 4 and parts[3] == "cancel" and method == "POST":
                return self._cancel(parts[2])
        return self._error(404, "unknown_route",
                           f"no route {method} /{'/'.join(parts)}")

    # -- handlers ----------------------------------------------------------
    def _healthz(self):
        from repro import package_version

        service = self.service
        state = service.health.state
        return self._json(200, {
            # "ok" (not "healthy") for liveness-probe compatibility;
            # degraded/draining pass through so operators see them.
            "status": {Health.HEALTHY: "ok"}.get(state, state),
            "health": service.health.as_dict(),
            "version": package_version(),
            "uptime_s": round(time.time() - service.started_at, 3),
            "queue_depth": service.queue.depth(),
            "workers": service.scheduler.workers,
        })

    def _metrics(self):
        from repro.telemetry import to_prometheus

        service = self.service
        # One code path with `repro cache stats`: the cache snapshot
        # feeds both the CLI and these gauges, and SNAPSHOT_STAT_FIELDS
        # pins the shared schema.
        snap = service.cache.snapshot()
        gauges = service.registry.gauge(
            "service_cache", "result-cache state from ResultCache.snapshot",
            labelnames=("field",))
        for fieldname in SNAPSHOT_STAT_FIELDS:
            gauges.labels(field=fieldname).set(float(snap[fieldname]))
        text = to_prometheus(service.registry)
        return 200, _PROM, text.encode("utf-8")

    def _experiments(self):
        from repro.bench.registry import REGISTRY

        return self._json(200, {
            "experiments": [spec.to_api() for spec in REGISTRY.values()],
        })

    def _submit(self, tenant: str, body: bytes | None):
        try:
            payload = json.loads((body or b"{}").decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            return self._error(400, "bad_json", f"request body: {err}")
        try:
            spec = parse_spec(payload)
        except SpecError as err:
            return self._error(400, "bad_spec", str(err))
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            return self._error(400, "bad_spec", "priority must be an integer")
        service = self.service
        config = service.config
        # Bounded admission: past the watermark the node is overloaded
        # regardless of whose jobs fill it — shed with 503 (a *node*
        # condition, distinct from the per-tenant 429 quota below).
        depth = service.queue.depth()
        if depth >= config.max_queue_depth:
            return self._error(
                503, "overloaded",
                f"queue depth {depth} at watermark "
                f"{config.max_queue_depth}; retry later",
                retry_after=config.retry_after_s)
        try:
            service.auth.check_quota(tenant,
                                     service.queue.active_count(tenant))
        except QuotaError as err:
            return self._error(429, "quota_exceeded", str(err),
                               retry_after=config.retry_after_s)
        job = service.queue.submit(spec, tenant=tenant, priority=priority)
        return self._json(201, {"job": job.to_dict()})

    def _jobs(self, query: dict):
        state = query.get("state")
        if state is not None and state not in JobState.ALL:
            return self._error(400, "bad_state",
                               f"state must be one of {JobState.ALL}")
        jobs = self.service.queue.jobs(state=state)
        return self._json(200, {"jobs": [j.to_dict() for j in jobs]})

    def _job(self, job_id: str):
        job = self.service.queue.get(job_id)
        return self._json(200, {"job": job.to_dict()})

    def _result(self, job_id: str):
        job = self.service.queue.get(job_id)
        if job.state != JobState.DONE:
            return self._error(
                409, "not_done",
                f"job {job_id} is {job.state}; results exist only for "
                f"DONE jobs")
        try:
            text = open(job.result_path, "rb").read()
        except OSError as err:
            return self._error(500, "result_missing",
                               f"stored result unreadable: {err}")
        return 200, _JSON, text

    def _cancel(self, job_id: str):
        try:
            job = self.service.queue.cancel(job_id)
        except QueueError as err:
            if "unknown job" in str(err):
                return self._error(404, "unknown_job", str(err))
            return self._error(409, "not_cancellable", str(err))
        return self._json(200, {"job": job.to_dict()})

    # -- observability routes ----------------------------------------------
    def _events(self, query: dict):
        """The flight recorder's recent-event ring, ``?since=&limit=``."""
        from repro.obs import emitter

        recorder = emitter().recorder
        try:
            since = int(query.get("since", 0))
            limit = max(1, min(int(query.get("limit", 250)), 1000))
        except (TypeError, ValueError):
            return self._error(400, "bad_query",
                               "since and limit must be integers")
        return self._json(200, {
            "events": recorder.since(since, limit=limit),
            "last_seq": recorder.last_seq,
        })

    def _fabric(self, method, parts, headers, body):
        """Read-only delegation to the backend coordinator's app.

        Only GETs pass through (status/healthz for ``repro top`` and
        ``repro fabric status``): the mutating fabric protocol stays on
        the coordinator's own port with its own trust boundary.
        """
        fabric = self.service.fabric
        if fabric is None:
            return self._error(
                404, "no_fabric",
                "this service runs the local backend; start it with "
                "--backend fabric to expose /v1/fabric/ routes")
        return fabric.coordinator.app.handle(
            method, "/" + "/".join(parts), headers, body)

    def _job_events(self, job_id: str, query: dict, headers: dict):
        """Live job watching: SSE stream, or long-poll with ``?poll=1``.

        Long-poll contract: ``since`` is the last job version the
        client saw (start at ``-1``); the response arrives as soon as
        the version moves past it (or after ``timeout`` seconds with
        ``"changed": false``), carrying the full job doc.

        SSE contract: ``state`` events carry the job doc (event id =
        job version, the ``Last-Event-ID`` resume cursor), comment
        keep-alives hold the connection open, and a terminal job sends
        a ``result`` event whose data is the *exact* stored result
        envelope, then ``end``.
        """
        queue = self.service.queue
        job = queue.get(job_id)  # 404 via QueueError when unknown
        if query.get("poll"):
            try:
                since = int(query.get("since", -1))
                timeout = min(max(float(query.get("timeout", 10.0)), 0.0),
                              30.0)
            except (TypeError, ValueError):
                return self._error(400, "bad_query",
                                   "since/timeout must be numeric")
            fresh = queue.wait_version(job_id, since, timeout_s=timeout)
            doc = (fresh if fresh is not None else queue.get(job_id)).to_dict()
            return self._json(200, {"job": doc,
                                    "changed": fresh is not None})
        try:
            since = int(headers.get("last-event-id",
                                    query.get("since", -1)))
        except (TypeError, ValueError):
            since = -1
        try:
            heartbeat_s = min(max(float(query.get("heartbeat", 5.0)), 0.05),
                              30.0)
        except (TypeError, ValueError):
            heartbeat_s = 5.0
        return 200, "text/event-stream", self._sse_frames(
            job.id, since, heartbeat_s)

    def _sse_frames(self, job_id: str, since: int, heartbeat_s: float):
        """Frame generator behind ``GET /v1/jobs/{id}/events``.

        Runs in the HTTP handler thread as the response streams; a
        dropped client surfaces as a broken pipe in the socket layer,
        which closes this generator.
        """
        from repro.obs.sse import format_comment, format_event

        queue = self.service.queue
        seen = since
        sent_retry = False
        while True:
            try:
                job = queue.get(job_id)
                if job.version > seen:
                    seen = job.version
                    yield format_event(
                        job.to_dict(), id=seen, event="state",
                        retry_ms=None if sent_retry else 2000)
                    sent_retry = True
                if job.terminal:
                    if job.state == JobState.DONE and job.result_path:
                        try:
                            text = open(job.result_path, "rb").read()
                        except OSError:
                            text = None
                        if text is not None:
                            # The exact envelope bytes: data framing
                            # splits on \n and parsers rejoin with \n,
                            # so the round trip is byte-lossless.
                            yield format_event(text, id=seen,
                                               event="result")
                    yield format_event({"id": job.id, "state": job.state},
                                       id=seen, event="end")
                    return
                if queue.wait_version(job_id, seen,
                                      timeout_s=heartbeat_s) is None:
                    yield format_comment()
            except GeneratorExit:
                raise
            except Exception:
                # A watcher must never crash the handler thread with a
                # half-written frame: close the stream cleanly.
                yield format_event({"id": job_id, "state": "unknown"},
                                   event="end")
                return


def serve(service: Service, ready=None) -> None:
    """Run the blocking HTTP server for an already-started service.

    The socket layer is the shared
    :func:`repro.fabric.transport.serve_app` adapter (the same one the
    fabric coordinator binds), so there is exactly one stdlib HTTP
    server implementation in the tree.

    ``ready`` (optional) is called with the bound ``(host, port)`` once
    the socket is listening — with ``port=0`` this is how the caller
    learns the ephemeral port.  Returns when ``server.shutdown()`` is
    invoked (the handler thread installs it on the service as
    ``service.http_server`` for exactly that purpose).
    """
    server = serve_app(service.app.handle, host=service.config.host,
                       port=service.config.port)
    service.http_server = server
    if ready is not None:
        ready(server.server_address[0], server.server_address[1])
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()


def serve_in_thread(service: Service) -> tuple[threading.Thread, str]:
    """Start :func:`serve` on a daemon thread; returns ``(thread, url)``.

    Test/embedding convenience — production entry points block in
    :func:`serve` directly.
    """
    bound: dict = {}
    event = threading.Event()

    def ready(host: str, port: int) -> None:
        bound["url"] = f"http://{host}:{port}"
        event.set()

    thread = threading.Thread(target=serve, args=(service,),
                              kwargs={"ready": ready}, daemon=True)
    thread.start()
    if not event.wait(timeout=10.0):  # pragma: no cover - bind failure
        raise RuntimeError("HTTP server failed to bind")
    return thread, bound["url"]
