"""Simulation-as-a-service: REST API + persistent queue + scheduler.

The execution substrate (content-addressed
:class:`~repro.runner.ResultCache`, self-healing
:class:`~repro.runner.Runner`, journaled crash recovery) grew through a
one-shot CLI; this package exposes it as a long-running service, so
overlapping sweep submissions from many clients mostly resolve from
cache instead of re-simulating:

* :mod:`repro.service.jobs` — the job model: validated specs
  (registered experiment or raw point batch), the
  SUBMITTED→LEASED→RUNNING→DONE/FAILED/QUARANTINED state machine;
* :mod:`repro.service.queue` — :class:`JobQueue`, a persistent
  priority queue over the fsynced-JSONL journal idiom, with leases,
  heartbeats, exactly-once crash recovery and compaction;
* :mod:`repro.service.scheduler` — :class:`Scheduler`, the worker pool
  draining the queue through the cached runner (atomic result writes,
  job retry, poison quarantine);
* :mod:`repro.service.api` — :class:`Service` (composition root),
  :class:`ServiceApp` (pure request dispatch: jobs, results, registry,
  health, Prometheus metrics, bearer auth, per-tenant quotas) and
  :func:`serve` (stdlib ``ThreadingHTTPServer`` — zero new
  dependencies);
* :mod:`repro.service.client` — :class:`ServiceClient` over HTTP or
  direct in-process dispatch (no sockets), plus
  :mod:`repro.service.config` for tokens and quotas.

CLI surface: ``repro serve``, ``repro submit``, ``repro jobs
ls|show|result|cancel``.
"""

from repro.service.api import Service, ServiceApp, serve, serve_in_thread
from repro.service.client import (
    ApiError,
    ServiceClient,
    ServiceError,
    TransportError,
)
from repro.service.config import (
    AuthError,
    QuotaError,
    ServiceConfig,
    TokenAuth,
)
from repro.service.jobs import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    Job,
    JobState,
    SpecError,
    build_points,
    parse_spec,
    spec_key,
)
from repro.service.queue import JobQueue, QueueError, QueueWriteError
from repro.service.scheduler import Scheduler, points_envelope, write_result

__all__ = [
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "ApiError",
    "AuthError",
    "Job",
    "JobQueue",
    "JobState",
    "QueueError",
    "QueueWriteError",
    "QuotaError",
    "Scheduler",
    "Service",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SpecError",
    "TokenAuth",
    "TransportError",
    "build_points",
    "parse_spec",
    "points_envelope",
    "serve",
    "serve_in_thread",
    "spec_key",
    "write_result",
]
