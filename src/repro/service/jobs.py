"""Job model for the simulation service: specs, states, serialization.

A *job* is one unit of queued work: either a registered
:class:`~repro.bench.registry.ExperimentSpec` at a named variant
(``{"experiment": "E6", "variant": "quick"}``) or a raw batch of
simulation points (``{"points": [{"kind": "train", ...}, ...]}``)
rendered in a restricted JSON form that maps onto
:class:`~repro.runner.simpoint.TrainPoint` / ``OSUPoint``.

Specs are validated at submission time (:func:`parse_spec`) so the
queue only ever holds executable work, and canonicalized so that a
job's ``spec_key`` — SHA-256 over the canonical spec JSON — identifies
identical submissions: the scheduler executes every job, but identical
work resolves straight out of the content-addressed ResultCache.

State machine::

    SUBMITTED -> LEASED -> RUNNING -> DONE
                                   -> FAILED      (error, retries spent)
                                   -> QUARANTINED (poison: crashed the
                                                   scheduler repeatedly or
                                                   exhausted point retries)
    SUBMITTED -> CANCELLED

Jobs are plain dataclasses serialized to/from JSON dicts; the queue
journals them and the API returns them verbatim.
"""

from __future__ import annotations

import hashlib
import json
import uuid
from dataclasses import asdict, dataclass, field

__all__ = [
    "Job",
    "JobState",
    "SpecError",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "build_points",
    "parse_spec",
    "spec_key",
]


class JobState:
    """String constants for the job lifecycle."""

    SUBMITTED = "SUBMITTED"
    LEASED = "LEASED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    QUARANTINED = "QUARANTINED"
    CANCELLED = "CANCELLED"

    ALL = (SUBMITTED, LEASED, RUNNING, DONE, FAILED, QUARANTINED, CANCELLED)


#: States that count against a tenant's active-job quota.
ACTIVE_STATES = (JobState.SUBMITTED, JobState.LEASED, JobState.RUNNING)
#: States a job never leaves.
TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.QUARANTINED,
                   JobState.CANCELLED)


class SpecError(ValueError):
    """A submitted job spec failed validation."""


#: Point fields accepted over the API, per kind.  Arbitrary knobs
#: (SystemConfig objects, fault schedules, callables) are deliberately
#: not expressible — the network surface stays declarative.
_TRAIN_FIELDS = {"gpus": int, "config": str, "model": str,
                 "iterations": int, "per_gpu_batch": int, "seed": int}
_OSU_FIELDS = {"gpus": int, "library": str, "nbytes": int,
               "iterations": int, "algorithm": str}
_CONFIG_NAMES = ("default", "tuned")
_MODEL_NAMES = ("deeplab", "resnet50", "resnet101", "mobilenetv2")


def _check_fields(point: dict, allowed: dict, index: int) -> None:
    for name, value in point.items():
        if name == "kind":
            continue
        if name not in allowed:
            raise SpecError(
                f"points[{index}]: unknown field {name!r} "
                f"(allowed: kind, {', '.join(sorted(allowed))})"
            )
        if not isinstance(value, allowed[name]):
            raise SpecError(
                f"points[{index}].{name}: expected "
                f"{allowed[name].__name__}, got {type(value).__name__}"
            )


def _parse_point(point, index: int) -> dict:
    if not isinstance(point, dict):
        raise SpecError(f"points[{index}]: expected an object")
    kind = point.get("kind", "train")
    if kind == "train":
        _check_fields(point, _TRAIN_FIELDS, index)
        out = {"kind": "train",
               "gpus": point.get("gpus", 24),
               "config": point.get("config", "tuned"),
               "model": point.get("model", "deeplab"),
               "iterations": point.get("iterations", 3),
               "seed": point.get("seed", 0)}
        if point.get("per_gpu_batch") is not None:
            out["per_gpu_batch"] = point["per_gpu_batch"]
        if out["config"] not in _CONFIG_NAMES:
            raise SpecError(
                f"points[{index}].config must be one of {_CONFIG_NAMES}")
        if out["model"] not in _MODEL_NAMES:
            raise SpecError(
                f"points[{index}].model must be one of {_MODEL_NAMES}")
    elif kind == "osu_allreduce":
        _check_fields(point, _OSU_FIELDS, index)
        from repro.mpi.libraries import MPI_LIBRARIES

        out = {"kind": "osu_allreduce",
               "gpus": point.get("gpus", 12),
               "library": point.get("library", "MVAPICH2-GDR"),
               "nbytes": point.get("nbytes", 65536),
               "iterations": point.get("iterations", 3)}
        if point.get("algorithm") is not None:
            out["algorithm"] = point["algorithm"]
        if out["library"] not in MPI_LIBRARIES:
            raise SpecError(
                f"points[{index}].library must be one of "
                f"{sorted(MPI_LIBRARIES)}")
    else:
        raise SpecError(
            f"points[{index}].kind must be 'train' or 'osu_allreduce', "
            f"got {kind!r}")
    if out["gpus"] < 1:
        raise SpecError(f"points[{index}].gpus must be >= 1")
    if out["iterations"] < 1:
        raise SpecError(f"points[{index}].iterations must be >= 1")
    return out


def parse_spec(payload) -> dict:
    """Validate a submission payload into a canonical job spec.

    Returns either ``{"experiment": <id>, "variant": "quick"|"full"}``
    (validated against the registry) or ``{"points": [<point>, ...]}``
    with every point normalized.  Raises :class:`SpecError` with a
    client-presentable message otherwise.
    """
    if not isinstance(payload, dict):
        raise SpecError("job spec must be a JSON object")
    has_exp = "experiment" in payload
    has_points = "points" in payload
    if has_exp == has_points:
        raise SpecError(
            "job spec must carry exactly one of 'experiment' or 'points'")
    if has_exp:
        from repro.bench.registry import REGISTRY

        exp_id = payload["experiment"]
        if exp_id not in REGISTRY:
            raise SpecError(
                f"unknown experiment {exp_id!r}; known: "
                f"{', '.join(REGISTRY)}")
        variant = payload.get("variant", "quick")
        if variant not in ("quick", "full"):
            raise SpecError("variant must be 'quick' or 'full'")
        return {"experiment": exp_id, "variant": variant}
    points = payload["points"]
    if not isinstance(points, list) or not points:
        raise SpecError("'points' must be a non-empty list")
    return {"points": [_parse_point(p, i) for i, p in enumerate(points)]}


def spec_key(spec: dict) -> str:
    """Content key over the canonical spec JSON (identical-work id)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_points(spec: dict) -> list:
    """Materialize a points spec into executable ``SimPoint`` objects."""
    from repro.core import paper_default_config, paper_tuned_config
    from repro.mpi.libraries import MPI_LIBRARIES
    from repro.runner import OSUPoint, TrainPoint

    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    out = []
    for point in spec["points"]:
        if point["kind"] == "train":
            out.append(TrainPoint(
                gpus=point["gpus"],
                config=configs[point["config"]](),
                model=point["model"],
                per_gpu_batch=point.get("per_gpu_batch"),
                iterations=point["iterations"],
                seed=point["seed"],
            ))
        else:
            out.append(OSUPoint(
                gpus=point["gpus"],
                library=MPI_LIBRARIES[point["library"]],
                nbytes=point["nbytes"],
                iterations=point["iterations"],
                algorithm=point.get("algorithm"),
            ))
    return out


@dataclass
class Job:
    """One queued unit of work plus its full lifecycle accounting."""

    id: str
    tenant: str
    spec: dict
    spec_key: str
    priority: int = 0
    state: str = JobState.SUBMITTED
    created_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    elapsed_s: float | None = None
    attempts: int = 0
    #: Times a scheduler crash/restart found this job mid-lease.
    recoveries: int = 0
    #: Wall time the current (or last) lease was granted — the anchor
    #: for the submit->lease and lease->start stage latencies.
    leased_s: float | None = None
    #: Live progress (``{"done", "total", "cached", "point",
    #: "updated_s"}``).  Liveness, not durable state: refreshed in
    #: memory while the job runs, like heartbeats.
    progress: dict = field(default_factory=dict)
    #: Monotonic change counter for watchers (SSE / long-poll): bumped
    #: on every visible mutation, never journaled.
    version: int = 0
    worker: str | None = None
    lease_until: float | None = None
    error: str | None = None
    result_path: str | None = None
    #: Runner accounting for the completed attempt (cache hits etc.);
    #: *not* part of the result envelope — determinism gates ignore it.
    runner: dict = field(default_factory=dict)

    @classmethod
    def create(cls, spec: dict, tenant: str = "anonymous",
               priority: int = 0, now: float = 0.0) -> "Job":
        """A fresh SUBMITTED job with a random id."""
        return cls(id=uuid.uuid4().hex[:16], tenant=tenant, spec=spec,
                   spec_key=spec_key(spec), priority=int(priority),
                   created_s=float(now))

    def to_dict(self) -> dict:
        """JSON-able form (journal records and API responses)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})

    @property
    def terminal(self) -> bool:
        """Whether the job can never change state again."""
        return self.state in TERMINAL_STATES
