"""Service client: one call surface over HTTP or in-process dispatch.

Two transports behind the same methods, both provided by the shared
:mod:`repro.fabric.transport` layer (no HTTP plumbing lives here):

* ``ServiceClient(url=..., token=...)`` —
  :class:`~repro.fabric.transport.HttpTransport` (what ``repro
  submit`` / ``repro jobs`` use), with connection-level retry/backoff;
* ``ServiceClient(app=service.app, token=...)`` —
  :class:`~repro.fabric.transport.InProcessTransport` calling straight
  into :meth:`~repro.service.api.ServiceApp.handle`, no sockets at
  all, which is how the test suite exercises the full API.

Errors are the shared typed hierarchy: a non-2xx response raises
:class:`~repro.fabric.transport.ApiError` (``status`` / ``code`` /
``message`` from the envelope); a request that produced no response
raises :class:`~repro.fabric.transport.TransportError`.  Both derive
from :class:`~repro.fabric.transport.ServiceError`, re-exported here,
so ``except ServiceError`` covers everything a remote call can throw.
"""

from __future__ import annotations

import time

from repro.bench.compat import deprecated_kwargs
from repro.fabric.transport import (
    ApiError,
    HttpTransport,
    InProcessTransport,
    ServiceError,
    Transport,
    TransportError,
)

__all__ = ["ApiError", "ServiceClient", "ServiceError", "TransportError"]


class _SSEUnavailable(Exception):
    """The server answered the stream request with an error status —
    the follower's cue to fall back to long-polling."""


class ServiceClient:
    """Typed convenience methods over the service's REST routes."""

    @deprecated_kwargs(timeout="timeout_s")
    def __init__(self, url: str | None = None, token: str | None = None,
                 app=None, timeout_s: float = 30.0, breaker=None) -> None:
        if (url is None) == (app is None):
            raise ValueError("pass exactly one of url= or app=")
        if url is not None:
            self.transport: Transport = HttpTransport(
                url, token=token, timeout_s=timeout_s, breaker=breaker)
        else:
            self.transport = InProcessTransport(app, token=token,
                                                breaker=breaker)
        self.url = url.rstrip("/") if url is not None else None
        self.app = app
        self.token = token
        self.timeout_s = float(timeout_s)

    # -- routes ------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self.transport.json("GET", "/v1/healthz")

    def metrics(self) -> str:
        """``GET /v1/metrics`` (Prometheus text)."""
        return self.transport.bytes("GET", "/v1/metrics").decode("utf-8")

    def experiments(self) -> list[dict]:
        """``GET /v1/experiments``."""
        return self.transport.json("GET", "/v1/experiments")["experiments"]

    def submit(self, experiment: str | None = None, variant: str = "quick",
               points: list[dict] | None = None, priority: int = 0,
               busy_retries: int = 0) -> dict:
        """``POST /v1/jobs``; returns the created job doc.

        ``busy_retries`` re-submits after a 429 (quota) or 503
        (overloaded/degraded) response, sleeping for the server's
        ``Retry-After`` hint between attempts; other errors raise
        immediately as usual.
        """
        if (experiment is None) == (points is None):
            raise ValueError("pass exactly one of experiment= or points=")
        payload: dict = {"priority": priority}
        if experiment is not None:
            payload.update(experiment=experiment, variant=variant)
        else:
            payload["points"] = points
        for attempt in range(int(busy_retries) + 1):
            try:
                return self.transport.json("POST", "/v1/jobs", payload)["job"]
            except ApiError as err:
                if err.status not in (429, 503) or attempt >= busy_retries:
                    raise
                time.sleep(err.retry_after if err.retry_after is not None
                           else 0.5)
        raise AssertionError("unreachable")  # pragma: no cover

    def jobs(self, state: str | None = None) -> list[dict]:
        """``GET /v1/jobs``."""
        suffix = f"?state={state}" if state is not None else ""
        return self.transport.json("GET", f"/v1/jobs{suffix}")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self.transport.json("GET", f"/v1/jobs/{job_id}")["job"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /v1/jobs/{id}/result`` — the exact stored envelope."""
        return self.transport.bytes("GET", f"/v1/jobs/{job_id}/result")

    def result(self, job_id: str) -> dict:
        """The result envelope, JSON-decoded."""
        import json

        return json.loads(self.result_bytes(job_id).decode("utf-8"))

    def cancel(self, job_id: str) -> dict:
        """``POST /v1/jobs/{id}/cancel``."""
        return self.transport.json("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    def events(self, since: int = 0, limit: int = 250) -> dict:
        """``GET /v1/events`` — the server's flight-recorder ring.

        Returns ``{"events": [...], "last_seq": N}``; pass the returned
        ``last_seq`` back as ``since`` to tail incrementally.
        """
        return self.transport.json(
            "GET", f"/v1/events?since={int(since)}&limit={int(limit)}")

    def follow(self, job_id: str, timeout_s: float = 300.0,
               poll_s: float = 0.25, heartbeat_s: float | None = None):
        """Yield job docs as the job progresses, until it is terminal.

        Over HTTP this streams ``GET /v1/jobs/{id}/events`` as SSE
        (reconnecting with ``Last-Event-ID`` if the stream drops) and
        falls back to long-polling when the server answers the stream
        request with an error status.  In-process clients long-poll
        directly — the blocking transport consumes a whole response at
        a time, so streaming buys nothing there.

        The final yielded doc is terminal; :class:`TimeoutError` if the
        job outlives ``timeout_s``.
        """
        from repro.service.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout_s
        if self.url is not None:
            try:
                yield from self._follow_sse(job_id, deadline, heartbeat_s)
                return
            except _SSEUnavailable:
                pass  # fall back to long-polling below
        yield from self._follow_poll(job_id, deadline, TERMINAL_STATES)

    def _follow_sse(self, job_id: str, deadline: float,
                    heartbeat_s: float | None):
        import json
        import urllib.error

        from repro.obs.sse import follow as sse_follow

        url = f"{self.url}/v1/jobs/{job_id}/events"
        if heartbeat_s is not None:
            url += f"?heartbeat={heartbeat_s:g}"
        try:
            stream = sse_follow(url, token=self.token,
                                timeout_s=self.timeout_s)
            for event in stream:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} still running at the follow "
                        f"deadline")
                if event.event == "state":
                    try:
                        yield json.loads(event.data)
                    except (ValueError, TypeError):
                        continue
                elif event.event == "end":
                    return
        except urllib.error.HTTPError as err:
            # A response is an answer: the server exists but will not
            # stream (auth proxy, old version) — long-poll instead.
            raise _SSEUnavailable(str(err)) from err

    def _follow_poll(self, job_id: str, deadline: float, terminal):
        version = -1
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still running at the follow deadline")
            doc = self.transport.json(
                "GET", f"/v1/jobs/{job_id}/events?poll=1"
                       f"&since={version}&timeout={min(remaining, 10.0):g}")
            job = doc["job"]
            if doc.get("changed"):
                version = int(job.get("version", version))
                yield job
                if job["state"] in terminal:
                    return

    @deprecated_kwargs(timeout="timeout_s", poll="poll_s")
    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`TimeoutError` if it does not finish in time.
        """
        from repro.service.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout_s}s")
            time.sleep(poll_s)
