"""Service client: one call surface over HTTP or in-process dispatch.

Two transports behind the same methods:

* ``ServiceClient(url=..., token=...)`` — real HTTP via stdlib
  ``urllib.request`` (what ``repro submit`` / ``repro jobs`` use);
* ``ServiceClient(app=service.app, token=...)`` — direct calls into
  :meth:`~repro.service.api.ServiceApp.handle`, no sockets at all,
  which is how the test suite exercises the full API without network
  access.

Every non-2xx response raises :class:`ServiceError` carrying the
server's error envelope (``status``, ``code``, ``message``).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx API response, decoded from the error envelope."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class ServiceClient:
    """Typed convenience methods over the service's REST routes."""

    def __init__(self, url: str | None = None, token: str | None = None,
                 app=None, timeout: float = 30.0) -> None:
        if (url is None) == (app is None):
            raise ValueError("pass exactly one of url= or app=")
        self.url = url.rstrip("/") if url is not None else None
        self.app = app
        self.token = token
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _headers(self) -> dict:
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> tuple[int, bytes]:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        if self.app is not None:
            status, _ctype, data = self.app.handle(
                method, path, self._headers(), body)
            return status, data
        request = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers=self._headers())
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as err:
            return err.code, err.read()

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        status, data = self._request(method, path, payload)
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {}
        if status >= 400:
            error = doc.get("error", {}) if isinstance(doc, dict) else {}
            raise ServiceError(status, error.get("code", "error"),
                               error.get("message", data[:200].decode(
                                   "utf-8", "replace")))
        return doc

    # -- routes ------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._json("GET", "/v1/healthz")

    def metrics(self) -> str:
        """``GET /v1/metrics`` (Prometheus text)."""
        status, data = self._request("GET", "/v1/metrics")
        if status >= 400:
            raise ServiceError(status, "metrics", data[:200].decode(
                "utf-8", "replace"))
        return data.decode("utf-8")

    def experiments(self) -> list[dict]:
        """``GET /v1/experiments``."""
        return self._json("GET", "/v1/experiments")["experiments"]

    def submit(self, experiment: str | None = None, variant: str = "quick",
               points: list[dict] | None = None, priority: int = 0) -> dict:
        """``POST /v1/jobs``; returns the created job doc."""
        if (experiment is None) == (points is None):
            raise ValueError("pass exactly one of experiment= or points=")
        payload: dict = {"priority": priority}
        if experiment is not None:
            payload.update(experiment=experiment, variant=variant)
        else:
            payload["points"] = points
        return self._json("POST", "/v1/jobs", payload)["job"]

    def jobs(self, state: str | None = None) -> list[dict]:
        """``GET /v1/jobs``."""
        suffix = f"?state={state}" if state is not None else ""
        return self._json("GET", f"/v1/jobs{suffix}")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self._json("GET", f"/v1/jobs/{job_id}")["job"]

    def result_bytes(self, job_id: str) -> bytes:
        """``GET /v1/jobs/{id}/result`` — the exact stored envelope."""
        status, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status >= 400:
            try:
                error = json.loads(data.decode("utf-8")).get("error", {})
            except (UnicodeDecodeError, json.JSONDecodeError):
                error = {}
            raise ServiceError(status, error.get("code", "error"),
                               error.get("message", ""))
        return data

    def result(self, job_id: str) -> dict:
        """The result envelope, JSON-decoded."""
        return json.loads(self.result_bytes(job_id).decode("utf-8"))

    def cancel(self, job_id: str) -> dict:
        """``POST /v1/jobs/{id}/cancel``."""
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")["job"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`TimeoutError` if it does not finish in time.
        """
        from repro.service.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll)
