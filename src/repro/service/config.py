"""Service configuration: state layout, bearer-token auth, quotas.

Auth is deliberately simple and dependency-free: a JSON config file of
static bearer tokens, each mapping to a tenant name and an optional
per-tenant active-job quota::

    {"tokens": [
        {"token": "s3cret-alice", "tenant": "alice", "max_active_jobs": 4},
        {"token": "s3cret-bob",   "tenant": "bob"}
    ]}

With no token file configured the service runs *open*: every request
acts as the ``anonymous`` tenant under the default quota.  With tokens
configured, requests to tenant-scoped routes must carry
``Authorization: Bearer <token>``; ``/v1/healthz`` and ``/v1/metrics``
stay unauthenticated so probes and scrapers keep working.
"""

from __future__ import annotations

import hmac
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["AuthError", "QuotaError", "ServiceConfig", "TokenAuth"]

#: Fallback active-job quota when neither the config nor the token
#: entry names one.
DEFAULT_MAX_ACTIVE_JOBS = 64


class AuthError(Exception):
    """Missing or invalid bearer token."""


class QuotaError(Exception):
    """The tenant is at its active-job quota."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to stand the service up."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (printed at startup).
    port: int = 8765
    state_dir: Path = Path("bench_results") / "service"
    tokens_path: Path | None = None
    workers: int = 2
    lease_s: float = 60.0
    job_retries: int = 1
    point_retries: int = 1
    max_active_jobs: int = DEFAULT_MAX_ACTIVE_JOBS
    #: Bounded admission: submissions are shed with ``503 +
    #: Retry-After`` once this many jobs sit SUBMITTED (cross-tenant —
    #: the overload backstop behind the per-tenant 429 quota).
    max_queue_depth: int = 128
    #: The ``Retry-After`` hint (seconds) on 429/503 responses.
    retry_after_s: float = 1.0
    #: Execution backend: ``"local"`` runs every job through an inline
    #: Runner; ``"fabric"`` fans points out to a pull-worker fleet via
    #: a :class:`~repro.fabric.FabricRunner` (coordinator in-process,
    #: workers as ``repro worker`` subprocesses).
    backend: str = "local"
    #: Worker fleet width when ``backend == "fabric"``.
    fabric_workers: int = 2

    @property
    def results_dir(self) -> Path:
        """Result envelopes, one ``<job_id>.json`` each."""
        return Path(self.state_dir) / "results"

    @property
    def fabric_dir(self) -> Path:
        """The fabric coordinator's lease journal directory."""
        return Path(self.state_dir) / "fabric"

    @property
    def obs_dir(self) -> Path:
        """Default structured-event log directory (one JSONL per pid)."""
        return Path(self.state_dir) / "obs"

    @property
    def cache_dir(self) -> Path:
        """The service's shared content-addressed result cache."""
        return Path(self.state_dir) / "cache"


@dataclass
class TokenAuth:
    """Static bearer-token table with per-tenant quotas.

    ``tokens`` maps token -> ``(tenant, max_active_jobs | None)``.  An
    empty table means open mode (no auth header required).
    """

    tokens: dict[str, tuple[str, int | None]] = field(default_factory=dict)
    default_quota: int = DEFAULT_MAX_ACTIVE_JOBS

    @classmethod
    def load(cls, path: str | Path | None,
             default_quota: int = DEFAULT_MAX_ACTIVE_JOBS) -> "TokenAuth":
        """Read the token config file (``None`` -> open mode)."""
        if path is None:
            return cls(default_quota=default_quota)
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as err:
            raise ValueError(f"cannot read token file {path}: {err}") from err
        except json.JSONDecodeError as err:
            raise ValueError(f"bad token file {path}: {err}") from err
        entries = data.get("tokens") if isinstance(data, dict) else None
        if not isinstance(entries, list):
            raise ValueError(
                f"bad token file {path}: expected {{\"tokens\": [...]}}")
        tokens: dict[str, tuple[str, int | None]] = {}
        for i, entry in enumerate(entries):
            if (not isinstance(entry, dict) or "token" not in entry
                    or "tenant" not in entry):
                raise ValueError(
                    f"bad token file {path}: tokens[{i}] needs "
                    f"'token' and 'tenant'")
            quota = entry.get("max_active_jobs")
            if quota is not None and (not isinstance(quota, int) or quota < 1):
                raise ValueError(
                    f"bad token file {path}: tokens[{i}].max_active_jobs "
                    f"must be a positive integer")
            tokens[str(entry["token"])] = (str(entry["tenant"]), quota)
        return cls(tokens=tokens, default_quota=default_quota)

    @property
    def enabled(self) -> bool:
        """Whether requests must present a bearer token."""
        return bool(self.tokens)

    def authenticate(self, authorization: str | None) -> str:
        """Resolve an ``Authorization`` header to a tenant name.

        Raises :class:`AuthError` on a missing/malformed header or an
        unknown token.  Token comparison is constant-time.
        """
        if not self.enabled:
            return "anonymous"
        if not authorization or not authorization.startswith("Bearer "):
            raise AuthError("missing bearer token")
        presented = authorization[len("Bearer "):].strip()
        for token, (tenant, _quota) in self.tokens.items():
            if hmac.compare_digest(presented, token):
                return tenant
        raise AuthError("invalid bearer token")

    def quota(self, tenant: str) -> int:
        """The active-job quota for one tenant."""
        for _token, (name, quota) in self.tokens.items():
            if name == tenant and quota is not None:
                return quota
        return self.default_quota

    def check_quota(self, tenant: str, active: int) -> None:
        """Raise :class:`QuotaError` when a submission would exceed it."""
        limit = self.quota(tenant)
        if active >= limit:
            raise QuotaError(
                f"tenant {tenant!r} has {active} active jobs "
                f"(quota {limit}); retry after some complete")
