"""Persistent priority job queue with leases and exactly-once recovery.

State lives in two places with one source of truth:

* an append-only fsynced JSONL journal (``<state_dir>/queue.jsonl``,
  the :class:`~repro.runner.journal.RunJournal` discipline: one
  ``write`` + ``flush`` + ``fsync`` per event, torn tails dropped on
  read), which records every state transition;
* an in-memory ``{id: Job}`` map rebuilt by replaying the journal, so a
  restarted scheduler resumes exactly where the journal says the last
  one died.

Exactly-once contract
---------------------
A job reaches DONE at most once: ``complete()`` refuses a second
completion, and result files are written atomically *before* the
``job_done`` event is journaled — a crash between the two replays the
job, whose points then resolve from the ResultCache and atomically
overwrite the same file, leaving a single result entry.

On :meth:`recover` (scheduler restart), LEASED/RUNNING jobs revert to
SUBMITTED — the workers holding those leases died with the old process.
Each revert increments ``recoveries``; a job that keeps taking the
scheduler down with it is quarantined after ``max_recoveries`` rather
than crash-looping forever.  Within a live scheduler,
:meth:`requeue_expired` reclaims leases whose holder stopped
heartbeating (heartbeats refresh ``lease_until`` in memory only — they
are liveness, not durable state).

The lease mechanics themselves (grant/refresh/release, expiry sweeps
with the heartbeat-vs-sweep TOCTOU window closed, recovery counting)
live in :class:`repro.fabric.lease.LeaseManager`, shared with the
distributed fabric's point queue — one implementation, two consumers.

Compaction (:meth:`compact`) rewrites the journal atomically, keeping
one ``job_snapshot`` record per terminal job and the raw event tail for
live ones, so long-lived service state dirs don't grow unbounded.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.fabric.lease import LeaseManager
from repro.runner.journal import RunJournal
from repro.service.jobs import ACTIVE_STATES, Job, JobState

__all__ = ["JobQueue", "QueueError", "QueueWriteError"]


class QueueError(RuntimeError):
    """An illegal queue transition (unknown job, double completion...)."""


class QueueWriteError(QueueError):
    """The journal — the queue's durable source of truth — refused a
    write (ENOSPC, EIO).  The attempted transition did **not** happen:
    this journal is replayed on restart, so an un-journaled mutation
    would be silently undone by the next recovery.  The API layer maps
    this to ``503 + Retry-After``."""


class JobQueue:
    """Journal-backed priority queue of :class:`~repro.service.jobs.Job`.

    Thread-safe: every public method holds the queue lock.  ``registry``
    (optional) receives ``service_*`` counters/gauges.
    """

    def __init__(self, state_dir: str | Path, registry=None,
                 max_recoveries: int = 3,
                 clock=time.time, fs=None, health=None) -> None:
        self.state_dir = Path(state_dir)
        self.journal = RunJournal(self.state_dir / "queue.jsonl", fs=fs)
        self.health = health
        self.max_recoveries = int(max_recoveries)
        self.clock = clock
        self.leases = LeaseManager(
            active_states=(JobState.LEASED, JobState.RUNNING),
            lease_s=60.0, max_recoveries=max_recoveries, clock=clock)
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._seq: dict[str, int] = {}  # submission order tiebreak
        self._next_seq = 0
        self._m_submitted = self._m_finished = self._m_leases = None
        self._m_recovered = self._m_depth = None
        if registry is not None:
            self._m_submitted = registry.counter(
                "service_jobs_submitted_total", "jobs accepted into the queue",
                labelnames=("tenant",))
            self._m_finished = registry.counter(
                "service_jobs_finished_total", "jobs reaching a terminal state",
                labelnames=("state",))
            self._m_leases = registry.counter(
                "service_leases_total", "job leases granted")
            self._m_recovered = registry.counter(
                "service_leases_recovered_total",
                "leases reclaimed from dead or silent workers")
            self._m_depth = registry.gauge(
                "service_queue_depth", "SUBMITTED jobs awaiting a worker")
        self._replay()

    # -- journal replay ----------------------------------------------------
    def _replay(self) -> None:
        for record in self.journal.events():
            event = record.get("event")
            if event in ("job_submitted", "job_snapshot"):
                job = Job.from_dict(record.get("job", {}))
                self._install(job)
            elif event == "job_heartbeat":
                continue
            else:
                job = self._jobs.get(record.get("id", ""))
                if job is None:
                    continue
                self._apply(job, record)
        self._update_depth()

    def _install(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._seq[job.id] = self._next_seq
        self._next_seq += 1

    @staticmethod
    def _apply(job: Job, record: dict) -> None:
        event = record["event"]
        if event == "job_leased":
            job.state = JobState.LEASED
            job.worker = record.get("worker")
            job.lease_until = record.get("lease_until")
            job.attempts = record.get("attempts", job.attempts)
        elif event == "job_running":
            job.state = JobState.RUNNING
            job.started_s = record.get("started_s", job.started_s)
        elif event == "job_requeued":
            job.state = JobState.SUBMITTED
            job.worker = None
            job.lease_until = None
            job.recoveries = record.get("recoveries", job.recoveries)
            job.error = record.get("error", job.error)
        elif event == "job_done":
            job.state = JobState.DONE
            job.result_path = record.get("result_path")
            job.finished_s = record.get("finished_s")
            job.elapsed_s = record.get("elapsed_s")
            job.runner = record.get("runner", {})
            job.worker = None
            job.lease_until = None
        elif event in ("job_failed", "job_quarantined"):
            job.state = (JobState.FAILED if event == "job_failed"
                         else JobState.QUARANTINED)
            job.error = record.get("error")
            job.finished_s = record.get("finished_s")
            job.worker = None
            job.lease_until = None
        elif event == "job_cancelled":
            job.state = JobState.CANCELLED
            job.finished_s = record.get("finished_s")

    def _update_depth(self) -> None:
        if self._m_depth is not None:
            self._m_depth.set(sum(
                1 for j in self._jobs.values()
                if j.state == JobState.SUBMITTED))

    def _finish_metric(self, state: str) -> None:
        if self._m_finished is not None:
            self._m_finished.labels(state=state).inc()

    def _append(self, event: str, **fields) -> None:
        """Durable journal append, or :class:`QueueWriteError`.

        Unlike the fabric's audit journal, this journal IS the queue's
        recovery state — a transition that cannot be journaled must
        not happen at all, so the failure propagates (after flipping
        :attr:`health` to degraded).  The first append that lands
        after an outage resolves the degradation.
        """
        try:
            self.journal.append(event, **fields)
        except OSError as err:
            if self.health is not None:
                self.health.degrade("journal",
                                    f"{event} append failed: {err}")
            raise QueueWriteError(
                f"queue journal write failed ({event}): {err}") from err
        if self.health is not None:
            self.health.resolve("journal")

    # -- submission --------------------------------------------------------
    def submit(self, spec: dict, tenant: str = "anonymous",
               priority: int = 0) -> Job:
        """Durably enqueue a validated spec; returns the new job."""
        with self._lock:
            job = Job.create(spec, tenant=tenant, priority=priority,
                             now=self.clock())
            self._append("job_submitted", job=job.to_dict())
            self._install(job)
            if self._m_submitted is not None:
                self._m_submitted.labels(tenant=tenant).inc()
            self._update_depth()
            return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job that has not started; raises otherwise."""
        with self._lock:
            job = self.get(job_id)
            if job.state != JobState.SUBMITTED:
                raise QueueError(
                    f"job {job_id} is {job.state}; only SUBMITTED jobs "
                    f"can be cancelled")
            now = self.clock()
            self._append("job_cancelled", id=job.id, finished_s=now)
            job.state = JobState.CANCELLED
            job.finished_s = now
            self._finish_metric(JobState.CANCELLED)
            self._update_depth()
            return job

    # -- worker protocol ---------------------------------------------------
    def lease(self, worker: str, lease_s: float = 60.0) -> Job | None:
        """Highest-priority SUBMITTED job, leased to ``worker``.

        Priority descends; equal priorities serve in submission order.
        Returns ``None`` when the queue is drained.
        """
        with self._lock:
            ready = [j for j in self._jobs.values()
                     if j.state == JobState.SUBMITTED]
            if not ready:
                return None
            job = min(ready, key=lambda j: (-j.priority, self._seq[j.id]))
            job.state = JobState.LEASED
            self.leases.grant(job, worker, lease_s)
            try:
                self._append("job_leased", id=job.id, worker=worker,
                             lease_until=job.lease_until,
                             attempts=job.attempts)
            except QueueWriteError:
                # A lease that would vanish on replay must not be
                # handed out: revert the grant (and its attempt
                # charge) and refuse work until the disk recovers.
                job.state = JobState.SUBMITTED
                self.leases.release(job)
                job.attempts -= 1
                return None
            if self._m_leases is not None:
                self._m_leases.inc()
            self._update_depth()
            return job

    def mark_running(self, job_id: str) -> None:
        """LEASED -> RUNNING (the worker began executing)."""
        with self._lock:
            job = self.get(job_id)
            if job.state != JobState.LEASED:
                raise QueueError(f"job {job_id} is {job.state}, not LEASED")
            now = self.clock()
            self._append("job_running", id=job.id, started_s=now)
            job.state = JobState.RUNNING
            job.started_s = now

    def heartbeat(self, job_id: str, lease_s: float = 60.0) -> None:
        """Refresh a live worker's lease (in-memory only — liveness,
        not durable state; recovery after a crash never trusts it)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                self.leases.refresh(job, lease_s)

    def complete(self, job_id: str, result_path: str,
                 runner: dict | None = None) -> Job:
        """RUNNING/LEASED -> DONE; refuses a duplicate completion."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise QueueError(
                    f"job {job_id} already terminal ({job.state}); "
                    f"refusing duplicate completion")
            now = self.clock()
            elapsed = (round(now - job.started_s, 6)
                       if job.started_s is not None else None)
            self._append("job_done", id=job.id,
                                result_path=str(result_path),
                                finished_s=now, elapsed_s=elapsed,
                                runner=dict(runner or {}))
            job.state = JobState.DONE
            job.result_path = str(result_path)
            job.finished_s = now
            job.elapsed_s = elapsed
            job.runner = dict(runner or {})
            self.leases.release(job)
            self._finish_metric(JobState.DONE)
            self._update_depth()
            return job

    def fail(self, job_id: str, error: str,
             quarantine: bool = False) -> Job:
        """Terminal failure: FAILED, or QUARANTINED for poison work."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise QueueError(
                    f"job {job_id} already terminal ({job.state})")
            now = self.clock()
            event = "job_quarantined" if quarantine else "job_failed"
            self._append(event, id=job.id, error=str(error),
                                finished_s=now)
            job.state = (JobState.QUARANTINED if quarantine
                         else JobState.FAILED)
            job.error = str(error)
            job.finished_s = now
            self.leases.release(job)
            self._finish_metric(job.state)
            self._update_depth()
            return job

    def requeue(self, job_id: str, error: str | None = None,
                recovered: bool = False) -> Job:
        """Send a leased/running job back to SUBMITTED (retry path)."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise QueueError(
                    f"job {job_id} already terminal ({job.state})")
            recoveries = job.recoveries + (1 if recovered else 0)
            self._append("job_requeued", id=job.id,
                                recoveries=recoveries,
                                **({"error": str(error)}
                                   if error is not None else {}))
            job.state = JobState.SUBMITTED
            self.leases.release(job)
            job.recoveries = recoveries
            if error is not None:
                job.error = str(error)
            if recovered and self._m_recovered is not None:
                self._m_recovered.inc()
            self._update_depth()
            return job

    # -- crash recovery ----------------------------------------------------
    def recover(self) -> list[Job]:
        """Reclaim every lease left by a dead scheduler process.

        LEASED/RUNNING jobs revert to SUBMITTED (their holders died with
        the previous process); a job seen mid-lease more than
        ``max_recoveries`` times is quarantined instead — it keeps
        taking the scheduler down with it.  Returns the touched jobs.
        """
        with self._lock:
            touched = []
            for job in self._jobs.values():
                if job.state not in (JobState.LEASED, JobState.RUNNING):
                    continue
                if self.leases.should_quarantine(job):
                    self.fail(job.id,
                              f"quarantined after {job.recoveries + 1} "
                              f"scheduler crashes mid-job",
                              quarantine=True)
                else:
                    self.requeue(job.id, recovered=True)
                touched.append(job)
            return touched

    def requeue_expired(self, skip_workers: set[str] = frozenset()) -> list[Job]:
        """Reclaim leases whose holder stopped heartbeating.

        ``skip_workers`` names workers known to be alive in this
        process (their threads cannot silently vanish) — reclaiming a
        lease a live thread still holds would double-run the job.

        The shared sweep re-checks each job against a fresh clock right
        before its requeue write, with the lock released between jobs:
        a heartbeat that arrives after the sweep's snapshot (the
        journal fsyncs of earlier requeues make that window real)
        rescues its job instead of losing the race.
        """
        return self.leases.sweep_expired(
            lambda: list(self._jobs.values()), lock=self._lock,
            reclaim=lambda job: self.requeue(job.id, recovered=True),
            skip_workers=skip_workers)

    # -- inspection --------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job, or :class:`QueueError` listing what exists."""
        job = self._jobs.get(job_id)
        if job is None:
            raise QueueError(f"unknown job {job_id!r}")
        return job

    def jobs(self, state: str | None = None,
             tenant: str | None = None) -> list[Job]:
        """Jobs in submission order, optionally filtered."""
        with self._lock:
            out = [j for j in self._jobs.values()
                   if (state is None or j.state == state)
                   and (tenant is None or j.tenant == tenant)]
            out.sort(key=lambda j: self._seq[j.id])
            return out

    def active_count(self, tenant: str) -> int:
        """SUBMITTED+LEASED+RUNNING jobs for one tenant (quota check)."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.tenant == tenant and j.state in ACTIVE_STATES)

    def depth(self) -> int:
        """SUBMITTED jobs awaiting a worker."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state == JobState.SUBMITTED)

    # -- maintenance -------------------------------------------------------
    def compact(self) -> tuple[int, int]:
        """Atomically rewrite the journal; returns ``(before, after)``.

        Terminal jobs collapse to one ``job_snapshot`` record each;
        live jobs keep their raw event tail (their snapshots are
        re-emitted as ``job_snapshot`` too, since in-memory state *is*
        the replay of those events).  Heartbeats never persist.
        """
        with self._lock:
            before = len(self.journal.events())
            records = [{"event": "job_snapshot", "job": job.to_dict()}
                       for job in self.jobs()]
            after = self.journal.rewrite(records)
            return before, after
