"""Persistent priority job queue with leases and exactly-once recovery.

State lives in two places with one source of truth:

* an append-only fsynced JSONL journal (``<state_dir>/queue.jsonl``,
  the :class:`~repro.runner.journal.RunJournal` discipline: one
  ``write`` + ``flush`` + ``fsync`` per event, torn tails dropped on
  read), which records every state transition;
* an in-memory ``{id: Job}`` map rebuilt by replaying the journal, so a
  restarted scheduler resumes exactly where the journal says the last
  one died.

Exactly-once contract
---------------------
A job reaches DONE at most once: ``complete()`` refuses a second
completion, and result files are written atomically *before* the
``job_done`` event is journaled — a crash between the two replays the
job, whose points then resolve from the ResultCache and atomically
overwrite the same file, leaving a single result entry.

On :meth:`recover` (scheduler restart), LEASED/RUNNING jobs revert to
SUBMITTED — the workers holding those leases died with the old process.
Each revert increments ``recoveries``; a job that keeps taking the
scheduler down with it is quarantined after ``max_recoveries`` rather
than crash-looping forever.  Within a live scheduler,
:meth:`requeue_expired` reclaims leases whose holder stopped
heartbeating (heartbeats refresh ``lease_until`` in memory only — they
are liveness, not durable state).

The lease mechanics themselves (grant/refresh/release, expiry sweeps
with the heartbeat-vs-sweep TOCTOU window closed, recovery counting)
live in :class:`repro.fabric.lease.LeaseManager`, shared with the
distributed fabric's point queue — one implementation, two consumers.

Compaction (:meth:`compact`) rewrites the journal atomically, keeping
one ``job_snapshot`` record per terminal job and the raw event tail for
live ones, so long-lived service state dirs don't grow unbounded.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.fabric.lease import LeaseManager
from repro.obs import bind as obs_bind, emit as obs_emit, emitter
from repro.runner.journal import RunJournal
from repro.service.jobs import ACTIVE_STATES, Job, JobState

__all__ = ["JobQueue", "QueueError", "QueueWriteError"]


class QueueError(RuntimeError):
    """An illegal queue transition (unknown job, double completion...)."""


class QueueWriteError(QueueError):
    """The journal — the queue's durable source of truth — refused a
    write (ENOSPC, EIO).  The attempted transition did **not** happen:
    this journal is replayed on restart, so an un-journaled mutation
    would be silently undone by the next recovery.  The API layer maps
    this to ``503 + Retry-After``."""


class JobQueue:
    """Journal-backed priority queue of :class:`~repro.service.jobs.Job`.

    Thread-safe: every public method holds the queue lock.  ``registry``
    (optional) receives ``service_*`` counters/gauges.
    """

    def __init__(self, state_dir: str | Path, registry=None,
                 max_recoveries: int = 3,
                 clock=time.time, fs=None, health=None) -> None:
        self.state_dir = Path(state_dir)
        self.journal = RunJournal(self.state_dir / "queue.jsonl", fs=fs)
        self.health = health
        self.max_recoveries = int(max_recoveries)
        self.clock = clock
        self.leases = LeaseManager(
            active_states=(JobState.LEASED, JobState.RUNNING),
            lease_s=60.0, max_recoveries=max_recoveries, clock=clock)
        self._lock = threading.RLock()
        #: Watcher wakeup: notified on every job-version bump, so SSE
        #: streams and long-polls block here instead of spinning.
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._seq: dict[str, int] = {}  # submission order tiebreak
        self._next_seq = 0
        self._m_submitted = self._m_finished = self._m_leases = None
        self._m_recovered = self._m_depth = self._m_stage = None
        if registry is not None:
            self._m_submitted = registry.counter(
                "service_jobs_submitted_total", "jobs accepted into the queue",
                labelnames=("tenant",))
            self._m_finished = registry.counter(
                "service_jobs_finished_total", "jobs reaching a terminal state",
                labelnames=("state",))
            self._m_leases = registry.counter(
                "service_leases_total", "job leases granted")
            self._m_recovered = registry.counter(
                "service_leases_recovered_total",
                "leases reclaimed from dead or silent workers")
            self._m_depth = registry.gauge(
                "service_queue_depth", "SUBMITTED jobs awaiting a worker")
            self._m_stage = registry.histogram(
                "service_job_stage_seconds",
                "wall seconds jobs spend between lifecycle stages",
                labelnames=("stage",),
                buckets=(0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0))
        self._replay()

    # -- journal replay ----------------------------------------------------
    def _replay(self) -> None:
        for record in self.journal.events():
            event = record.get("event")
            if event in ("job_submitted", "job_snapshot"):
                job = Job.from_dict(record.get("job", {}))
                self._install(job)
            elif event == "job_heartbeat":
                continue
            else:
                job = self._jobs.get(record.get("id", ""))
                if job is None:
                    continue
                self._apply(job, record)
        self._update_depth()

    def _install(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._seq[job.id] = self._next_seq
        self._next_seq += 1

    @staticmethod
    def _apply(job: Job, record: dict) -> None:
        event = record["event"]
        job.version += 1
        if event == "job_leased":
            job.state = JobState.LEASED
            job.worker = record.get("worker")
            job.lease_until = record.get("lease_until")
            job.leased_s = record.get("leased_s", job.leased_s)
            job.attempts = record.get("attempts", job.attempts)
        elif event == "job_running":
            job.state = JobState.RUNNING
            job.started_s = record.get("started_s", job.started_s)
        elif event == "job_requeued":
            job.state = JobState.SUBMITTED
            job.worker = None
            job.lease_until = None
            job.recoveries = record.get("recoveries", job.recoveries)
            job.error = record.get("error", job.error)
        elif event == "job_done":
            job.state = JobState.DONE
            job.result_path = record.get("result_path")
            job.finished_s = record.get("finished_s")
            job.elapsed_s = record.get("elapsed_s")
            job.runner = record.get("runner", {})
            job.worker = None
            job.lease_until = None
        elif event in ("job_failed", "job_quarantined"):
            job.state = (JobState.FAILED if event == "job_failed"
                         else JobState.QUARANTINED)
            job.error = record.get("error")
            job.finished_s = record.get("finished_s")
            job.worker = None
            job.lease_until = None
        elif event == "job_cancelled":
            job.state = JobState.CANCELLED
            job.finished_s = record.get("finished_s")

    def _update_depth(self) -> None:
        if self._m_depth is not None:
            self._m_depth.set(sum(
                1 for j in self._jobs.values()
                if j.state == JobState.SUBMITTED))

    def _finish_metric(self, state: str) -> None:
        if self._m_finished is not None:
            self._m_finished.labels(state=state).inc()

    def _bump(self, job: Job) -> None:
        """Advance the job's watcher version and wake every waiter.

        Call with the lock held (every transition does)."""
        job.version += 1
        self._cond.notify_all()

    def _observe_stage(self, stage: str, start: float | None,
                       end: float | None) -> None:
        """One stage-latency observation (submit->lease etc.)."""
        if self._m_stage is None or start is None or end is None:
            return
        self._m_stage.labels(stage=stage).observe(max(0.0, end - start))

    def _emit(self, job: Job, event: str, level: str = "info",
              **fields) -> None:
        """Obs event for one journaled transition, correlated by
        ``job_id`` (merged with any caller-bound request context)."""
        with obs_bind(job_id=job.id):
            obs_emit(event, level=level, tenant=job.tenant,
                     state=job.state, **fields)

    def _append(self, event: str, **fields) -> None:
        """Durable journal append, or :class:`QueueWriteError`.

        Unlike the fabric's audit journal, this journal IS the queue's
        recovery state — a transition that cannot be journaled must
        not happen at all, so the failure propagates (after flipping
        :attr:`health` to degraded).  The first append that lands
        after an outage resolves the degradation.
        """
        try:
            self.journal.append(event, **fields)
        except OSError as err:
            if self.health is not None:
                self.health.degrade("journal",
                                    f"{event} append failed: {err}")
            raise QueueWriteError(
                f"queue journal write failed ({event}): {err}") from err
        if self.health is not None:
            self.health.resolve("journal")

    # -- submission --------------------------------------------------------
    def submit(self, spec: dict, tenant: str = "anonymous",
               priority: int = 0) -> Job:
        """Durably enqueue a validated spec; returns the new job."""
        with self._lock:
            job = Job.create(spec, tenant=tenant, priority=priority,
                             now=self.clock())
            self._append("job_submitted", job=job.to_dict())
            self._install(job)
            if self._m_submitted is not None:
                self._m_submitted.labels(tenant=tenant).inc()
            self._update_depth()
            self._bump(job)
            self._emit(job, "job_submitted", priority=job.priority,
                       spec_key=job.spec_key)
            return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job that has not started; raises otherwise."""
        with self._lock:
            job = self.get(job_id)
            if job.state != JobState.SUBMITTED:
                raise QueueError(
                    f"job {job_id} is {job.state}; only SUBMITTED jobs "
                    f"can be cancelled")
            now = self.clock()
            self._append("job_cancelled", id=job.id, finished_s=now)
            job.state = JobState.CANCELLED
            job.finished_s = now
            self._finish_metric(JobState.CANCELLED)
            self._update_depth()
            self._bump(job)
            self._emit(job, "job_cancelled")
            return job

    # -- worker protocol ---------------------------------------------------
    def lease(self, worker: str, lease_s: float = 60.0) -> Job | None:
        """Highest-priority SUBMITTED job, leased to ``worker``.

        Priority descends; equal priorities serve in submission order.
        Returns ``None`` when the queue is drained.
        """
        with self._lock:
            ready = [j for j in self._jobs.values()
                     if j.state == JobState.SUBMITTED]
            if not ready:
                return None
            job = min(ready, key=lambda j: (-j.priority, self._seq[j.id]))
            job.state = JobState.LEASED
            self.leases.grant(job, worker, lease_s)
            now = self.clock()
            try:
                self._append("job_leased", id=job.id, worker=worker,
                             lease_until=job.lease_until,
                             leased_s=now, attempts=job.attempts)
            except QueueWriteError:
                # A lease that would vanish on replay must not be
                # handed out: revert the grant (and its attempt
                # charge) and refuse work until the disk recovers.
                job.state = JobState.SUBMITTED
                self.leases.release(job)
                job.attempts -= 1
                return None
            job.leased_s = now
            if self._m_leases is not None:
                self._m_leases.inc()
            self._observe_stage("submit_to_lease", job.created_s, now)
            self._update_depth()
            self._bump(job)
            self._emit(job, "job_leased", worker=worker,
                       attempts=job.attempts)
            return job

    def mark_running(self, job_id: str) -> None:
        """LEASED -> RUNNING (the worker began executing)."""
        with self._lock:
            job = self.get(job_id)
            if job.state != JobState.LEASED:
                raise QueueError(f"job {job_id} is {job.state}, not LEASED")
            now = self.clock()
            self._append("job_running", id=job.id, started_s=now)
            job.state = JobState.RUNNING
            job.started_s = now
            self._observe_stage("lease_to_start", job.leased_s, now)
            self._bump(job)
            self._emit(job, "job_running")

    def heartbeat(self, job_id: str, lease_s: float = 60.0) -> None:
        """Refresh a live worker's lease (in-memory only — liveness,
        not durable state; recovery after a crash never trusts it)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                self.leases.refresh(job, lease_s)

    def set_progress(self, job_id: str, done: int, total: int,
                     point: str | None = None,
                     cached: bool = False) -> None:
        """Record live point-level progress on the job document.

        Like heartbeats this is liveness, not durable state: it only
        mutates memory (never the journal) and vanishes on restart —
        which is correct, because a restarted job re-runs from zero.
        Each call bumps the job version so SSE/long-poll watchers wake
        immediately.  Unknown or already-terminal jobs are ignored (a
        straggler callback must not resurrect a finished doc).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            cached_n = (int(job.progress.get("cached", 0))
                        + (1 if cached else 0))
            job.progress = {"done": int(done), "total": int(total),
                            "cached": cached_n,
                            "point": None if point is None else str(point),
                            "updated_s": self.clock()}
            self._bump(job)

    def wait_version(self, job_id: str, version: int,
                     timeout_s: float = 10.0) -> Job | None:
        """Block until the job's version exceeds ``version``.

        Returns the job as soon as it has changed past what the caller
        last saw, or ``None`` on timeout (the caller's cue to send a
        keep-alive).  The wait is real wall time on the condition
        variable — watchers are operator-facing, so the injected queue
        clock (which tests freeze) deliberately plays no part.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise QueueError(f"unknown job {job_id!r}")
                if job.version > version:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def complete(self, job_id: str, result_path: str,
                 runner: dict | None = None) -> Job:
        """RUNNING/LEASED -> DONE; refuses a duplicate completion."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise QueueError(
                    f"job {job_id} already terminal ({job.state}); "
                    f"refusing duplicate completion")
            now = self.clock()
            elapsed = (round(now - job.started_s, 6)
                       if job.started_s is not None else None)
            self._append("job_done", id=job.id,
                                result_path=str(result_path),
                                finished_s=now, elapsed_s=elapsed,
                                runner=dict(runner or {}))
            job.state = JobState.DONE
            job.result_path = str(result_path)
            job.finished_s = now
            job.elapsed_s = elapsed
            job.runner = dict(runner or {})
            self.leases.release(job)
            self._finish_metric(JobState.DONE)
            self._observe_stage("start_to_complete", job.started_s, now)
            self._update_depth()
            self._bump(job)
            self._emit(job, "job_done", elapsed_s=elapsed,
                       result_path=job.result_path)
            return job

    def fail(self, job_id: str, error: str,
             quarantine: bool = False) -> Job:
        """Terminal failure: FAILED, or QUARANTINED for poison work."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise QueueError(
                    f"job {job_id} already terminal ({job.state})")
            now = self.clock()
            event = "job_quarantined" if quarantine else "job_failed"
            self._append(event, id=job.id, error=str(error),
                                finished_s=now)
            job.state = (JobState.QUARANTINED if quarantine
                         else JobState.FAILED)
            job.error = str(error)
            job.finished_s = now
            self.leases.release(job)
            self._finish_metric(job.state)
            self._update_depth()
            self._bump(job)
            self._emit(job, event, level="error", error=job.error)
            # Postmortem evidence, captured while it still exists: the
            # recent event ring lands next to the queue journal.
            try:
                emitter().dump(reason=f"job {job.id} {job.state}",
                               directory=self.state_dir)
            except Exception:
                pass
            return job

    def requeue(self, job_id: str, error: str | None = None,
                recovered: bool = False) -> Job:
        """Send a leased/running job back to SUBMITTED (retry path)."""
        with self._lock:
            job = self.get(job_id)
            if job.terminal:
                raise QueueError(
                    f"job {job_id} already terminal ({job.state})")
            recoveries = job.recoveries + (1 if recovered else 0)
            self._append("job_requeued", id=job.id,
                                recoveries=recoveries,
                                **({"error": str(error)}
                                   if error is not None else {}))
            job.state = JobState.SUBMITTED
            self.leases.release(job)
            job.recoveries = recoveries
            if error is not None:
                job.error = str(error)
            if recovered and self._m_recovered is not None:
                self._m_recovered.inc()
            self._update_depth()
            self._bump(job)
            self._emit(job, "job_requeued", level="warn",
                       recoveries=recoveries, recovered=recovered,
                       **({"error": str(error)} if error is not None
                          else {}))
            return job

    # -- crash recovery ----------------------------------------------------
    def recover(self) -> list[Job]:
        """Reclaim every lease left by a dead scheduler process.

        LEASED/RUNNING jobs revert to SUBMITTED (their holders died with
        the previous process); a job seen mid-lease more than
        ``max_recoveries`` times is quarantined instead — it keeps
        taking the scheduler down with it.  Returns the touched jobs.
        """
        with self._lock:
            touched = []
            for job in self._jobs.values():
                if job.state not in (JobState.LEASED, JobState.RUNNING):
                    continue
                if self.leases.should_quarantine(job):
                    self.fail(job.id,
                              f"quarantined after {job.recoveries + 1} "
                              f"scheduler crashes mid-job",
                              quarantine=True)
                else:
                    self.requeue(job.id, recovered=True)
                touched.append(job)
            return touched

    def requeue_expired(self, skip_workers: set[str] = frozenset()) -> list[Job]:
        """Reclaim leases whose holder stopped heartbeating.

        ``skip_workers`` names workers known to be alive in this
        process (their threads cannot silently vanish) — reclaiming a
        lease a live thread still holds would double-run the job.

        The shared sweep re-checks each job against a fresh clock right
        before its requeue write, with the lock released between jobs:
        a heartbeat that arrives after the sweep's snapshot (the
        journal fsyncs of earlier requeues make that window real)
        rescues its job instead of losing the race.
        """
        return self.leases.sweep_expired(
            lambda: list(self._jobs.values()), lock=self._lock,
            reclaim=lambda job: self.requeue(job.id, recovered=True),
            skip_workers=skip_workers)

    # -- inspection --------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job, or :class:`QueueError` listing what exists."""
        job = self._jobs.get(job_id)
        if job is None:
            raise QueueError(f"unknown job {job_id!r}")
        return job

    def jobs(self, state: str | None = None,
             tenant: str | None = None) -> list[Job]:
        """Jobs in submission order, optionally filtered."""
        with self._lock:
            out = [j for j in self._jobs.values()
                   if (state is None or j.state == state)
                   and (tenant is None or j.tenant == tenant)]
            out.sort(key=lambda j: self._seq[j.id])
            return out

    def active_count(self, tenant: str) -> int:
        """SUBMITTED+LEASED+RUNNING jobs for one tenant (quota check)."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.tenant == tenant and j.state in ACTIVE_STATES)

    def depth(self) -> int:
        """SUBMITTED jobs awaiting a worker."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.state == JobState.SUBMITTED)

    # -- maintenance -------------------------------------------------------
    def compact(self) -> tuple[int, int]:
        """Atomically rewrite the journal; returns ``(before, after)``.

        Terminal jobs collapse to one ``job_snapshot`` record each;
        live jobs keep their raw event tail (their snapshots are
        re-emitted as ``job_snapshot`` too, since in-memory state *is*
        the replay of those events).  Heartbeats never persist.
        """
        with self._lock:
            before = len(self.journal.events())
            records = [{"event": "job_snapshot", "job": job.to_dict()}
                       for job in self.jobs()]
            after = self.journal.rewrite(records)
            return before, after
