"""Background scheduler: drains the job queue through the cached Runner.

Worker threads lease jobs off the :class:`~repro.service.queue.JobQueue`
and execute them through the existing execution substrate:

* **experiment jobs** run ``spec.run(quick=..., runner=...)`` with an
  inline :class:`~repro.runner.Runner` wired to the service's shared
  :class:`~repro.runner.ResultCache`, then save the schema-versioned
  result envelope exactly as ``repro run`` does — ``meta`` carries only
  the variant, so a job's envelope is byte-identical to a serial CLI
  run of the same spec (runner accounting travels on the *job*, not in
  the envelope);
* **points jobs** resolve their batch through the runner with
  ``failure_policy="quarantine"`` — a poison point quarantines the job
  instead of wedging a worker — and persist a deterministic summary
  envelope (:func:`points_envelope`).

All of the runner's self-healing (watchdog, bounded retry, corrupt
cache-entry healing) is inherited; the scheduler adds job-level retry
(``job_retries``), lease heartbeats driven by runner progress
callbacks, and a maintenance sweep that reclaims leases from workers
that are *not* threads of this process (dead remote holders).  Result
files are written atomically before the DONE event is journaled, which
is what makes completion exactly-once across scheduler crashes.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from pathlib import Path

from repro.fabric.lease import atomic_write
from repro.obs import bind as obs_bind, emit as obs_emit
from repro.runner import ExecutionBackend, ResultCache, Runner, RunnerError
from repro.service.jobs import Job, build_points
from repro.service.queue import JobQueue

__all__ = ["Scheduler", "points_envelope", "write_result"]

#: Schema version of the points-job result envelope.
POINTS_SCHEMA_VERSION = 1


def _summarize(value) -> dict:
    """Deterministic JSON digest of one resolved point's measurement."""
    if value is None:
        return {"status": "quarantined"}
    if hasattr(value, "images_per_second"):
        return {
            "images_per_second": value.images_per_second,
            "scaling_efficiency": value.scaling_efficiency,
            "mean_iteration_seconds": value.stats.mean_iteration_seconds,
        }
    if hasattr(value, "latency_us"):
        return {"latency_us": value.latency_us}
    if isinstance(value, dict):
        return value
    return {"repr": repr(value)}


def points_envelope(points, values) -> str:
    """Schema-versioned JSON for a resolved raw-points batch.

    Depends only on the points and their (deterministic) measurements,
    so identical submissions produce byte-identical envelopes.
    """
    from repro import package_version

    rows = [{"key": point.key(), "point": point.payload(),
             "summary": _summarize(value)}
            for point, value in zip(points, values)]
    return json.dumps({
        "schema_version": POINTS_SCHEMA_VERSION,
        "package_version": package_version(),
        "kind": "points",
        "rows": rows,
    }, indent=1)


def write_result(path: str | Path, text: str) -> Path:
    """Atomic result write: temp file + fsync + rename.

    Replaying a crashed job rewrites the same path, so the directory
    holds exactly one entry per job no matter how many attempts ran.
    Delegates to the shared exactly-once primitive in
    :func:`repro.fabric.lease.atomic_write`.
    """
    return atomic_write(path, text)


class _JobBackend:
    """A per-job view over a shared execution backend.

    Delegates everything to the wrapped backend but defaults the
    per-call progress hook (``progress=`` on :meth:`run`,
    ``on_progress=`` on :meth:`run_points`) to this job's
    heartbeat-and-progress callback — an experiment driver that calls
    plain ``runner.run(points)`` still streams live progress, and two
    concurrent jobs sharing one fabric can never cross-wire callbacks.
    """

    def __init__(self, backend: ExecutionBackend, progress) -> None:
        self._backend = backend
        self._progress = progress

    def run(self, points, **kwargs):
        kwargs.setdefault("progress", self._progress)
        return self._backend.run(points, **kwargs)

    def run_points(self, points, **kwargs):
        kwargs.setdefault("on_progress", self._progress)
        return self._backend.run_points(points, **kwargs)

    def meta(self) -> dict:
        return self._backend.meta()

    def __getattr__(self, name):
        return getattr(self._backend, name)


class Scheduler:
    """Thread worker pool executing queued jobs exactly once.

    Parameters
    ----------
    queue:
        The persistent job queue (already :meth:`~JobQueue.recover`-ed
        by the service on startup).
    results_dir:
        Where result envelopes land, one ``<job_id>.json`` each.
    cache:
        Shared :class:`ResultCache` — the dedup layer that turns
        identical resubmissions into near-instant completions.
    registry:
        Telemetry registry shared with the queue and API; runner
        counters (``runner_*``) and ``service_*`` counters land here.
    workers / lease_s / poll_s / job_retries / point_retries:
        Pool width, lease duration, idle poll interval, job-level and
        point-level retry budgets.
    backend:
        Optional :class:`~repro.runner.ExecutionBackend` that executes
        every job's points instead of the default inline
        :class:`Runner` — pass a
        :class:`~repro.fabric.FabricRunner` to fan jobs out to pulled
        workers.  Job-level retry, lease heartbeats and result-envelope
        bytes are unchanged either way.
    """

    def __init__(self, queue: JobQueue, results_dir: str | Path,
                 cache: ResultCache | None = None, registry=None,
                 workers: int = 2, lease_s: float = 60.0,
                 poll_s: float = 0.05, job_retries: int = 1,
                 point_retries: int = 1,
                 timeout_s: float | None = None,
                 backend: ExecutionBackend | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.backend = backend
        self.queue = queue
        self.results_dir = Path(results_dir)
        self.cache = cache
        self.registry = registry
        self.workers = int(workers)
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.job_retries = int(job_retries)
        self.point_retries = int(point_retries)
        self.timeout_s = timeout_s
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._m_seconds = self._m_errors = None
        if registry is not None:
            self._m_seconds = registry.counter(
                "service_job_seconds_total",
                "host wall seconds spent executing jobs")
            self._m_errors = registry.counter(
                "service_job_errors_total", "job execution errors",
                labelnames=("terminal",))

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent while running)."""
        if self._threads:
            return
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the workers and join them."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def worker_ids(self) -> set[str]:
        """Lease-holder names of this process's live workers."""
        return {self._worker_id(t.name) for t in self._threads
                if t.is_alive()}

    @staticmethod
    def _worker_id(thread_name: str) -> str:
        return f"{os.getpid()}:{thread_name}"

    # -- the loop ----------------------------------------------------------
    def _worker_loop(self) -> None:
        worker = self._worker_id(threading.current_thread().name)
        while not self._stop.is_set():
            job = self.queue.lease(worker, lease_s=self.lease_s)
            if job is None:
                self._stop.wait(self.poll_s)
                continue
            try:
                self._execute(job)
            except Exception:  # pragma: no cover - last-ditch guard
                # A worker must never die with a lease held; anything
                # the per-job handling missed fails the job instead.
                try:
                    self.queue.fail(job.id, traceback.format_exc(limit=5))
                except Exception:
                    pass

    def drain(self, timeout: float = 60.0, poll: float = 0.02) -> bool:
        """Block until no SUBMITTED/LEASED/RUNNING job remains."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            live = [j for j in self.queue.jobs() if not j.terminal]
            if not live:
                return True
            time.sleep(poll)
        return False

    def sweep_leases(self) -> list[Job]:
        """Reclaim expired leases not held by this process's threads."""
        return self.queue.requeue_expired(skip_workers=self.worker_ids())

    # -- execution ---------------------------------------------------------
    def _runner(self, job: Job, policy: str) -> ExecutionBackend:
        """The execution backend for one job.

        The configured ``backend`` if one was injected, else a fresh
        inline :class:`Runner`; both satisfy
        :class:`~repro.runner.ExecutionBackend`, so the job handlers
        below are backend-agnostic.  An injected backend is shared by
        every concurrent job, so it comes back wrapped in a per-job
        view that threads *this* job's heartbeat/progress callback
        into each call without mutating shared state.
        """
        def progress(done, total, point, cached) -> None:
            self.queue.heartbeat(job.id, lease_s=self.lease_s)
            self.queue.set_progress(job.id, done, total,
                                    point=point.describe(), cached=cached)

        if self.backend is not None:
            return _JobBackend(self.backend, progress)
        return Runner(workers=0, cache=self.cache, registry=self.registry,
                      progress=progress, retries=self.point_retries,
                      timeout_s=self.timeout_s, failure_policy=policy)

    def _execute(self, job: Job) -> None:
        # Bind the job id for the whole execution: every event emitted
        # below this frame — including fabric hops, whose transport
        # forwards the binding as ``X-Repro-Context`` — correlates back
        # to this job.
        with obs_bind(job_id=job.id):
            self.queue.mark_running(job.id)
            obs_emit("job_execute_start", kind=(
                "experiment" if "experiment" in job.spec else "points"))
            start = time.perf_counter()
            try:
                if "experiment" in job.spec:
                    result_path, runner_meta = self._run_experiment(job)
                else:
                    result_path, runner_meta = self._run_points(job)
            except Exception as err:
                obs_emit("job_execute_failed", level="error",
                         error=f"{type(err).__name__}: {err}")
                self._handle_error(job, err)
                return
            elapsed = time.perf_counter() - start
            if self._m_seconds is not None:
                self._m_seconds.inc(elapsed)
            obs_emit("job_execute_done", elapsed_s=round(elapsed, 6))
            self.queue.complete(job.id, str(result_path),
                                runner=runner_meta)

    def _run_experiment(self, job: Job) -> tuple[Path, dict]:
        from repro.bench.registry import REGISTRY

        spec = REGISTRY[job.spec["experiment"]]
        variant = job.spec["variant"]
        runner = self._runner(job, policy="raise")
        result = spec.run(quick=variant == "quick",
                          runner=runner if spec.parallelizable else None)
        # Exactly the serial CLI envelope: meta carries the variant
        # alone, so API and `repro run` results are byte-identical.
        result.meta = {"variant": variant}
        path = self.results_dir / f"{job.id}.json"
        write_result(path, result.to_json())
        return path, dict(runner.meta())

    def _run_points(self, job: Job) -> tuple[Path, dict]:
        points = build_points(job.spec)
        runner = self._runner(job, policy="quarantine")

        def beat(done, total, point, cached) -> None:
            self.queue.heartbeat(job.id, lease_s=self.lease_s)
            self.queue.set_progress(job.id, done, total,
                                    point=point.describe(), cached=cached)

        values = runner.run_points(points, timeout_s=self.timeout_s,
                                   retries=self.point_retries,
                                   on_progress=beat)
        # A quarantined point resolves to None (the runner's documented
        # sentinel).  Detecting poison from this batch's own values —
        # rather than slicing the shared runner.quarantined list — stays
        # correct when concurrent jobs share one injected backend and
        # their quarantine records interleave.
        poison_keys = list(dict.fromkeys(
            p.key() for p, v in zip(points, values) if v is None))
        if poison_keys:
            errors = {q["key"]: q["error"]
                      for q in getattr(runner, "quarantined", ())}
            detail = "; ".join(errors.get(k, "quarantined")
                               for k in poison_keys[:3])
            raise RunnerError(
                f"{len(poison_keys)} point(s) quarantined: {detail}")
        path = self.results_dir / f"{job.id}.json"
        write_result(path, points_envelope(points, values))
        return path, dict(runner.meta())

    def _handle_error(self, job: Job, err: Exception) -> None:
        message = f"{type(err).__name__}: {err}"
        poison = isinstance(err, RunnerError)
        terminal = poison or job.attempts > self.job_retries
        if self._m_errors is not None:
            self._m_errors.labels(terminal=str(terminal).lower()).inc()
        if terminal:
            self.queue.fail(job.id, message, quarantine=poison)
        else:
            self.queue.requeue(job.id, error=message)
