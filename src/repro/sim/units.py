"""Unit helpers: all simulation time is seconds, all sizes are bytes.

The HPC literature mixes µs/ms latencies, GB/s and Gbit/s bandwidths, and
MB/MiB buffer sizes; these helpers keep call sites explicit and greppable.
Binary prefixes (KiB/MiB) are used for buffer sizes to match Horovod's
fusion-threshold semantics; decimal prefixes for link bandwidths to match
vendor datasheets (NVLink 50 GB/s, EDR 100 Gbit/s).
"""

from __future__ import annotations

__all__ = [
    "GB",
    "GiB",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "gbit_per_s",
    "gbyte_per_s",
    "microseconds",
    "milliseconds",
    "seconds_per_byte",
]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30


def microseconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return us * 1e-6


def milliseconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms * 1e-3


def gbyte_per_s(gb: float) -> float:
    """Convert a GB/s (decimal) bandwidth to bytes/second."""
    return gb * 1e9


def gbit_per_s(gbit: float) -> float:
    """Convert a Gbit/s bandwidth to bytes/second."""
    return gbit * 1e9 / 8.0


def seconds_per_byte(bandwidth_bytes_per_s: float) -> float:
    """The per-byte transfer cost (β) of a link, in seconds."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
    return 1.0 / bandwidth_bytes_per_s
