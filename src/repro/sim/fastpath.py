"""Fast-path configuration for the simulation kernel and fabric.

The simulator has two execution strategies for the hot paths:

* the **reference path** — every link acquisition is a queued
  :class:`~repro.sim.resources.Request` event and every transfer steps
  through the full acquire/hold/release event sequence; and
* the **fast path** — when a provably-equivalent shortcut exists (an
  uncontended route, a quiet event queue), the same simulated outcome is
  computed closed-form with fewer kernel events.

The contract is **bit-identical simulated time**: every observable the
reproduction compares — training statistics, timelines, link counters,
telemetry attribution buckets, trace spans — must be byte-for-byte equal
between the two paths.  Only kernel event *counts* (``Environment.
events_scheduled``, ``sim_events_processed_total``) may differ, exactly
as the checkpoint/resume contract already allows (a resumed run pays a
few bootstrap events).  ``tests/sim/test_fastpath_differential.py`` is
the gate: every scenario class runs through both paths and the outputs
are compared field for field.

Activation is deliberately **observation-independent**: whether a probe
or tracer is attached never changes which path runs, so the
zero-perturbation gates (instrumented vs bare runs compare kernel
fingerprints) hold under either setting.

Selection:

* default **on**;
* environment: ``REPRO_FAST_PATH=0`` / ``1`` (read at import and by
  :func:`reset_from_env`);
* programmatic: :func:`set_fast_path`, or the :func:`fast_path` context
  manager (used by the differential tests and ``repro run --no-fast``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SimConfig",
    "fast_path",
    "fast_path_enabled",
    "reset_from_env",
    "set_fast_path",
    "sim_config",
]

#: Environment variable controlling the default ("0"/"false"/"off" disable).
ENV_VAR = "REPRO_FAST_PATH"

_FALSEY = {"0", "false", "no", "off", ""}


def _env_default() -> bool:
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSEY


@dataclass
class SimConfig:
    """Process-wide simulation strategy knobs.

    ``fast_path`` enables the event-eliding shortcuts in
    :class:`~repro.cluster.fabric.Fabric` and the inlined drain loop of
    :class:`~repro.sim.engine.Environment`.  It is *not* part of any
    cache key: both paths produce bit-identical measurements, so a cached
    result is valid regardless of which path produced it.
    """

    fast_path: bool = field(default_factory=_env_default)


#: The active process-wide configuration (workers inherit via fork/env).
_CONFIG = SimConfig()


def sim_config() -> SimConfig:
    """The live process-wide :class:`SimConfig` (mutate via setters)."""
    return _CONFIG


def fast_path_enabled() -> bool:
    """True when fast-path shortcuts should be taken (the hot check)."""
    return _CONFIG.fast_path


def set_fast_path(enabled: bool) -> None:
    """Enable or disable the fast path process-wide."""
    _CONFIG.fast_path = bool(enabled)


def reset_from_env() -> None:
    """Re-read :data:`ENV_VAR` (worker bootstrap after exec/spawn)."""
    _CONFIG.fast_path = _env_default()


@contextmanager
def fast_path(enabled: bool):
    """Scoped override, restoring the previous setting on exit."""
    prev = _CONFIG.fast_path
    _CONFIG.fast_path = bool(enabled)
    try:
        yield
    finally:
        _CONFIG.fast_path = prev
