"""Shared-resource primitives for the DES kernel.

Two primitives cover everything the cluster/MPI/Horovod layers need:

* :class:`Resource` — a counted resource with FIFO queuing (models
  serialized links, DMA engines, the host staging buffer, GPU copy engines).
* :class:`Store` — an unbounded FIFO of Python objects with blocking ``get``
  (models rank mailboxes, the Horovod coordinator's request queue).

Both hand out plain :class:`~repro.sim.engine.Event` objects so processes
wait with ordinary ``yield``.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["FastGrant", "Resource", "Store"]


class FastGrant:
    """Event-free grant token returned by :meth:`Resource.try_acquire`.

    Holds the resource exactly like a granted :class:`Request` (it lives
    in the resource's user set and is returned via
    :meth:`Resource.release`) but its creation schedules **no** kernel
    event — the caller proved the grant would have been immediate, so the
    notification event the reference path pays is elided.  This is the
    acquisition primitive of the fabric fast path
    (:mod:`repro.sim.fastpath`).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource

    def __enter__(self) -> "FastGrant":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Request(Event):
    """Event returned by :meth:`Resource.request`; fires when acquired.

    Supports use as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on scope exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._on_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with strict FIFO granting.

    ``capacity`` concurrent holders are allowed; further requests queue.
    Canceling a queued request is supported via :meth:`release` on the
    un-granted request (needed by timeout-bounded acquisitions).
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request | FastGrant] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of queued (not yet granted) requests."""
        return len(self._waiting)

    def request(self) -> Request:
        """Request the resource; the returned event fires when granted."""
        return Request(self)

    @property
    def idle(self) -> bool:
        """True when a new request would be granted immediately."""
        return not self._waiting and len(self._users) < self.capacity

    def try_acquire(self) -> "FastGrant | None":
        """Acquire immediately without scheduling a grant event, or fail.

        Returns a :class:`FastGrant` token (release it with
        :meth:`release`) when the resource is :attr:`idle`, else ``None``.
        Because no event is created, the caller must only use this where
        the reference path's grant notification could not have interleaved
        with any other event — see the fast-path guard in
        :meth:`repro.cluster.fabric.Fabric._fast_transfer_viable`.
        """
        if self._waiting or len(self._users) >= self.capacity:
            return None
        token = FastGrant(self)
        self._users.add(token)
        return token

    def _on_request(self, req: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)

    def release(self, req: "Request | FastGrant") -> None:
        """Release a granted request, or cancel a queued one.

        Releasing a request that is neither held nor queued is an error —
        it almost always indicates a double release.
        """
        if req in self._users:
            self._users.remove(req)
            self._grant_next()
        else:
            try:
                self._waiting.remove(req)
            except ValueError:
                raise SimulationError(
                    "release() of a request that is neither held nor queued"
                ) from None

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """Unbounded FIFO store of arbitrary items with blocking ``get``.

    ``put`` never blocks (returns the item count); ``get`` returns an event
    that fires with the oldest item, immediately if one is available.
    FIFO fairness holds across both items and getters.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> int:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
        return len(self._items)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Pop the next item immediately; raises if the store is empty."""
        if not self._items:
            raise SimulationError("get_nowait() on an empty Store")
        return self._items.popleft()

    def peek_all(self) -> list[Any]:
        """A snapshot list of queued items (oldest first), without removal."""
        return list(self._items)
