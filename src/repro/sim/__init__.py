"""Discrete-event simulation engine.

This package implements a small, dependency-free discrete-event simulation
(DES) kernel in the style of SimPy: simulation *processes* are Python
generator functions that ``yield`` :class:`~repro.sim.engine.Event` objects
to wait on, and an :class:`~repro.sim.engine.Environment` advances virtual
time by popping events off a priority queue.

The engine is the substrate for every timed component in the reproduction:
the cluster fabric (:mod:`repro.cluster`), the simulated MPI library
(:mod:`repro.mpi`), the Horovod control plane (:mod:`repro.horovod`) and the
distributed trainer (:mod:`repro.train`) are all written as processes over
this kernel.

Design notes
------------
* Time is a ``float`` in **seconds**; helpers in :mod:`repro.sim.units`
  convert from microseconds/milliseconds and from bytes-per-second
  bandwidths.
* Determinism: two runs with the same seeds produce identical event orders.
  Ties in time are broken by (priority, insertion id), never by hash order.
* Errors raised inside a process propagate to whoever waits on it, exactly
  like SimPy; an unhandled failure aborts :meth:`Environment.run` with the
  original traceback.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.fastpath import (
    SimConfig,
    fast_path,
    fast_path_enabled,
    set_fast_path,
    sim_config,
)
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SimConfig",
    "SimulationError",
    "Store",
    "Timeout",
    "fast_path",
    "fast_path_enabled",
    "set_fast_path",
    "sim_config",
]
