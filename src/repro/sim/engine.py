"""Core event loop, events and processes for the DES kernel.

The model follows SimPy's semantics closely:

* An :class:`Event` is a one-shot occurrence.  It starts *untriggered*;
  calling :meth:`Event.succeed` (or :meth:`Event.fail`) schedules it on the
  environment's queue, and when the environment pops it, all registered
  callbacks run at the event's timestamp.
* A :class:`Process` wraps a generator.  Each value the generator yields
  must be an :class:`Event`; the process suspends until the event fires and
  is resumed with the event's value (or the event's exception is thrown into
  the generator).  A process is itself an event that triggers when the
  generator returns, with the generator's return value as the event value.
* :class:`Environment` owns virtual time and the priority queue.

Only features the reproduction needs are implemented — but they are
implemented completely, with failure propagation, interrupts and composite
events, because the MPI and Horovod layers lean on all of them.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Queue priority for ordinary events.
NORMAL = 1
#: Queue priority that sorts before NORMAL at equal timestamps.  Used for
#: process-resumption bookkeeping so that a process observes the state its
#: wakeup event established.
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel.

    Examples: running an environment with no scheduled events before the
    requested horizon, triggering an event twice, or yielding a non-event
    from a process generator.
    """


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt`` so the
    interrupted process can distinguish interrupt sources.
    """

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """A one-shot occurrence on an :class:`Environment`'s timeline.

    State machine::

        untriggered --succeed/fail--> triggered --(queue pop)--> processed

    Callbacks registered through :attr:`callbacks` (or by waiting processes)
    run exactly once, when the event is processed.  After processing,
    :attr:`value` holds the success value, or the exception if the event
    failed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Functions ``cb(event)`` invoked when the event is processed.
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        #: Set True by a waiter that converts failures into resumable values
        #: (e.g. a process about to be thrown the exception).  If nobody
        #: defuses a failed event, the environment re-raises at pop time.
        self.defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (event popped from the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        The event is scheduled at the current simulation time; callbacks run
        when the environment pops it.  Triggering twice is an error.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes get the exception thrown into their generator; if
        no waiter defuses the failure, it aborts the simulation run.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class _Pending:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


_PENDING = _Pending()


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    Created via :meth:`Environment.timeout`.  A negative delay is an error;
    a zero delay fires in the same timestep but after already-queued events.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 _at: float | None = None) -> None:
        if _at is not None:
            delay = _at - env.now
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay, at=_at)

    # Timeouts are triggered at construction; succeed/fail are invalid.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._rcb)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers when the generator returns
    (value = the generator's return value) or raises (failure).  Other
    processes can therefore ``yield proc`` to join on it.
    """

    __slots__ = ("_generator", "_target", "_rcb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when ready
        #: to run or finished).
        self._target: Event | None = None
        #: The bound ``_resume`` callback, allocated once — registering a
        #: waiter is the hottest append in the kernel and a fresh bound
        #: method per suspension is measurable at millions of events.
        self._rcb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def name(self) -> str:
        """The wrapped generator function's name (for traces and repr)."""
        return getattr(self._generator, "__name__", str(self._generator))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event
        itself is unaffected and may still fire later).  Interrupting a dead
        process is an error; a process cannot interrupt itself.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._rcb)
        self.env._schedule(event, URGENT)
        # Detach from the old target so its trigger no longer resumes us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._rcb)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active = self
        gen = self._generator
        while True:
            try:
                if event._ok:
                    next_target = gen.send(event._value)
                else:
                    # The waiter is handling the failure: defuse it so the
                    # environment does not abort.
                    event.defused = True
                    next_target = gen.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self, NORMAL)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._schedule(self, NORMAL)
                break

            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_target!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                event.defused = True
                continue  # throw into the generator on next loop turn

            callbacks = next_target.callbacks
            if callbacks is None:
                # Already happened: resume immediately with its outcome.
                event = next_target
                continue
            self._target = next_target
            callbacks.append(self._rcb)
            break
        env._active = None


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events.

    Triggers once ``evaluate(events, n_processed)`` returns True, with value
    a dict mapping each *processed* constituent event to its value (in the
    original order).  Fails as soon as any constituent fails.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: list[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self._events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluator: every constituent processed."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluator: at least one constituent processed."""
        return count > 0 or not events


class AllOf(Condition):
    """Composite event that fires when *all* given events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Composite event that fires when *any* given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env, Condition.any_events, events)


class Environment:
    """Owns virtual time and executes the event queue.

    Typical use::

        env = Environment()

        def proc(env):
            yield env.timeout(1.5)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.now == 1.5 and p.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active: Process | None = None
        #: Callbacks of the event being dispatched that have not run yet.
        #: Non-zero means code is executing mid-cascade: a later callback
        #: of the *same* event could still observe or mutate shared state
        #: at this timestamp.  Fast-path shortcuts (the fabric's
        #: closed-form transfer) refuse to fire mid-cascade — see
        #: :mod:`repro.sim.fastpath`.
        self._cascade_rest = 0
        #: Optional observation-only hook object (``on_schedule(env, event,
        #: delay)`` / ``on_step(env, event, depth)``) — see
        #: :class:`repro.telemetry.TelemetryProbe`.  Must never create
        #: events or mutate kernel state.
        self.monitor: Any = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (monotone kernel fingerprint).

        Observation-only instrumentation (probes, span tracers) must not
        change this count: the zero-perturbation tests compare it between
        instrumented and bare runs of the same workload.
        """
        return self._eid

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_until(self, when: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing at absolute time ``when``.

        ``timeout(when - now)`` lands at ``now + (when - now)``, which can
        differ from ``when`` by a rounding ulp.  Resume paths
        (:mod:`repro.checkpoint`) need events to land exactly on times the
        original run computed incrementally, so this schedules at ``when``
        itself.  ``when`` must not be in the past; ``when == now`` behaves
        like a zero delay.
        """
        when = float(when)
        if when < self._now:
            raise ValueError(
                f"timeout_until({when}) is in the past (now={self._now})"
            )
        return Timeout(self, 0.0, value, _at=when)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        """Create an :class:`AllOf` over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Create an :class:`AnyOf` over ``events``."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0,
                  at: float | None = None) -> None:
        self._eid += 1
        when = (self._now + delay) if at is None else at
        heapq.heappush(self._queue, (when, priority, self._eid, event))
        if self.monitor is not None:
            self.monitor.on_schedule(self, event, delay)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event, advancing time to its timestamp."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, _, event = heapq.heappop(self._queue)
        if self.monitor is not None:
            self.monitor.on_step(self, event, len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        rest = len(callbacks)
        for callback in callbacks:
            rest -= 1
            self._cascade_rest = rest
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def _drain(self, horizon: float | None, until: "Event | None") -> None:
        """Hot drain loop shared by every :meth:`run` mode.

        Dispatch is inlined rather than delegated to :meth:`step` so a
        same-timestamp event cohort (a barrier releasing dozens of rank
        processes, a fused group completing on every rank at once) drains
        in one tight loop: one heap pop, one monitor check and one
        callback walk per event, with no per-event method-call or
        attribute-lookup overhead on top.  Semantics are identical to
        calling :meth:`step` in a loop — the differential and
        zero-perturbation suites compare the two paths event for event.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if until is not None and until.callbacks is None:
                return
            if horizon is not None and queue[0][0] > horizon:
                return
            self._now, _, _, event = pop(queue)
            monitor = self.monitor
            if monitor is not None:
                monitor.on_step(self, event, len(queue))
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                self._cascade_rest = 0
                callbacks[0](event)
            else:
                rest = len(callbacks)
                for callback in callbacks:
                    rest -= 1
                    self._cascade_rest = rest
                    callback(event)
            if not event._ok and not event.defused:
                raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains; returns ``None``.
        * a float — run until simulation time reaches it (time is advanced
          to ``until`` even if the queue drains earlier); returns ``None``.
        * an :class:`Event` — run until that event is processed; returns the
          event's value (raising its exception if it failed).
        """
        if until is None:
            self._drain(None, None)
            return None
        if isinstance(until, Event):
            sentinel: list[Event] = []
            until.callbacks.append(sentinel.append) if not until.processed else None
            self._drain(None, until)
            if not until.processed:
                raise SimulationError(
                    f"run(until={until!r}): queue drained before event triggered"
                )
            if until._ok:
                return until._value
            until.defused = True
            raise until._value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"run(until={horizon}) is in the past (now={self._now})")
        self._drain(horizon, None)
        self._now = horizon
        return None
