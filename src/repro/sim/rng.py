"""Deterministic, named random-number streams.

Every stochastic component in the reproduction (compute-time jitter, network
latency jitter, convergence-model noise, dataset synthesis) draws from a
named substream of a single root seed, so that

* the whole experiment is reproducible bit-for-bit from one integer, and
* adding a new consumer of randomness never perturbs existing streams
  (streams are derived by *name*, not by draw order).

Implementation uses :class:`numpy.random.SeedSequence` spawning keyed by a
stable hash of the stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "stable_seed"]


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary parts, stable across runs.

    Uses blake2b over the ``repr`` of each part; unlike Python's ``hash``
    this does not vary with ``PYTHONHASHSEED``.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little")


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` streams.

    >>> streams = RandomStreams(seed=7)
    >>> g1 = streams.get("latency")
    >>> g2 = streams.get("latency")   # same object: one stream per name
    >>> g1 is g2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(stable_seed(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def child(self, name: str) -> "RandomStreams":
        """A derived :class:`RandomStreams` rooted at ``(seed, name)``.

        Used to give each simulated rank / worker its own namespace.
        """
        return RandomStreams(seed=stable_seed(self.seed, name))

    def reset(self) -> None:
        """Forget all streams; subsequent ``get`` calls restart each stream."""
        self._streams.clear()
