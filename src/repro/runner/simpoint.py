"""Simulation points: the unit of work the runner executes and caches.

A *point* is one fully-specified, deterministic simulation — everything
:func:`~repro.core.sweep.measure_training` (or an OSU microbenchmark)
needs to reproduce a result bit-for-bit.  Because the simulation is a
pure function of the point, a point doubles as a **cache key**: its
:meth:`SimPoint.key` is a SHA-256 over a canonical JSON rendering of
every knob plus a code-version salt, stable across processes, platforms
and interpreter restarts.

Two concrete kinds exist:

* :class:`TrainPoint` — one measured training run (the hot path of every
  sweep experiment and the staged tuner);
* :class:`OSUPoint` — one OSU-style allreduce latency measurement (E3).

Points are small frozen dataclasses, picklable by construction, so a
:class:`~repro.runner.pool.Runner` can ship them to worker processes and
ship the resulting :class:`~repro.core.sweep.Measurement` back.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import ClassVar

from repro.core.knobs import SystemConfig
from repro.faults import FaultSchedule
from repro.mpi.libraries import MPILibrary

__all__ = ["OSUPoint", "SimPoint", "TrainPoint", "cache_salt"]

#: Bump when simulation semantics change in a way that invalidates cached
#: Measurements without a package-version bump (cost model recalibration,
#: collective algorithm fixes, trainer scheduling changes, ...).
SIM_SALT = "sim-2"


def cache_salt() -> str:
    """Code-version salt mixed into every cache key.

    Combines the package version with :data:`SIM_SALT` so stale caches
    from older code can never satisfy a lookup from newer code.
    """
    import repro

    return f"{repro.__version__}+{SIM_SALT}"


def _canonical(value):
    """Recursively render a knob value into canonical JSON-able form.

    Dataclasses become ``{"__type__": name, **compare_fields}`` (fields
    declared ``compare=False`` — display notes and the like — are
    excluded, so cosmetic edits don't invalidate caches); mappings are
    key-sorted; sequences become lists.  Anything else must already be a
    JSON scalar.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            if f.compare:
                out[f.name] = _canonical(getattr(value, f.name))
        return out
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} into a cache key"
    )


@dataclass(frozen=True)
class SimPoint:
    """Base class: key machinery shared by every point kind."""

    #: Discriminator mixed into the key so different point kinds with
    #: coincidentally equal fields can never collide.
    kind: ClassVar[str] = "abstract"

    def payload(self) -> dict:
        """Canonical knob dict (every field, canonicalized)."""
        return {
            f.name: _canonical(getattr(self, f.name))
            for f in dataclasses.fields(self)
        }

    def key(self) -> str:
        """Content-addressed cache key: SHA-256 hex over salt + knobs."""
        doc = {"kind": self.kind, "salt": cache_salt(), "knobs": self.payload()}
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def execute(self):
        """Run the simulation this point specifies (subclasses only)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line label for progress displays."""
        return f"{self.kind} point"


@dataclass(frozen=True)
class TrainPoint(SimPoint):
    """One measured training run — mirrors ``measure_training``'s knobs.

    Field names and defaults match
    :func:`~repro.core.sweep.measure_training` exactly, so
    ``TrainPoint(**kwargs).execute()`` is interchangeable with
    ``measure_training(**kwargs)`` for every hashable argument.  The
    ``fault`` callback hook is deliberately absent: arbitrary callables
    have no canonical form, so fault-callback runs (E13b) stay on the
    serial path; *scheduled* faults (:class:`~repro.faults.FaultSchedule`)
    are declarative and cache fine.
    """

    kind: ClassVar[str] = "train"

    gpus: int
    config: SystemConfig
    model: str = "deeplab"
    per_gpu_batch: int | None = None
    iterations: int = 4
    warmup_iterations: int = 1
    jitter_std: float = 0.03
    seed: int = 0
    negotiation: str = "analytic"
    schedule: FaultSchedule | None = None
    telemetry: bool = False
    #: Span-tracing level (``None`` | ``"spans"`` | ``"links"``) — see
    #: ``measure_training``'s ``trace=``.
    trace: str | None = None

    def execute(self):
        """Run the measurement (imports lazily: workers pay once)."""
        from repro.core.sweep import measure_training

        return measure_training(
            gpus=self.gpus,
            config=self.config,
            model=self.model,
            per_gpu_batch=self.per_gpu_batch,
            iterations=self.iterations,
            warmup_iterations=self.warmup_iterations,
            jitter_std=self.jitter_std,
            seed=self.seed,
            negotiation=self.negotiation,
            schedule=self.schedule,
            telemetry=self.telemetry,
            trace=self.trace,
        )

    def describe(self) -> str:
        """E.g. ``deeplab@24gpus it=3 MVAPICH2-GDR | fusion=128MiB ...``."""
        return (f"{self.model}@{self.gpus}gpus it={self.iterations} "
                f"{self.config.label}")


@dataclass(frozen=True)
class OSUPoint(SimPoint):
    """One OSU-style allreduce latency measurement on a fresh slice."""

    kind: ClassVar[str] = "osu_allreduce"

    gpus: int
    library: MPILibrary
    nbytes: int
    iterations: int = 5
    algorithm: str | None = None

    def execute(self):
        """Build a Summit slice and time the collective."""
        from repro.cluster import Fabric, build_summit
        from repro.mpi.communicator import Comm
        from repro.mpi.osu import osu_allreduce
        from repro.sim import Environment

        env = Environment()
        topo = build_summit(env, nodes=max(1, math.ceil(self.gpus / 6)))
        comm = Comm(Fabric(topo), topo.gpus()[: self.gpus], self.library)
        return osu_allreduce(comm, self.nbytes, iterations=self.iterations,
                             algorithm=self.algorithm)

    def describe(self) -> str:
        """E.g. ``osu_allreduce 65536B @24gpus MVAPICH2-GDR``."""
        return (f"osu_allreduce {self.nbytes}B @{self.gpus}gpus "
                f"{self.library.name}")
