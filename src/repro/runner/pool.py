"""The parallel cached experiment runner, hardened against worker failure.

:meth:`Runner.run` resolves a batch of independent simulation points:

1. every point's content key is computed and looked up in the (optional)
   :class:`~repro.runner.cache.ResultCache` — hits resolve immediately;
2. duplicate keys within the batch collapse to one execution;
3. remaining points fan out across a ``ProcessPoolExecutor`` (``workers
   >= 2``) or run inline (``workers <= 1``), and results **merge back in
   input order** regardless of completion order, so a parallel run is
   indistinguishable from the serial one;
4. freshly computed values are written back to the cache, progress
   callbacks fire per point, and :mod:`repro.telemetry` counters record
   hits / executions / wall seconds.

Determinism contract: a point's result depends only on the point (each
execution builds a fresh simulation :class:`~repro.sim.Environment`), so
serial, parallel and warm-cache runs of the same batch return
bit-identical values.

Self-healing: the pool survives the failures a long sweep actually hits.

* **Worker crash** — a worker dying (segfault, ``os._exit``, OOM kill)
  breaks the whole ``ProcessPoolExecutor`` and fails *every* in-flight
  future, so the culprit is unknown.  The runner respawns the pool and
  replays the victims one at a time (isolation): a point that crashes
  *solo* is the culprit and is charged an attempt; innocents are not.
* **Hung point** — with ``timeout_s`` set, a point running past its
  watchdog deadline is charged a timeout; its worker is terminated (a
  running future cannot be cancelled), the pool respawns, and in-flight
  innocents are resubmitted uncharged.
* **Bounded retry** — a charged failure is retried up to ``retries``
  times with exponential backoff and deterministic per-(key, attempt)
  jitter.
* **Quarantine** — with ``failure_policy="quarantine"``, a point that
  exhausts its retries resolves to ``None`` and is recorded in
  :attr:`Runner.quarantined` instead of sinking the batch (the default
  ``"raise"`` preserves the historical fail-fast contract).
* **Progress isolation** — an exception from the ``progress`` callback
  is counted (``runner_progress_errors_total``) and swallowed; only
  ``KeyboardInterrupt`` still propagates, after a graceful pool drain.
"""

from __future__ import annotations

import json
import os
import random
import time
import warnings
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.runner.cache import ResultCache, sweep_stale_tmp
from repro.runner.simpoint import SimPoint
from repro.telemetry.metrics import MetricRegistry

__all__ = ["Runner", "RunnerError", "RunnerStats", "run_points"]


class RunnerError(RuntimeError):
    """A point failed to execute; carries which one."""


@dataclass
class RunnerStats:
    """Cumulative accounting across a runner's lifetime."""

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    execute_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    pool_respawns: int = 0
    progress_errors: int = 0
    traces_captured: int = 0

    def as_dict(self) -> dict:
        """Plain dict (JSON-able)."""
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.points - self.cache_hits,
            "executed": self.executed,
            "deduplicated": self.deduplicated,
            "execute_seconds": round(self.execute_seconds, 3),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "pool_respawns": self.pool_respawns,
            "progress_errors": self.progress_errors,
            "traces_captured": self.traces_captured,
        }

    def delta(self, before: dict) -> dict:
        """Difference vs an earlier :meth:`as_dict` snapshot."""
        now = self.as_dict()
        return {
            k: round(now[k] - before.get(k, 0), 3) if isinstance(now[k], float)
            else now[k] - before.get(k, 0)
            for k in now
        }


def _execute(point: SimPoint):
    """Top-level worker entry (must be picklable by name)."""
    return point.execute()


class Runner:
    """Process-pool executor + result cache for simulation points.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` executes inline (the default: exact serial
        behaviour, useful with a cache alone); ``>= 2`` fans out across
        that many worker processes.
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or ``None`` for no
        memoization.
    registry:
        A :class:`~repro.telemetry.MetricRegistry` to record runner
        counters into; a private one is created when omitted.
    progress:
        ``progress(done, total, point, cached)`` called after each point
        resolves (in resolution order, not input order).  Exceptions it
        raises are counted and swallowed — a broken progress bar must not
        abort a sweep.
    retries:
        How many times a failed/crashed/timed-out point is retried
        before it is terminal (default 0: fail on first error, the
        historical behaviour).
    backoff_s / max_backoff_s:
        Exponential-backoff base and cap between retries of one key;
        jitter is deterministic per (key, attempt).
    timeout_s:
        Per-point watchdog for pool execution: a point running longer is
        killed (its worker terminated, the pool respawned) and charged a
        timeout.  ``None`` (default) disables the watchdog.  Inline
        execution cannot be interrupted, so the watchdog only applies
        with ``workers >= 2``.
    failure_policy:
        ``"raise"`` (default) re-raises the first terminal failure as
        :class:`RunnerError`; ``"quarantine"`` records it in
        :attr:`quarantined`, resolves the point to ``None`` and keeps
        going.
    trace_dir:
        When set, every resolved measurement carrying a span recorder
        (``measurement.trace``, from a traced :class:`TrainPoint`) has
        its spans exported to ``<trace_dir>/<key[:16]>.trace.json`` in
        the :mod:`repro.trace` span format.  Writes are atomic (temp
        file + rename) and stale temp files from dead writers are swept
        on every batch; cache hits are captured too, so a warm resume
        still materializes the trace files.
    """

    def __init__(self, workers: int = 0,
                 cache: ResultCache | None = None,
                 registry: MetricRegistry | None = None,
                 progress: Callable[[int, int, SimPoint, bool], None] | None = None,
                 retries: int = 0,
                 backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0,
                 timeout_s: float | None = None,
                 failure_policy: str = "raise",
                 trace_dir: str | Path | None = None,
                 ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if failure_policy not in ("raise", "quarantine"):
            raise ValueError(
                f"failure_policy must be 'raise' or 'quarantine', "
                f"got {failure_policy!r}"
            )
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.timeout_s = timeout_s
        self.failure_policy = failure_policy
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.registry = registry if registry is not None else MetricRegistry()
        self.stats = RunnerStats()
        #: Terminal failures recorded under ``failure_policy="quarantine"``:
        #: ``{"key", "point", "error"}`` dicts, in failure order.
        self.quarantined: list[dict] = []
        self._m_points = self.registry.counter(
            "runner_points_total", "simulation points resolved",
            labelnames=("status",))
        self._m_batches = self.registry.counter(
            "runner_batches_total", "run() invocations")
        self._m_seconds = self.registry.counter(
            "runner_execute_seconds_total",
            "host wall seconds spent executing points")
        self._m_retries = self.registry.counter(
            "runner_retries_total", "point retry attempts")
        self._m_timeouts = self.registry.counter(
            "runner_timeouts_total", "points killed by the watchdog")
        self._m_quarantined = self.registry.counter(
            "runner_quarantined_total", "points quarantined after retries")
        self._m_respawns = self.registry.counter(
            "runner_pool_respawns_total", "worker pool respawns")
        self._m_progress_errors = self.registry.counter(
            "runner_progress_errors_total",
            "exceptions swallowed from progress callbacks")
        self._m_traces = self.registry.counter(
            "runner_traces_captured_total",
            "span traces exported to trace_dir")
        self._m_workers = self.registry.gauge(
            "runner_workers", "configured worker processes")
        self._m_workers.set(self.workers)

    # -- the core ----------------------------------------------------------
    def run(self, points: Sequence[SimPoint], *,
            timeout_s: float | None = None,
            retries: int | None = None,
            progress: Callable[[int, int, SimPoint, bool], None] | None = None,
            ) -> list:
        """Resolve every point; results are returned in input order.

        The keyword-only arguments override the configured values for
        this batch alone.  They are threaded through as locals — never
        written to the instance — so concurrent batches on one shared
        runner cannot cross-wire each other's callbacks or budgets.
        """
        points = list(points)
        timeout_s = self.timeout_s if timeout_s is None else timeout_s
        retries = self.retries if retries is None else int(retries)
        progress = self.progress if progress is None else progress
        self._m_batches.inc()
        self.stats.points += len(points)
        results: list = [None] * len(points)
        done = 0

        # Group input positions by content key (batch-level dedup).
        groups: dict[str, list[int]] = {}
        for i, point in enumerate(points):
            groups.setdefault(point.key(), []).append(i)
        self.stats.deduplicated += len(points) - len(groups)

        def resolve(key: str, value, cached: bool,
                    status: str | None = None) -> None:
            nonlocal done
            for i in groups[key]:
                results[i] = value
                done += 1
                label = status or ("cache_hit" if cached else "executed")
                self._m_points.labels(status=label).inc()
                if cached:
                    self.stats.cache_hits += 1
                if progress is not None:
                    try:
                        progress(done, len(points), points[i], cached)
                    except Exception:
                        self.stats.progress_errors += 1
                        self._m_progress_errors.inc()

        todo: list[str] = []
        for key in groups:
            value = self.cache.get(key) if self.cache is not None else None
            if value is not None:
                resolve(key, value, cached=True)
            else:
                todo.append(key)

        start = time.perf_counter()
        if self.workers >= 2 and len(todo) > 1:
            _PoolDriver(self, points, groups, todo, resolve,
                        timeout_s=timeout_s, retries=retries).run()
        else:
            self._run_inline(points, groups, todo, resolve, retries)
        elapsed = time.perf_counter() - start
        self.stats.executed += len(todo)
        self.stats.execute_seconds += elapsed
        self._m_seconds.inc(elapsed)
        if self.trace_dir is not None:
            self._capture_traces(groups, results)
        return results

    def _capture_traces(self, groups: dict, results: list) -> None:
        """Export each traced measurement's spans into ``trace_dir``."""
        written = 0
        for key, positions in groups.items():
            value = results[positions[0]]
            tracer = getattr(value, "trace", None)
            if tracer is None:
                continue
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            path = self.trace_dir / f"{key[:16]}.trace.json"
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            blob = json.dumps(tracer.to_payload(), separators=(",", ":"))
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(path)
            written += 1
        if written:
            sweep_stale_tmp(self.trace_dir)
            self.stats.traces_captured += written
            self._m_traces.inc(written)

    def _run_inline(self, points, groups, todo, resolve, retries) -> None:
        for key in todo:
            point = points[groups[key][0]]
            attempt = 0
            while True:
                try:
                    value = point.execute()
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    attempt += 1
                    if attempt <= retries:
                        self._count_retry(key, attempt)
                        continue
                    self._terminal(key, point, exc, resolve)
                    break
                self._store(key, value)
                resolve(key, value, cached=False)
                break

    # -- failure plumbing (shared by inline and pool paths) ----------------
    def _backoff(self, key: str, attempt: int) -> float:
        jitter = 1.0 + random.Random(f"{key}:{attempt}").random()
        return min(self.max_backoff_s,
                   self.backoff_s * (2 ** (attempt - 1)) * jitter)

    def _count_retry(self, key: str, attempt: int) -> None:
        self.stats.retries += 1
        self._m_retries.inc()
        time.sleep(self._backoff(key, attempt))

    def _terminal(self, key, point, exc, resolve) -> None:
        if self.failure_policy == "quarantine":
            self.stats.quarantined += 1
            self._m_quarantined.inc()
            self.quarantined.append({
                "key": key,
                "point": point.describe(),
                "error": repr(exc),
            })
            resolve(key, None, cached=False, status="quarantined")
            return
        raise RunnerError(f"point failed: {point.describe()}") from exc

    def _store(self, key: str, value) -> None:
        if self.cache is not None:
            self.cache.put(key, value)

    # -- the unified backend surface ---------------------------------------
    def run_points(self, points: Sequence[SimPoint], *,
                   timeout_s: float | None = None,
                   retries: int | None = None,
                   on_progress: Callable[[int, int, SimPoint, bool], None] | None = None,
                   ) -> list:
        """:class:`~repro.runner.backend.ExecutionBackend` entry point.

        Identical to :meth:`run`, with per-batch overrides: any of the
        keyword-only arguments set here replaces the runner's
        configured value for this batch alone.  The overrides are
        threaded through as parameters (never stored on the instance),
        so concurrent batches on one shared runner stay isolated.
        """
        return self.run(points, timeout_s=timeout_s, retries=retries,
                        progress=on_progress)

    # -- reporting ---------------------------------------------------------
    def meta(self) -> dict:
        """Runner metadata for :class:`~repro.bench.harness.ExperimentResult`."""
        out = {"workers": self.workers, **self.stats.as_dict()}
        if self.quarantined:
            out["quarantined_points"] = [dict(q) for q in self.quarantined]
        if self.cache is not None:
            out["cache"] = self.cache.snapshot()
        return out


class _PoolDriver:
    """One batch's process-pool state machine (crash/timeout recovery).

    In-flight futures are capped at the worker count so a submitted
    future is actually *running* — that makes the watchdog clock honest
    and lets a broken pool's victim set be exactly the in-flight keys.
    After a pool break the victims replay one at a time (``isolate``):
    only a key that fails alone is charged an attempt.
    """

    def __init__(self, runner: Runner, points, groups, todo, resolve, *,
                 timeout_s: float | None = None,
                 retries: int | None = None) -> None:
        self.r = runner
        self.points = points
        self.groups = groups
        self.resolve = resolve
        # Batch-scoped budgets (run()'s overrides, else the configured
        # defaults) — read from here, not from the shared runner.
        self.timeout_s = runner.timeout_s if timeout_s is None else timeout_s
        self.retries = runner.retries if retries is None else int(retries)
        self.queue: deque[str] = deque(todo)
        self.isolate: deque[str] = deque()
        self.attempts: dict[str, int] = {key: 0 for key in todo}
        self.workers = min(runner.workers, max(1, len(todo)))
        self.pool: ProcessPoolExecutor | None = None
        self.inflight: dict = {}
        self.started: dict = {}

    def point(self, key: str):
        return self.points[self.groups[key][0]]

    def run(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while self.queue or self.isolate or self.inflight:
                self._fill()
                self._reap()
        except KeyboardInterrupt:
            # Graceful drain: nothing new starts, workers die now, the
            # batch's partial results stay merged.
            self._kill_pool()
            raise
        finally:
            if self.pool is not None:
                if self.inflight:
                    self._kill_pool()
                else:
                    self.pool.shutdown(wait=True)
                    self.pool = None

    # -- submission --------------------------------------------------------
    def _fill(self) -> None:
        if self.pool is None:
            self._respawn()
        cap = 1 if self.isolate else self.workers
        source = self.isolate if self.isolate else self.queue
        while source and len(self.inflight) < cap:
            key = source.popleft()
            fut = self.pool.submit(_execute, self.point(key))
            self.inflight[fut] = key
            self.started[fut] = time.perf_counter()

    # -- completion --------------------------------------------------------
    def _reap(self) -> None:
        if not self.inflight:
            return
        timeout = None
        if self.timeout_s is not None:
            now = time.perf_counter()
            deadline = min(self.started[f] for f in self.inflight) + self.timeout_s
            timeout = max(0.02, deadline - now)
        finished, _ = wait(set(self.inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
        broken_exc = None
        for fut in finished:
            exc = self._exception(fut)
            if isinstance(exc, BrokenExecutor):
                broken_exc = exc
        if broken_exc is not None:
            self._handle_broken(broken_exc)
            return
        for fut in finished:
            if fut not in self.inflight:
                continue
            key = self.inflight.pop(fut)
            self.started.pop(fut, None)
            exc = self._exception(fut)
            if exc is None:
                value = fut.result()
                self.r._store(key, value)
                self.resolve(key, value, cached=False)
            else:
                self._failure(key, exc, solo_retry=False)
        if not finished and self.timeout_s is not None:
            self._handle_timeouts()

    @staticmethod
    def _exception(fut):
        try:
            return fut.exception()
        except CancelledError:
            return None

    # -- failure modes -----------------------------------------------------
    def _handle_broken(self, exc: BaseException) -> None:
        """A worker died; every in-flight future failed, culprit unknown."""
        victims = list(self.inflight.values())
        self.inflight.clear()
        self.started.clear()
        self._kill_pool()
        self._respawn()
        if len(victims) == 1:
            # Alone in the pool (or already an isolation probe): guilty.
            self._failure(victims[0], exc, solo_retry=True)
        else:
            # Replay one at a time; only a solo crasher gets charged.
            self.isolate.extend(victims)

    def _handle_timeouts(self) -> None:
        now = time.perf_counter()
        victims = [f for f in self.inflight
                   if now - self.started[f] > self.timeout_s]
        if not victims:
            return
        victim_keys = [self.inflight[f] for f in victims]
        innocent_keys = [k for f, k in self.inflight.items()
                         if f not in victims]
        self.inflight.clear()
        self.started.clear()
        # Running futures cannot be cancelled — terminate the workers.
        self._kill_pool()
        self._respawn()
        # Innocents go back to the front of the line, uncharged.
        for key in reversed(innocent_keys):
            self.queue.appendleft(key)
        for key in victim_keys:
            self.r.stats.timeouts += 1
            self.r._m_timeouts.inc()
            self._failure(
                key,
                TimeoutError(
                    f"point exceeded timeout_s={self.timeout_s:g}"
                ),
                solo_retry=True,
            )

    def _failure(self, key: str, exc: BaseException, solo_retry: bool) -> None:
        self.attempts[key] += 1
        attempt = self.attempts[key]
        if attempt <= self.retries:
            self.r._count_retry(key, attempt)
            # Crashers/timeouts damaged the pool — retry them solo so a
            # repeat offence cannot take innocents down with it.
            (self.isolate if solo_retry else self.queue).append(key)
            return
        self.r._terminal(key, self.point(key), exc, self.resolve)

    # -- pool lifecycle ----------------------------------------------------
    def _respawn(self) -> None:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=self.workers)
            self.r.stats.pool_respawns += 1
            self.r._m_respawns.inc()

    def _kill_pool(self) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values() or []):
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)


_LEGACY_WARNED: set[str] = set()


def _warn_legacy(key: str, message: str) -> None:
    """Warn once per process about a deprecated calling convention."""
    if key not in _LEGACY_WARNED:
        _LEGACY_WARNED.add(key)
        warnings.warn(message, DeprecationWarning, stacklevel=3)


def _run_points(points: Sequence[SimPoint], *legacy, workers: int = 0,
                cache: ResultCache | None = None,
                registry: MetricRegistry | None = None,
                on_progress: Callable[[int, int, SimPoint, bool], None] | None = None,
                **kwargs) -> list:
    """One-shot convenience: build a :class:`Runner` and resolve ``points``.

    Keyword-only (the :class:`~repro.runner.backend.ExecutionBackend`
    spellings: ``workers``, ``timeout_s``, ``retries``,
    ``on_progress``); extra keywords (``retries``, ``timeout_s``,
    ``failure_policy``, ...) pass through to :class:`Runner`.  The
    historical positional ``(workers, cache, registry, progress)`` and
    ``progress=`` / ``timeout=`` spellings keep working through
    deprecation shims that warn once per process.
    """
    if legacy:
        if len(legacy) > 4:
            raise TypeError(
                f"run_points() takes at most 5 positional arguments "
                f"({1 + len(legacy)} given)")
        _warn_legacy(
            "run_points:positional",
            "run_points() positional workers/cache/registry/progress "
            "arguments are deprecated; pass them as keywords")
        resolved = {"workers": workers, "cache": cache,
                    "registry": registry, "on_progress": on_progress}
        for name, value in zip(("workers", "cache", "registry",
                                "on_progress"), legacy):
            resolved[name] = value
        workers, cache, registry, on_progress = (
            resolved["workers"], resolved["cache"], resolved["registry"],
            resolved["on_progress"])
    return Runner(workers=workers, cache=cache, registry=registry,
                  progress=on_progress, **kwargs).run(points)


_run_points_shimmed = None


def run_points(points: Sequence[SimPoint], *legacy, **kwargs) -> list:
    """Keyword-only :func:`_run_points` behind the ``bench.compat``
    deprecation shims (``progress=`` -> ``on_progress``, ``timeout=``
    -> ``timeout_s``).  The shim wraps lazily because
    :mod:`repro.bench` imports this package at module scope.
    """
    global _run_points_shimmed
    if _run_points_shimmed is None:
        from repro.bench.compat import deprecated_kwargs

        _run_points_shimmed = deprecated_kwargs(
            progress="on_progress", timeout="timeout_s")(_run_points)
    return _run_points_shimmed(points, *legacy, **kwargs)
