"""The parallel cached experiment runner.

:meth:`Runner.run` resolves a batch of independent simulation points:

1. every point's content key is computed and looked up in the (optional)
   :class:`~repro.runner.cache.ResultCache` — hits resolve immediately;
2. duplicate keys within the batch collapse to one execution;
3. remaining points fan out across a ``ProcessPoolExecutor`` (``workers
   >= 2``) or run inline (``workers <= 1``), and results **merge back in
   input order** regardless of completion order, so a parallel run is
   indistinguishable from the serial one;
4. freshly computed values are written back to the cache, progress
   callbacks fire per point, and :mod:`repro.telemetry` counters record
   hits / executions / wall seconds.

Determinism contract: a point's result depends only on the point (each
execution builds a fresh simulation :class:`~repro.sim.Environment`), so
serial, parallel and warm-cache runs of the same batch return
bit-identical values.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runner.cache import ResultCache
from repro.runner.simpoint import SimPoint
from repro.telemetry.metrics import MetricRegistry

__all__ = ["Runner", "RunnerError", "RunnerStats", "run_points"]


class RunnerError(RuntimeError):
    """A point failed to execute; carries which one."""


@dataclass
class RunnerStats:
    """Cumulative accounting across a runner's lifetime."""

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    execute_seconds: float = 0.0

    def as_dict(self) -> dict:
        """Plain dict (JSON-able)."""
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.points - self.cache_hits,
            "executed": self.executed,
            "deduplicated": self.deduplicated,
            "execute_seconds": round(self.execute_seconds, 3),
        }

    def delta(self, before: dict) -> dict:
        """Difference vs an earlier :meth:`as_dict` snapshot."""
        now = self.as_dict()
        return {
            k: round(now[k] - before.get(k, 0), 3) if isinstance(now[k], float)
            else now[k] - before.get(k, 0)
            for k in now
        }


def _execute(point: SimPoint):
    """Top-level worker entry (must be picklable by name)."""
    return point.execute()


class Runner:
    """Process-pool executor + result cache for simulation points.

    Parameters
    ----------
    workers:
        ``0`` or ``1`` executes inline (the default: exact serial
        behaviour, useful with a cache alone); ``>= 2`` fans out across
        that many worker processes.
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or ``None`` for no
        memoization.
    registry:
        A :class:`~repro.telemetry.MetricRegistry` to record runner
        counters into; a private one is created when omitted.
    progress:
        ``progress(done, total, point, cached)`` called after each point
        resolves (in resolution order, not input order).
    """

    def __init__(self, workers: int = 0,
                 cache: ResultCache | None = None,
                 registry: MetricRegistry | None = None,
                 progress: Callable[[int, int, SimPoint, bool], None] | None = None,
                 ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress
        self.registry = registry if registry is not None else MetricRegistry()
        self.stats = RunnerStats()
        self._m_points = self.registry.counter(
            "runner_points_total", "simulation points resolved",
            labelnames=("status",))
        self._m_batches = self.registry.counter(
            "runner_batches_total", "run() invocations")
        self._m_seconds = self.registry.counter(
            "runner_execute_seconds_total",
            "host wall seconds spent executing points")
        self._m_workers = self.registry.gauge(
            "runner_workers", "configured worker processes")
        self._m_workers.set(self.workers)

    # -- the core ----------------------------------------------------------
    def run(self, points: Sequence[SimPoint]) -> list:
        """Resolve every point; results are returned in input order."""
        points = list(points)
        self._m_batches.inc()
        self.stats.points += len(points)
        results: list = [None] * len(points)
        done = 0

        # Group input positions by content key (batch-level dedup).
        groups: dict[str, list[int]] = {}
        for i, point in enumerate(points):
            groups.setdefault(point.key(), []).append(i)
        self.stats.deduplicated += len(points) - len(groups)

        def resolve(key: str, value, cached: bool) -> None:
            nonlocal done
            for i in groups[key]:
                results[i] = value
                done += 1
                status = "cache_hit" if cached else "executed"
                self._m_points.labels(status=status).inc()
                if cached:
                    self.stats.cache_hits += 1
                if self.progress is not None:
                    self.progress(done, len(points), points[i], cached)

        todo: list[str] = []
        for key in groups:
            value = self.cache.get(key) if self.cache is not None else None
            if value is not None:
                resolve(key, value, cached=True)
            else:
                todo.append(key)

        start = time.perf_counter()
        if self.workers >= 2 and len(todo) > 1:
            self._run_pool(points, groups, todo, resolve)
        else:
            for key in todo:
                point = points[groups[key][0]]
                try:
                    value = point.execute()
                except Exception as exc:
                    raise RunnerError(
                        f"point failed: {point.describe()}") from exc
                self._store(key, value)
                resolve(key, value, cached=False)
        elapsed = time.perf_counter() - start
        self.stats.executed += len(todo)
        self.stats.execute_seconds += elapsed
        self._m_seconds.inc(elapsed)
        return results

    def _run_pool(self, points, groups, todo, resolve) -> None:
        """Fan ``todo`` keys out over a process pool; merge by index."""
        workers = min(self.workers, len(todo))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute, points[groups[key][0]]): key
                for key in todo
            }
            pending = set(futures)
            try:
                while pending:
                    finished, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                    for fut in finished:
                        key = futures[fut]
                        try:
                            value = fut.result()
                        except Exception as exc:
                            raise RunnerError(
                                "point failed: "
                                f"{points[groups[key][0]].describe()}"
                            ) from exc
                        self._store(key, value)
                        resolve(key, value, cached=False)
            except BaseException:
                for fut in pending:
                    fut.cancel()
                raise

    def _store(self, key: str, value) -> None:
        if self.cache is not None:
            self.cache.put(key, value)

    # -- reporting ---------------------------------------------------------
    def meta(self) -> dict:
        """Runner metadata for :class:`~repro.bench.harness.ExperimentResult`."""
        out = {"workers": self.workers, **self.stats.as_dict()}
        if self.cache is not None:
            out["cache"] = self.cache.snapshot()
        return out


def run_points(points: Sequence[SimPoint], workers: int = 0,
               cache: ResultCache | None = None,
               registry: MetricRegistry | None = None,
               progress: Callable[[int, int, SimPoint, bool], None] | None = None,
               ) -> list:
    """One-shot convenience: build a :class:`Runner` and resolve ``points``."""
    return Runner(workers=workers, cache=cache, registry=registry,
                  progress=progress).run(points)
