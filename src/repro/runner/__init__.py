"""Parallel cached experiment runner.

The paper's contribution is a *sweep* — knob grids × MPI libraries × GPU
counts — and every point in it is an independent, deterministic
simulation.  This package makes the sweep layer exploit that:

* :class:`~repro.runner.simpoint.SimPoint` /
  :class:`~repro.runner.simpoint.TrainPoint` /
  :class:`~repro.runner.simpoint.OSUPoint` — fully-specified simulation
  points whose canonical content hash doubles as a cache key;
* :class:`~repro.runner.cache.ResultCache` — persistent
  content-addressed store under ``bench_results/.cache/`` with an LRU
  size cap (``repro cache stats`` / ``repro cache clear`` on the CLI);
* :class:`~repro.runner.pool.Runner` / :func:`~repro.runner.pool.run_points`
  — process-pool fan-out with deterministic input-order merge, batch
  dedup, progress callbacks, :mod:`repro.telemetry` counters, and
  self-healing under failure: per-point watchdog timeouts, worker-crash
  detection with pool respawn and isolation replay, bounded retry with
  exponential backoff, and poison-point quarantine;
* :class:`~repro.runner.journal.RunJournal` — append-only JSONL event
  log under ``bench_results/`` that makes ``repro run all --resume``
  replay only the experiments a crashed or interrupted sweep left
  unfinished;
* :func:`~repro.runner.prefix.prefix_run` /
  :class:`~repro.runner.prefix.PrefixStore` — prefix memoization for
  iterations-laddered sweeps: simulate each ladder once, materialize the
  smaller members by checkpoint resume with the iteration target
  rewritten.

The sweep-shaped experiment drivers (E3–E6, E8, E9, E11, E12, E14), the
staged tuner and ``repro run --parallel`` all execute through here;
serial, parallel and warm-cache runs return bit-identical results.
"""

from repro.runner.backend import ExecutionBackend, ProgressFn
from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    DEFAULT_MAX_BYTES,
    CacheStats,
    ResultCache,
)
from repro.runner.journal import DEFAULT_JOURNAL_PATH, RunJournal
from repro.runner.pool import Runner, RunnerError, RunnerStats, run_points
from repro.runner.prefix import (
    PrefixStats,
    PrefixStore,
    prefix_run,
    run_with_prefix_memo,
)
from repro.runner.simpoint import OSUPoint, SimPoint, TrainPoint, cache_salt

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_JOURNAL_PATH",
    "DEFAULT_MAX_BYTES",
    "CacheStats",
    "ExecutionBackend",
    "OSUPoint",
    "PrefixStats",
    "PrefixStore",
    "ProgressFn",
    "ResultCache",
    "RunJournal",
    "Runner",
    "RunnerError",
    "RunnerStats",
    "SimPoint",
    "TrainPoint",
    "cache_salt",
    "prefix_run",
    "run_points",
    "run_with_prefix_memo",
]
