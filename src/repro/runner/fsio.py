"""The injectable filesystem seam behind every durable writer.

:class:`~repro.runner.cache.ResultCache` and
:class:`~repro.runner.journal.RunJournal` (and through the journal, the
service :class:`~repro.service.queue.JobQueue` and fabric
:class:`~repro.fabric.queue.PointQueue`) all follow the same write
discipline: ``open`` → ``write`` → ``flush`` → ``fsync`` → ``rename``.
This module gives that discipline one injectable surface so a test (or
the :mod:`repro.chaos` fault injector) can make any of those steps fail
like a real disk does — ENOSPC, EIO, a write torn at a byte offset —
without monkey-patching the ``os`` module out from under the rest of
the process.

Production code passes nothing and gets :data:`LOCAL_FS`, whose methods
are the plain stdlib calls.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["LOCAL_FS", "LocalFS"]


class LocalFS:
    """The real filesystem: each method is the matching stdlib call.

    The surface is deliberately tiny — exactly the operations of the
    atomic-write discipline — so a fault-injecting subclass (see
    :class:`repro.chaos.fs.ChaosFS`) has a complete, enumerable set of
    failure points.
    """

    def open(self, path: str | Path, mode: str = "r",
             encoding: str | None = None):
        """``builtins.open`` (binary modes ignore ``encoding``)."""
        if "b" in mode:
            return open(path, mode)
        return open(path, mode, encoding=encoding)

    def fsync(self, fileno: int) -> None:
        """``os.fsync`` — the durability barrier before a rename."""
        os.fsync(fileno)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """``Path.replace`` — the atomic publish step."""
        Path(src).replace(dst)


#: Shared default instance; writers use this when no ``fs`` is injected.
LOCAL_FS = LocalFS()
