"""Append-only JSONL run journal for resumable sweeps.

``repro run all`` can take hours; a crash or Ctrl-C should not force the
whole sweep to repeat.  The journal records one JSON object per line
under ``bench_results/run_journal.jsonl`` — sweep start/stop markers and
per-experiment ``experiment_start`` / ``experiment_done`` /
``experiment_failed`` events — and ``repro run all --resume`` replays
only the experiments without an ``experiment_done`` record.

Robustness contract: every append is a single ``write()`` of one
newline-terminated line followed by ``flush()`` + ``fsync()``, so a
crash can corrupt at most the final line; :meth:`RunJournal.events`
silently drops a truncated tail instead of failing the resume that needs
it most.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from repro.runner.fsio import LOCAL_FS

__all__ = ["DEFAULT_JOURNAL_PATH", "RunJournal", "compact_run_journal"]

#: Default location, next to the experiment results it tracks.
DEFAULT_JOURNAL_PATH = Path("bench_results") / "run_journal.jsonl"


class RunJournal:
    """Append-only JSONL event log keyed by experiment id.

    ``fs`` injects the filesystem seam (:mod:`repro.runner.fsio`) the
    durable writes go through — production uses the real disk; the
    chaos harness substitutes a fault-injecting one.  A failed append
    raises ``OSError`` to the caller, whose journal-failure policy
    (degrade, refuse leases, retry later) lives at the queue layer.
    """

    def __init__(self, path: str | Path | None = None, fs=None) -> None:
        self.path = Path(path) if path is not None else DEFAULT_JOURNAL_PATH
        self.fs = fs if fs is not None else LOCAL_FS

    # -- writing -----------------------------------------------------------
    def append(self, event: str, **fields) -> dict:
        """Durably append one ``{"event": ..., **fields}`` record."""
        record = {"event": str(event), **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.fs.open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            self.fs.fsync(handle.fileno())
        return record

    # -- reading -----------------------------------------------------------
    def events(self) -> list[dict]:
        """Every parseable record, in append order.

        A truncated or garbled final line (writer killed mid-append) is
        dropped; a garbled line elsewhere is skipped the same way —
        resume must never die on the artifact of the crash it recovers
        from.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def completed(self, variant: str | None = None) -> set[str]:
        """Experiment ids with an ``experiment_done`` record.

        ``variant`` restricts matching to records carrying that variant
        tag (e.g. ``"quick"`` vs ``"paper"`` tiers), so a quick-tier
        completion never satisfies a paper-tier resume.
        """
        done = set()
        for record in self.events():
            if record.get("event") != "experiment_done":
                continue
            if variant is not None and record.get("variant") != variant:
                continue
            eid = record.get("experiment")
            if eid:
                done.add(str(eid))
        return done

    def reset(self) -> None:
        """Delete the journal (a fresh, non-resumed sweep starts clean)."""
        self.path.unlink(missing_ok=True)

    # -- compaction --------------------------------------------------------
    def rewrite(self, records: Iterable[dict]) -> int:
        """Atomically replace the journal with ``records``.

        The same temp-file + ``fsync`` + rename discipline as
        :meth:`append`, so a crash mid-compaction leaves either the old
        journal or the new one, never a torn mixture.  Returns the
        number of records written.
        """
        records = list(records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        with self.fs.open(tmp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")) + "\n")
            handle.flush()
            self.fs.fsync(handle.fileno())
        self.fs.replace(tmp, self.path)
        return len(records)


def compact_run_journal(journal: RunJournal) -> tuple[int, int]:
    """Drop superseded run-journal entries; returns ``(before, after)``.

    Long-lived journals accumulate one ``experiment_start`` /
    ``experiment_done`` pair (plus sweep markers) per invocation.  Only
    the *latest* ``experiment_done`` per ``(experiment, variant)`` feeds
    ``--resume``, so compaction keeps exactly those, drops start/failed
    events that a later completion superseded, and keeps the trailing
    sweep marker for context.  The queue's JSONL store reuses
    :meth:`RunJournal.rewrite` with its own retention policy.
    """
    events = journal.events()
    latest_done: dict[tuple[str, str | None], dict] = {}
    open_experiments: list[dict] = []
    last_sweep: dict | None = None
    for record in events:
        event = record.get("event")
        if event == "experiment_done":
            key = (str(record.get("experiment")), record.get("variant"))
            latest_done[key] = record
        elif event in ("experiment_start", "experiment_failed"):
            open_experiments.append(record)
        elif event in ("sweep_start", "sweep_resume", "sweep_done",
                       "sweep_interrupted"):
            last_sweep = record
    done_keys = set(latest_done)
    keep = [r for r in open_experiments
            if (str(r.get("experiment")), r.get("variant")) not in done_keys]
    kept = ([last_sweep] if last_sweep is not None else [])
    kept += keep + list(latest_done.values())
    journal.rewrite(kept)
    return len(events), len(kept)
