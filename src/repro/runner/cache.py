"""Persistent content-addressed result cache with an LRU size cap.

One entry per :meth:`~repro.runner.simpoint.SimPoint.key`: a pickled
:class:`~repro.core.sweep.Measurement` (or OSU result) under
``bench_results/.cache/<key>.pkl``.  Recency is tracked with file mtimes
— every hit touches its entry — and :meth:`ResultCache.put` evicts
least-recently-used entries whenever the directory grows past
``max_bytes``.  Unreadable, zero-byte or truncated entries are treated
as misses and deleted, so a cache can never poison a run: the worst case
is re-running the simulation.

Concurrency: writes are atomic (temp file + fsync + rename), and
mutation paths (``put`` eviction, ``clear``) additionally hold an
advisory ``fcntl`` lock on ``<dir>/.lock`` so concurrent sweeps sharing
one cache directory don't race the LRU scan.  On platforms without
``fcntl`` the lock degrades to a no-op — the rename is still atomic.
Hit/miss accounting is per-:class:`ResultCache` instance.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.runner.fsio import LOCAL_FS
from repro.sim.units import MiB

__all__ = ["CacheStats", "ResultCache", "DEFAULT_CACHE_DIR",
           "DEFAULT_MAX_BYTES", "sweep_stale_tmp"]

#: Default on-disk location, next to the experiment JSON it accelerates.
DEFAULT_CACHE_DIR = Path("bench_results") / ".cache"
#: Default size cap; a cached quick-tier Measurement is ~100 KiB.
DEFAULT_MAX_BYTES = 256 * MiB
#: Orphaned temp files older than this are swept on the next ``put`` —
#: they are leftovers from a writer that died mid-store.
STALE_TMP_SECONDS = 300.0
#: How many entries the memory-only degradation fallback retains when
#: the disk refuses writes (ENOSPC/EIO) — enough to keep an in-flight
#: sweep deduplicating, bounded so a long outage cannot exhaust RAM.
MEMORY_FALLBACK_ENTRIES = 128


def sweep_stale_tmp(directory: str | Path,
                    older_than: float = STALE_TMP_SECONDS) -> int:
    """Remove ``*.tmp`` files orphaned by writers that died mid-store.

    Shared by the result cache and every other atomic-rename writer that
    parks temp files in its output directory (e.g. the runner's
    ``<key>.trace.json.<pid>.tmp`` capture files).  Returns the number of
    files removed; a missing directory sweeps nothing.
    """
    cutoff = time.time() - older_than
    removed = 0
    for tmp in Path(directory).glob("*.tmp"):
        try:
            if tmp.stat().st_mtime < cutoff:
                tmp.unlink(missing_ok=True)
                removed += 1
        except OSError:
            continue
    return removed


#: Numeric fields of :meth:`ResultCache.snapshot` exported as telemetry.
#: `repro cache stats --json` and the service's ``/v1/metrics``
#: ``service_cache{field=...}`` gauges both publish exactly these, so the
#: CLI and the API can never drift apart on the schema.
SNAPSHOT_STAT_FIELDS = ("entries", "total_bytes", "hits", "misses",
                        "hit_ratio", "put_errors")


@dataclass
class CacheStats:
    """Lookup accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    put_errors: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Plain dict (for result metadata and CLI output)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "put_errors": self.put_errors,
                "hit_ratio": round(self.hit_ratio, 6)}


class ResultCache:
    """Content-addressed pickle store keyed by ``SimPoint.key()``.

    Degradation contract: a disk that refuses writes (ENOSPC, EIO)
    must never crash the worker holding a result — :meth:`put`
    catches ``OSError``, counts it (``stats.put_errors``, plus the
    ``runner_cache_put_errors`` counter when a ``registry`` is wired),
    and parks the value in a bounded in-memory fallback so the current
    sweep keeps deduplicating; the next successful disk store clears
    the degradation.  ``fs`` injects the filesystem seam
    (:mod:`repro.runner.fsio`), which is how the chaos harness makes
    those failures happen on demand; ``health`` (optional, a
    :class:`~repro.fabric.health.Health`) is flipped to degraded/back
    as the disk fails/recovers.
    """

    def __init__(self, directory: str | Path | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES, fs=None,
                 registry=None, health=None) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.directory = Path(directory) if directory is not None else DEFAULT_CACHE_DIR
        self.max_bytes = int(max_bytes)
        self.fs = fs if fs is not None else LOCAL_FS
        self.health = health
        self.stats = CacheStats()
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._mem_lock = threading.Lock()
        self._m_put_errors = None
        if registry is not None:
            self._m_put_errors = registry.counter(
                "runner_cache_put_errors",
                "cache stores degraded to memory-only by disk errors")

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.pkl"

    @contextlib.contextmanager
    def _lock(self):
        """Advisory exclusive lock on the cache directory (best effort)."""
        if fcntl is None:
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.directory / ".lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    # -- lookups -----------------------------------------------------------
    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU recency.  Zero-byte and corrupt
        entries (e.g. a writer killed mid-store on a filesystem without
        atomic rename durability) are deleted and reported as misses.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return self._memory_fallback(key)
        if not blob:
            # Zero-byte entry: a torn write; self-heal as a miss.
            path.unlink(missing_ok=True)
            return self._memory_fallback(key)
        try:
            value = pickle.loads(blob)
        except Exception:
            # Truncated or garbage pickle: delete and re-execute.
            path.unlink(missing_ok=True)
            return self._memory_fallback(key)
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def _memory_fallback(self, key: str):
        """Disk missed: consult the degradation fallback before giving
        up — a value parked there by a failed :meth:`put` is as good as
        a disk hit for the sweep that stored it."""
        with self._mem_lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return self._memory[key]
        self.stats.misses += 1
        return None

    def put(self, key: str, value) -> Path:
        """Store ``value`` under ``key``; enforce the LRU size cap.

        A disk failure (ENOSPC, EIO, torn write) degrades the store to
        the in-memory fallback instead of raising: the caller keeps
        its value either way, and the sweep in flight keeps
        deduplicating.  The next successful store resolves the
        degradation.
        """
        path = self._path(key)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # pid alone is not unique within a process: two threads storing
        # the same key would share a temp name and race the rename.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self.fs.open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                self.fs.fsync(handle.fileno())
            self.fs.replace(tmp, path)
        except OSError as err:
            self._put_degraded(key, value, tmp, err)
            return path
        self.stats.stores += 1
        with self._mem_lock:
            self._memory.pop(key, None)  # durable now; drop the fallback
        if self.health is not None:
            self.health.resolve("cache")
        try:
            with self._lock():
                self._sweep_stale_tmp()
                self._evict(keep=path)
        except OSError:
            pass  # eviction is maintenance; the store already landed
        return path

    def _put_degraded(self, key: str, value, tmp: Path,
                      err: OSError) -> None:
        """Absorb one failed disk store into the memory fallback."""
        self.stats.put_errors += 1
        if self._m_put_errors is not None:
            self._m_put_errors.inc()
        if self.health is not None:
            self.health.degrade("cache", f"put failed: {err}")
        try:
            tmp.unlink(missing_ok=True)  # a torn write may have landed
        except OSError:
            pass
        with self._mem_lock:
            self._memory[key] = value
            self._memory.move_to_end(key)
            while len(self._memory) > MEMORY_FALLBACK_ENTRIES:
                self._memory.popitem(last=False)

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by writers that died mid-store."""
        sweep_stale_tmp(self.directory)

    def _evict(self, keep: Path) -> None:
        """Delete oldest-recency entries until under ``max_bytes``."""
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        for path, size, _mtime in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue  # never evict the entry just written
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[tuple[Path, int, float]]:
        """``(path, size_bytes, mtime)`` per entry, oldest recency first."""
        rows = []
        for path in self.directory.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            rows.append((path, st.st_size, st.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0].name))
        return rows

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        with self._lock():
            for path, _size, _mtime in self.entries():
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def snapshot(self) -> dict:
        """Disk state + this instance's lookup accounting."""
        from repro.runner.simpoint import cache_salt

        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "salt": cache_salt(),
            **self.stats.as_dict(),
        }
