"""Persistent content-addressed result cache with an LRU size cap.

One entry per :meth:`~repro.runner.simpoint.SimPoint.key`: a pickled
:class:`~repro.core.sweep.Measurement` (or OSU result) under
``bench_results/.cache/<key>.pkl``.  Recency is tracked with file mtimes
— every hit touches its entry — and :meth:`ResultCache.put` evicts
least-recently-used entries whenever the directory grows past
``max_bytes``.  Unreadable or corrupt entries are treated as misses and
deleted, so a cache can never poison a run: the worst case is re-running
the simulation.

The cache is safe against concurrent *writers* (atomic temp-file +
rename), but hit/miss accounting is per-:class:`ResultCache` instance.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.sim.units import MiB

__all__ = ["CacheStats", "ResultCache", "DEFAULT_CACHE_DIR",
           "DEFAULT_MAX_BYTES"]

#: Default on-disk location, next to the experiment JSON it accelerates.
DEFAULT_CACHE_DIR = Path("bench_results") / ".cache"
#: Default size cap; a cached quick-tier Measurement is ~100 KiB.
DEFAULT_MAX_BYTES = 256 * MiB


@dataclass
class CacheStats:
    """Lookup accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        """Plain dict (for result metadata and CLI output)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}


class ResultCache:
    """Content-addressed pickle store keyed by ``SimPoint.key()``."""

    def __init__(self, directory: str | Path | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.directory = Path(directory) if directory is not None else DEFAULT_CACHE_DIR
        self.max_bytes = int(max_bytes)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.pkl"

    # -- lookups -----------------------------------------------------------
    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU recency.  Corrupt entries are
        deleted and reported as misses.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            value = pickle.loads(blob)
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value) -> Path:
        """Store ``value`` under ``key``; enforce the LRU size cap."""
        path = self._path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        tmp.replace(path)
        self.stats.stores += 1
        self._evict(keep=path)
        return path

    def _evict(self, keep: Path) -> None:
        """Delete oldest-recency entries until under ``max_bytes``."""
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        for path, size, _mtime in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue  # never evict the entry just written
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[tuple[Path, int, float]]:
        """``(path, size_bytes, mtime)`` per entry, oldest recency first."""
        rows = []
        for path in self.directory.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            rows.append((path, st.st_size, st.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0].name))
        return rows

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path, _size, _mtime in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def snapshot(self) -> dict:
        """Disk state + this instance's lookup accounting."""
        from repro.runner.simpoint import cache_salt

        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "salt": cache_salt(),
            **self.stats.as_dict(),
        }
