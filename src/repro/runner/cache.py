"""Persistent content-addressed result cache with an LRU size cap.

One entry per :meth:`~repro.runner.simpoint.SimPoint.key`: a pickled
:class:`~repro.core.sweep.Measurement` (or OSU result) under
``bench_results/.cache/<key>.pkl``.  Recency is tracked with file mtimes
— every hit touches its entry — and :meth:`ResultCache.put` evicts
least-recently-used entries whenever the directory grows past
``max_bytes``.  Unreadable, zero-byte or truncated entries are treated
as misses and deleted, so a cache can never poison a run: the worst case
is re-running the simulation.

Concurrency: writes are atomic (temp file + fsync + rename), and
mutation paths (``put`` eviction, ``clear``) additionally hold an
advisory ``fcntl`` lock on ``<dir>/.lock`` so concurrent sweeps sharing
one cache directory don't race the LRU scan.  On platforms without
``fcntl`` the lock degrades to a no-op — the rename is still atomic.
Hit/miss accounting is per-:class:`ResultCache` instance.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import threading
import time
from dataclasses import dataclass
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.sim.units import MiB

__all__ = ["CacheStats", "ResultCache", "DEFAULT_CACHE_DIR",
           "DEFAULT_MAX_BYTES", "sweep_stale_tmp"]

#: Default on-disk location, next to the experiment JSON it accelerates.
DEFAULT_CACHE_DIR = Path("bench_results") / ".cache"
#: Default size cap; a cached quick-tier Measurement is ~100 KiB.
DEFAULT_MAX_BYTES = 256 * MiB
#: Orphaned temp files older than this are swept on the next ``put`` —
#: they are leftovers from a writer that died mid-store.
STALE_TMP_SECONDS = 300.0


def sweep_stale_tmp(directory: str | Path,
                    older_than: float = STALE_TMP_SECONDS) -> int:
    """Remove ``*.tmp`` files orphaned by writers that died mid-store.

    Shared by the result cache and every other atomic-rename writer that
    parks temp files in its output directory (e.g. the runner's
    ``<key>.trace.json.<pid>.tmp`` capture files).  Returns the number of
    files removed; a missing directory sweeps nothing.
    """
    cutoff = time.time() - older_than
    removed = 0
    for tmp in Path(directory).glob("*.tmp"):
        try:
            if tmp.stat().st_mtime < cutoff:
                tmp.unlink(missing_ok=True)
                removed += 1
        except OSError:
            continue
    return removed


#: Numeric fields of :meth:`ResultCache.snapshot` exported as telemetry.
#: `repro cache stats --json` and the service's ``/v1/metrics``
#: ``service_cache{field=...}`` gauges both publish exactly these, so the
#: CLI and the API can never drift apart on the schema.
SNAPSHOT_STAT_FIELDS = ("entries", "total_bytes", "hits", "misses",
                        "hit_ratio")


@dataclass
class CacheStats:
    """Lookup accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Plain dict (for result metadata and CLI output)."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions,
                "hit_ratio": round(self.hit_ratio, 6)}


class ResultCache:
    """Content-addressed pickle store keyed by ``SimPoint.key()``."""

    def __init__(self, directory: str | Path | None = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.directory = Path(directory) if directory is not None else DEFAULT_CACHE_DIR
        self.max_bytes = int(max_bytes)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.pkl"

    @contextlib.contextmanager
    def _lock(self):
        """Advisory exclusive lock on the cache directory (best effort)."""
        if fcntl is None:
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.directory / ".lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    # -- lookups -----------------------------------------------------------
    def get(self, key: str):
        """The cached value for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU recency.  Zero-byte and corrupt
        entries (e.g. a writer killed mid-store on a filesystem without
        atomic rename durability) are deleted and reported as misses.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        if not blob:
            # Zero-byte entry: a torn write; self-heal as a miss.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        try:
            value = pickle.loads(blob)
        except Exception:
            # Truncated or garbage pickle: delete and re-execute.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value) -> Path:
        """Store ``value`` under ``key``; enforce the LRU size cap."""
        path = self._path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # pid alone is not unique within a process: two threads storing
        # the same key would share a temp name and race the rename.
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
        self.stats.stores += 1
        with self._lock():
            self._sweep_stale_tmp()
            self._evict(keep=path)
        return path

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files orphaned by writers that died mid-store."""
        sweep_stale_tmp(self.directory)

    def _evict(self, keep: Path) -> None:
        """Delete oldest-recency entries until under ``max_bytes``."""
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        for path, size, _mtime in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue  # never evict the entry just written
            path.unlink(missing_ok=True)
            total -= size
            self.stats.evictions += 1

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[tuple[Path, int, float]]:
        """``(path, size_bytes, mtime)`` per entry, oldest recency first."""
        rows = []
        for path in self.directory.glob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            rows.append((path, st.st_size, st.st_mtime))
        rows.sort(key=lambda row: (row[2], row[0].name))
        return rows

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        with self._lock():
            for path, _size, _mtime in self.entries():
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def snapshot(self) -> dict:
        """Disk state + this instance's lookup accounting."""
        from repro.runner.simpoint import cache_salt

        entries = self.entries()
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
            "salt": cache_salt(),
            **self.stats.as_dict(),
        }
