"""The unified execution-backend protocol.

Three things execute batches of simulation points — the local
:class:`~repro.runner.pool.Runner`, the service scheduler's job
execution, and the distributed
:class:`~repro.fabric.runner.FabricRunner` — and they all present this
one surface, so callers (experiment drivers, ``repro run``, the
scheduler) are backend-agnostic:

* ``run_points(points, *, timeout_s=None, retries=None,
  on_progress=None) -> list`` — resolve a batch, results in input
  order; the keyword-only overrides apply to that batch;
* ``stats`` — a :class:`~repro.runner.pool.RunnerStats`;
* ``meta()`` — accounting dict for result envelopes;
* ``quarantined`` — terminal failures recorded under
  ``failure_policy="quarantine"``.

Parameter names are deliberately uniform everywhere: ``timeout_s``
(never ``timeout``), ``retries``, ``workers``, ``on_progress``.  Old
spellings keep working through :func:`repro.bench.compat.deprecated_kwargs`
shims at the call sites that historically accepted them.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.runner.simpoint import SimPoint

__all__ = ["ExecutionBackend", "ProgressFn"]

#: ``on_progress(done, total, point, cached)`` — fired per resolved point.
ProgressFn = Callable[[int, int, SimPoint, bool], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """What every point-execution engine exposes."""

    def run_points(self, points: Sequence[SimPoint], *,
                   timeout_s: float | None = None,
                   retries: int | None = None,
                   on_progress: ProgressFn | None = None) -> list:
        """Resolve ``points``; results return in input order."""
        ...

    def meta(self) -> dict:
        """Accounting for result envelopes (workers, hits, retries...)."""
        ...
