"""Prefix memoization for iterations-laddered training sweeps.

Sweep points that differ **only** in ``iterations`` share a simulation
prefix: the trainer's per-iteration behaviour never depends on the total
iteration count, so iterations ``1..k`` of an ``iterations=n`` run are
bit-identical to the whole ``iterations=k`` run up to its final barrier.
This module exploits that instead of re-simulating the shared prefix
once per ladder member:

1. partition a batch of :class:`~repro.runner.simpoint.TrainPoint` into
   *ladder groups* (same knobs, different ``iterations``) and singletons
   (:func:`plan_groups`);
2. run only the **largest** member of each group, with a
   :class:`~repro.checkpoint.CheckpointPlan` capturing resumable state at
   every smaller member's final boundary (``CheckpointPlan(at=...)``);
3. materialize each smaller member by resuming its boundary checkpoint
   with ``spec["iterations"]`` rewritten
   (:func:`~repro.checkpoint.resume_training`) — the resumed run only
   replays the already-drawn optimizer tail, simulating ~zero new
   iterations.

The correctness contract is the resume contract
(:mod:`repro.checkpoint.train`): a memoized Measurement is equal to the
fresh run of the same point in every compared field — stats, timeline
events, runtime stats, link utilization — excluding kernel event counts.
``tests/runner/test_prefix_memo.py`` is the gate.

Eligibility is deliberately conservative (:func:`memoizable`): points
with a fault schedule, telemetry or tracing stay on the fresh path —
fault windows are wall-clock-positioned (not per-iteration), and probe /
tracer state embeds kernel event counters that would distinguish a
resumed run from a fresh one.

A :class:`PrefixStore` optionally persists the captured prefix
checkpoints in the :mod:`repro.checkpoint.format` container, keyed by
the ladder's knob hash, so a later process extending the same ladder
(e.g. a convergence study adding ``iterations=16``) resumes from the
stored prefix instead of re-simulating it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.runner.simpoint import TrainPoint, cache_salt

__all__ = [
    "PrefixStats",
    "PrefixStore",
    "ladder_key",
    "memoizable",
    "plan_groups",
    "prefix_run",
    "run_with_prefix_memo",
]


def memoizable(point) -> bool:
    """True when ``point`` may participate in an iterations ladder.

    Scheduled faults are positioned in simulated seconds, not
    iterations, so truncating a run changes which windows fire inside
    it; probe and tracer snapshots embed kernel event counters that the
    resume contract explicitly excludes.  Such points run fresh.
    """
    return (
        isinstance(point, TrainPoint)
        and point.schedule is None
        and not point.telemetry
        and point.trace is None
        and point.iterations >= 1
    )


def ladder_key(point: TrainPoint) -> str:
    """Hash of every knob except ``iterations`` — the ladder identity.

    Salted exactly like :meth:`~repro.runner.simpoint.SimPoint.key`, so
    stored prefixes can never leak across simulation-semantics changes.
    """
    knobs = point.payload()
    del knobs["iterations"]
    doc = {"kind": "train-prefix", "salt": cache_salt(), "knobs": knobs}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def plan_groups(points):
    """Partition ``points`` into ladder groups and singleton indices.

    Returns ``(groups, singles)`` where ``groups`` maps
    :func:`ladder_key` to a list of ``(index, point)`` sorted by
    ``iterations`` (at least two *distinct* iteration counts each), and
    ``singles`` is the list of input indices outside any group.
    Duplicate points land in the same group entry and share one result.
    """
    by_key: dict[str, list[tuple[int, TrainPoint]]] = {}
    singles: list[int] = []
    for idx, point in enumerate(points):
        if memoizable(point):
            by_key.setdefault(ladder_key(point), []).append((idx, point))
        else:
            singles.append(idx)
    groups: dict[str, list[tuple[int, TrainPoint]]] = {}
    for key, members in by_key.items():
        if len({p.iterations for _, p in members}) >= 2:
            groups[key] = sorted(members, key=lambda ip: ip[1].iterations)
        else:
            singles.extend(idx for idx, _ in members)
    singles.sort()
    return groups, singles


class PrefixStore:
    """On-disk prefix checkpoints, one container file per ladder key.

    Each file (:mod:`repro.checkpoint.format`) holds
    ``{boundary: TrainCheckpoint}``; :meth:`save` merges with what is
    already stored, so successive sweeps accumulate boundaries.  Corrupt
    or unreadable files are treated as absent — the store is a pure
    accelerator, never a correctness dependency.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / f"{key[:40]}.ckpt"

    def load(self, key: str) -> dict:
        """Stored ``{boundary: TrainCheckpoint}`` for ``key`` (may be empty)."""
        from repro.checkpoint import CheckpointError, read_checkpoint

        try:
            obj = read_checkpoint(self._path(key))
        except (CheckpointError, OSError):
            return {}
        return obj if isinstance(obj, dict) else {}

    def save(self, key: str, checkpoints: dict) -> None:
        """Merge ``checkpoints`` into the stored set for ``key``."""
        from repro.checkpoint import write_checkpoint

        merged = {**self.load(key), **checkpoints}
        write_checkpoint(self._path(key), merged)


@dataclass
class PrefixStats:
    """Accounting of what one :func:`prefix_run` actually simulated."""

    #: Points in the batch / points materialized from a shared prefix.
    points: int = 0
    memoized_points: int = 0
    #: Ladder groups found.
    groups: int = 0
    #: Boundary checkpoints reused from a :class:`PrefixStore`.
    store_hits: int = 0
    #: Iterations a naive point-per-run sweep would simulate (distinct
    #: points only — the result cache already dedups exact repeats).
    iterations_reference: int = 0
    #: Full iterations actually simulated (resume tails count 0 — they
    #: replay the captured optimizer segment, no new iterations).
    iterations_simulated: int = 0
    #: Ladder keys touched, for journals/debugging.
    keys: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "memoized_points": self.memoized_points,
            "groups": self.groups,
            "store_hits": self.store_hits,
            "iterations_reference": self.iterations_reference,
            "iterations_simulated": self.iterations_simulated,
        }


def _rewrite(checkpoint, iterations: int):
    """``checkpoint`` with its spec retargeted to ``iterations`` total."""
    return dataclasses.replace(
        checkpoint, spec={**checkpoint.spec, "iterations": iterations}
    )


def _run_ladder(members, store, key, stats):
    """Measure one ladder group; returns ``{iterations: Measurement}``.

    ``members`` is the group's point list sorted by ``iterations``.
    """
    from repro.checkpoint import CheckpointPlan, resume_training
    from repro.core.sweep import measure_training

    ladder = sorted({p.iterations for p in members})
    largest = ladder[-1]
    smaller = ladder[:-1]
    spec_point = members[-1]
    stored = store.load(key) if store is not None else {}

    results: dict[int, object] = {}
    missing = [b for b in smaller if b not in stored]
    # The deepest stored prefix every missing boundary can still be
    # captured from (captures happen strictly after the resume point).
    base = max(
        (b for b in stored
         if b <= largest and (not missing or b < min(missing))),
        default=None,
    )
    plan = CheckpointPlan(every=0, at=tuple(missing)) if missing else None
    if base is not None:
        # Extend the stored prefix, banking any still-missing boundaries
        # on the way (capture-on-resume).
        m = resume_training(_rewrite(stored[base], largest), plan=plan)
        stats.store_hits += 1
        stats.iterations_simulated += largest - base
        stats.memoized_points += 1
    else:
        # Simulate the whole ladder once: the largest member, capturing
        # resumable state at every smaller member's final boundary.
        kwargs = {
            f.name: getattr(spec_point, f.name)
            for f in dataclasses.fields(spec_point)
        }
        kwargs["iterations"] = largest
        m = measure_training(
            checkpoint=plan or CheckpointPlan(every=0, at=tuple(smaller)),
            **kwargs,
        )
        stats.iterations_simulated += largest
    results[largest] = m
    fresh_checkpoints = dict(m.checkpoints or {})
    available = {**stored, **fresh_checkpoints}
    for n in smaller:
        if n not in available:
            # A capture can be skipped when its barrier was not
            # quiescent; with no fault schedule that never happens, but
            # a fresh run is always a correct fallback.
            kwargs = {
                f.name: getattr(spec_point, f.name)
                for f in dataclasses.fields(spec_point)
            }
            kwargs["iterations"] = n
            results[n] = measure_training(**kwargs)
            stats.iterations_simulated += n
            continue
        if n in stored:
            stats.store_hits += 1
        results[n] = resume_training(_rewrite(available[n], n))
        stats.memoized_points += 1
    if store is not None and fresh_checkpoints:
        store.save(key, fresh_checkpoints)
    stats.iterations_reference += sum(ladder)
    return results


def prefix_run(points, runner=None, store=None):
    """Run ``points`` with prefix memoization; returns ``(results, stats)``.

    Results come back in input order, exactly like
    :meth:`~repro.runner.pool.Runner.run`.  Singleton points (and every
    non-memoizable point) go through ``runner`` — process pool, result
    cache, retry machinery — unchanged; ladder groups are simulated
    once per group as described in the module docstring.  Memoized
    results are written back to the runner's result cache under each
    member point's own key, so later plain runs hit the cache.
    """
    from repro.runner.pool import Runner

    stats = PrefixStats(points=len(points))
    groups, singles = plan_groups(points)
    stats.groups = len(groups)
    results: dict[int, object] = {}

    if singles:
        active = runner if runner is not None else Runner()
        single_results = active.run([points[i] for i in singles])
        for idx, value in zip(singles, single_results):
            results[idx] = value
        stats.iterations_reference += sum(
            points[i].iterations
            for i in set(singles)
            if isinstance(points[i], TrainPoint)
        )
        stats.iterations_simulated += sum(
            p.iterations
            for p in {points[i] for i in singles}
            if isinstance(p, TrainPoint)
        )

    cache = getattr(runner, "cache", None)
    for key, members in groups.items():
        stats.keys.append(key)
        by_iterations = _run_ladder([p for _, p in members], store, key, stats)
        for idx, point in members:
            results[idx] = by_iterations[point.iterations]
        if cache is not None:
            for point in {p for _, p in members}:
                cache.put(point.key(), by_iterations[point.iterations])
    return [results[i] for i in range(len(points))], stats


def run_with_prefix_memo(points, runner=None, store=None):
    """Drop-in :meth:`Runner.run` replacement (results only)."""
    return prefix_run(points, runner=runner, store=store)[0]
