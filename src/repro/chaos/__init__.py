"""Deterministic chaos harness for the infrastructure substrate.

The twin of :mod:`repro.faults`: where that package injects faults into
the *simulated cluster*, this one injects them into the real
infrastructure built around it — the service API, the distributed
fabric, and the caches/journals underneath — through three planes:

* **transport** — :class:`ChaosTransport` wraps any
  :class:`~repro.fabric.transport.Transport` and drops/delays/5xx-es
  requests by op index;
* **filesystem** — :class:`ChaosFS` plugs into the
  :class:`~repro.runner.fsio.LocalFS` seam behind ``ResultCache``,
  ``RunJournal`` and both queues, raising ENOSPC/EIO and tearing
  writes at byte offsets;
* **process** — :class:`ProcessChaos` drives worker kill/hang
  schedules from the harness side.

Everything is driven by one declarative, JSON-round-trippable
:class:`ChaosSchedule` with a single ``seed``: a failing run's schedule
*is* its reproduction recipe (the CI ``chaos-matrix`` job uploads it on
failure).
"""

def chaos_event(plane: str, **fields) -> None:
    """Emit one correlated ``chaos_injected`` observability event.

    Every delivered fault is announced on the structured event log so
    the acceptance gate can pair each injected fault window with the
    degradation it produced.  The record always carries a
    ``request_id``: the one already bound on this thread when the fault
    fired inside a request (tying the fault to that request's other
    events), or a freshly minted one otherwise.

    Defined above the plane imports below so the planes can import it
    from the partially initialised package without a cycle.
    """
    from repro.obs import bind, current_context, emit, new_request_id

    extra = ({} if current_context().get("request_id")
             else {"request_id": new_request_id()})
    with bind(**extra):
        emit("chaos_injected", level="warn", plane=plane, **fields)


from repro.chaos.fs import ChaosFS
from repro.chaos.process import ProcessChaos, kill_pid, stop_then_continue
from repro.chaos.spec import (
    ChaosSchedule,
    DiskError,
    DiskFull,
    TornWrite,
    TransportFlap,
    WorkerHang,
    WorkerKill,
)
from repro.chaos.transport import ChaosTransport

__all__ = [
    "ChaosFS",
    "chaos_event",
    "ChaosSchedule",
    "ChaosTransport",
    "DiskError",
    "DiskFull",
    "ProcessChaos",
    "TornWrite",
    "TransportFlap",
    "WorkerHang",
    "WorkerKill",
    "kill_pid",
    "stop_then_continue",
]
