"""Deterministic chaos harness for the infrastructure substrate.

The twin of :mod:`repro.faults`: where that package injects faults into
the *simulated cluster*, this one injects them into the real
infrastructure built around it — the service API, the distributed
fabric, and the caches/journals underneath — through three planes:

* **transport** — :class:`ChaosTransport` wraps any
  :class:`~repro.fabric.transport.Transport` and drops/delays/5xx-es
  requests by op index;
* **filesystem** — :class:`ChaosFS` plugs into the
  :class:`~repro.runner.fsio.LocalFS` seam behind ``ResultCache``,
  ``RunJournal`` and both queues, raising ENOSPC/EIO and tearing
  writes at byte offsets;
* **process** — :class:`ProcessChaos` drives worker kill/hang
  schedules from the harness side.

Everything is driven by one declarative, JSON-round-trippable
:class:`ChaosSchedule` with a single ``seed``: a failing run's schedule
*is* its reproduction recipe (the CI ``chaos-matrix`` job uploads it on
failure).
"""

from repro.chaos.fs import ChaosFS
from repro.chaos.process import ProcessChaos, kill_pid, stop_then_continue
from repro.chaos.spec import (
    ChaosSchedule,
    DiskError,
    DiskFull,
    TornWrite,
    TransportFlap,
    WorkerHang,
    WorkerKill,
)
from repro.chaos.transport import ChaosTransport

__all__ = [
    "ChaosFS",
    "ChaosSchedule",
    "ChaosTransport",
    "DiskError",
    "DiskFull",
    "ProcessChaos",
    "TornWrite",
    "TransportFlap",
    "WorkerHang",
    "WorkerKill",
    "kill_pid",
    "stop_then_continue",
]
