"""Process fault plane: kill/hang schedules for worker processes.

Unlike the transport and fs planes, process faults cannot be injected
from *inside* the victim — a SIGKILL is delivered by the harness that
owns the process.  :class:`ProcessChaos` is that harness-side driver:
it watches a completion counter (the coordinator queue's DONE count,
typically) and fires each :class:`~repro.chaos.spec.WorkerKill` /
:class:`~repro.chaos.spec.WorkerHang` exactly once when its
``after_done`` threshold is crossed.

The killing/stopping itself goes through injected callables, so the
same driver serves ``os.kill(pid, SIGKILL)`` harnesses and
thread-worker tests that "hang" by other means.
"""

from __future__ import annotations

import os
import signal
import threading

from repro.chaos.spec import ChaosSchedule, WorkerHang, WorkerKill

__all__ = ["ProcessChaos", "kill_pid", "stop_then_continue"]


def kill_pid(pid: int) -> bool:
    """SIGKILL one process; ``False`` when it is already gone."""
    try:
        os.kill(pid, signal.SIGKILL)
        return True
    except ProcessLookupError:
        return False


def stop_then_continue(pid: int, hang_s: float) -> bool:
    """SIGSTOP now, SIGCONT on a timer — a bounded hard hang."""
    try:
        os.kill(pid, signal.SIGSTOP)
    except ProcessLookupError:
        return False

    def resume() -> None:
        try:
            os.kill(pid, signal.SIGCONT)
        except ProcessLookupError:
            pass

    timer = threading.Timer(hang_s, resume)
    timer.daemon = True
    timer.start()
    return True


class ProcessChaos:
    """Fire the schedule's process faults against a worker fleet.

    Parameters
    ----------
    schedule:
        Source of :class:`WorkerKill` / :class:`WorkerHang` specs.
    kill / hang:
        ``kill(worker_name)`` and ``hang(worker_name, hang_s)``
        callables supplied by the harness (it knows how worker names
        map to PIDs/threads).  Each returns truthy when the fault was
        actually delivered.

    Call :meth:`poll` whenever the observed completion count may have
    advanced; each spec fires at most once.  Thread-safe.
    """

    def __init__(self, schedule: ChaosSchedule, kill=None, hang=None) -> None:
        self.schedule = schedule
        self.kill = kill
        self.hang = hang
        self._lock = threading.Lock()
        self._pending = list(schedule.process_faults())
        self.fired: list = []

    @property
    def done(self) -> bool:
        """Whether every process fault has been delivered."""
        with self._lock:
            return not self._pending

    def poll(self, completed: int, pick=None) -> list:
        """Fire every pending spec whose threshold is crossed.

        ``pick()`` (optional) names a victim for specs whose ``worker``
        is ``None`` — e.g. "whichever worker currently holds a lease".
        Returns the specs fired by this call.
        """
        with self._lock:
            ready = [s for s in self._pending if s.after_done <= completed]
            self._pending = [s for s in self._pending
                             if s.after_done > completed]
        fired = []
        for spec in ready:
            victim = spec.worker
            if victim is None and pick is not None:
                victim = pick()
            delivered = False
            if isinstance(spec, WorkerKill) and self.kill is not None:
                delivered = bool(self.kill(victim))
            elif isinstance(spec, WorkerHang) and self.hang is not None:
                delivered = bool(self.hang(victim, spec.hang_s))
            if delivered:
                from repro.chaos import chaos_event

                chaos_event("process", fault=type(spec).__name__,
                            worker=victim, after_done=spec.after_done)
                fired.append(spec)
            else:
                # Victim not deliverable yet (e.g. no lease holder):
                # rearm so a later poll retries.
                with self._lock:
                    self._pending.append(spec)
        with self._lock:
            self.fired.extend(fired)
        return fired
