"""Declarative chaos specifications for the infrastructure substrate.

:mod:`repro.faults` injects faults into the *simulated cluster*
(stragglers, link flaps, rank crashes); this module is its twin for the
*real* infrastructure around the simulator — the service API, the
fabric protocol, and the journals/caches under them.  A
:class:`ChaosSchedule` is plain data: typed specs across three fault
planes, plus one ``seed`` feeding every probabilistic decision, so a
failing chaos run replays **exactly** from its schedule alone.

Fault planes and their anchors:

* **transport** (:class:`TransportFlap`) — anchored at the wrapping
  :class:`~repro.chaos.transport.ChaosTransport`'s request-op index;
* **filesystem** (:class:`DiskFull`, :class:`DiskError`,
  :class:`TornWrite`) — anchored at the
  :class:`~repro.chaos.fs.ChaosFS`'s write-open op index;
* **process** (:class:`WorkerKill`, :class:`WorkerHang`) — anchored at
  completion counts, consumed by test harnesses via
  :class:`~repro.chaos.process.ProcessChaos`.

Op-count anchoring (instead of wall-clock windows) is what makes
replay deterministic: the Nth write is the Nth write on every run,
however fast the host is.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

__all__ = [
    "ChaosSchedule",
    "DiskError",
    "DiskFull",
    "TornWrite",
    "TransportFlap",
    "WorkerHang",
    "WorkerKill",
]

#: Transport fault modes: vanish (``TransportError``), stall, or answer
#: with a synthesized 5xx envelope.
_FLAP_MODES = ("drop", "delay", "error")


def _check_window(start_op: int, count: int) -> None:
    if start_op < 0:
        raise ValueError("start_op must be >= 0")
    if count < 1:
        raise ValueError("count must be >= 1")


@dataclass(frozen=True)
class TransportFlap:
    """Requests in ``[start_op, start_op+count)`` misbehave.

    Each request in the window draws once from the schedule RNG and is
    faulted with ``probability``; ``mode`` picks how — ``"drop"``
    raises :class:`~repro.fabric.transport.TransportError` (the request
    never produced a response), ``"delay"`` sleeps ``delay_s`` before
    forwarding, ``"error"`` short-circuits with an HTTP ``status``
    error envelope (code ``"chaos"``).
    """

    start_op: int
    count: int
    probability: float = 1.0
    mode: str = "drop"
    delay_s: float = 0.05
    status: int = 503

    def __post_init__(self) -> None:
        _check_window(self.start_op, self.count)
        if not 0 < self.probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        if self.mode not in _FLAP_MODES:
            raise ValueError(f"mode must be one of {_FLAP_MODES}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if not 500 <= self.status <= 599:
            raise ValueError("status must be a 5xx code")


@dataclass(frozen=True)
class DiskFull:
    """Write-opens in ``[start_op, start_op+count)`` raise ENOSPC."""

    start_op: int
    count: int = 1

    def __post_init__(self) -> None:
        _check_window(self.start_op, self.count)


@dataclass(frozen=True)
class DiskError:
    """Write-opens in ``[start_op, start_op+count)`` raise EIO."""

    start_op: int
    count: int = 1

    def __post_init__(self) -> None:
        _check_window(self.start_op, self.count)


@dataclass(frozen=True)
class TornWrite:
    """Write-open ``at_op`` persists only ``keep_bytes``, then raises EIO.

    Models a crash mid-``write()``: the handle really writes the prefix
    to disk (so readers see a torn tail, exactly what the journals'
    drop-garbled-tail discipline must absorb) and every later operation
    on it fails.
    """

    at_op: int
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        if self.at_op < 0:
            raise ValueError("at_op must be >= 0")
        if self.keep_bytes < 0:
            raise ValueError("keep_bytes must be >= 0")


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL one worker once ``after_done`` completions are observed.

    ``worker`` optionally names which (harness-specific identity);
    ``None`` means whichever currently holds a lease.
    """

    after_done: int
    worker: str | None = None

    def __post_init__(self) -> None:
        if self.after_done < 0:
            raise ValueError("after_done must be >= 0")


@dataclass(frozen=True)
class WorkerHang:
    """One worker stops making progress for ``hang_s`` after
    ``after_done`` completions (SIGSTOP/sleep in the harness) — long
    enough to lapse its lease, short enough to come back and report
    late."""

    after_done: int
    hang_s: float = 5.0
    worker: str | None = None

    def __post_init__(self) -> None:
        if self.after_done < 0:
            raise ValueError("after_done must be >= 0")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be > 0")


#: JSON ``type`` tag ↔ spec class (the :mod:`repro.faults` idiom).
_TYPES = {
    "transport_flap": TransportFlap,
    "disk_full": DiskFull,
    "disk_error": DiskError,
    "torn_write": TornWrite,
    "worker_kill": WorkerKill,
    "worker_hang": WorkerHang,
}
_TAGS = {cls: tag for tag, cls in _TYPES.items()}

#: Which plane each spec type injects into.
_PLANES = {
    TransportFlap: "transport",
    DiskFull: "fs",
    DiskError: "fs",
    TornWrite: "fs",
    WorkerKill: "process",
    WorkerHang: "process",
}

ChaosSpec = (
    TransportFlap | DiskFull | DiskError | TornWrite | WorkerKill | WorkerHang
)


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered collection of chaos specs plus the replay seed."""

    faults: tuple = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if type(spec) not in _TAGS:
                raise TypeError(f"not a chaos spec: {spec!r}")
        if not isinstance(self.seed, int):
            raise TypeError("seed must be an integer")

    def __iter__(self) -> Iterator[ChaosSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def of(cls, *specs: ChaosSpec, seed: int = 0) -> "ChaosSchedule":
        """Build from spec arguments."""
        return cls(tuple(specs), seed=seed)

    def rng(self) -> random.Random:
        """A fresh RNG seeded for exact replay.

        Every consumer that needs randomness (one
        :class:`~repro.chaos.transport.ChaosTransport`, say) takes its
        own ``rng()`` so interleaving between consumers cannot change
        any one consumer's draw sequence.
        """
        return random.Random(self.seed)

    # -- plane filters ------------------------------------------------------
    def plane(self, name: str) -> tuple:
        """The specs injecting into one plane
        (``"transport"``/``"fs"``/``"process"``)."""
        if name not in ("transport", "fs", "process"):
            raise ValueError(f"unknown fault plane {name!r}")
        return tuple(s for s in self.faults if _PLANES[type(s)] == name)

    def transport_faults(self) -> tuple:
        return self.plane("transport")

    def fs_faults(self) -> tuple:
        return self.plane("fs")

    def process_faults(self) -> tuple:
        return self.plane("process")

    # -- (de)serialization --------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosSchedule":
        """Parse ``{"seed": ..., "faults": [{"type": ..., ...}, ...]}``."""
        if not isinstance(data, dict) or "faults" not in data:
            raise ValueError(
                "schedule must be an object with a 'faults' array")
        seed = data.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError("seed must be an integer")
        specs = []
        for i, item in enumerate(data["faults"]):
            if not isinstance(item, dict) or "type" not in item:
                raise ValueError(
                    f"fault #{i} must be an object with a 'type'")
            kind = item["type"]
            spec_cls = _TYPES.get(kind)
            if spec_cls is None:
                raise ValueError(
                    f"fault #{i}: unknown type {kind!r} "
                    f"(expected one of {sorted(_TYPES)})")
            kwargs = {k: v for k, v in item.items() if k != "type"}
            try:
                specs.append(spec_cls(**kwargs))
            except TypeError as err:
                raise ValueError(f"fault #{i} ({kind}): {err}") from err
        return cls(tuple(specs), seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        """Parse a JSON document in the :meth:`from_dict` schema."""
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict[str, Any]:
        """Inverse of :meth:`from_dict` (round-trip safe)."""
        return {
            "seed": self.seed,
            "faults": [{"type": _TAGS[type(spec)], **asdict(spec)}
                       for spec in self.faults],
        }

    def to_json(self) -> str:
        """Serialize to the JSON schema ``from_json`` reads — what the
        CI ``chaos-matrix`` job uploads as the replay artifact."""
        return json.dumps(self.to_dict(), indent=1)
