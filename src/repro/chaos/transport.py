"""Transport fault plane: a wrapper that flaps any
:class:`~repro.fabric.transport.Transport`.

:class:`ChaosTransport` sits between a client (``ServiceClient``,
``FabricClient``) and its real transport, counting requests and
injecting the schedule's :class:`~repro.chaos.spec.TransportFlap`
windows by op index.  Determinism contract: **exactly one RNG draw per
request op**, whether or not any window covers it, so the drop/delay
pattern a seed produces is a pure function of ``(schedule, op
sequence)`` — adding or removing a flap window never shifts the draws
of later ops.
"""

from __future__ import annotations

import json
import threading
import time

from repro.chaos.spec import ChaosSchedule, TransportFlap
from repro.fabric.transport import Transport, TransportError

__all__ = ["ChaosTransport"]


class ChaosTransport(Transport):
    """Wrap ``inner`` and misbehave per the schedule's transport plane.

    Fault modes (see :class:`~repro.chaos.spec.TransportFlap`):
    ``drop`` raises :class:`TransportError` without touching the inner
    transport (the request vanished); ``delay`` sleeps then forwards;
    ``error`` short-circuits with a synthesized 5xx error envelope —
    the same shape a degraded server emits, so client-side handling
    (circuit breakers, Retry-After) sees the real thing.

    ``sleep`` is injectable so tests assert delay faults without
    actually waiting.
    """

    def __init__(self, inner: Transport, schedule: ChaosSchedule,
                 sleep=time.sleep) -> None:
        super().__init__(token=inner.token,
                         breaker=getattr(inner, "breaker", None))
        self.inner = inner
        self.schedule = schedule
        self.sleep = sleep
        self._lock = threading.Lock()
        self._rng = schedule.rng()
        self.ops = 0
        self.injected = 0

    def _fault_for(self, op: int) -> TransportFlap | None:
        for spec in self.schedule.transport_faults():
            if spec.start_op <= op < spec.start_op + spec.count:
                return spec
        return None

    def exchange(self, method: str, path: str,
                 payload: dict | None = None, *,
                 idempotent: bool | None = None) -> tuple[int, dict, bytes]:
        with self._lock:
            op = self.ops
            self.ops += 1
            draw = self._rng.random()  # exactly one draw per op
            spec = self._fault_for(op)
            fire = spec is not None and draw < spec.probability
            if fire:
                self.injected += 1
        if fire:
            from repro.chaos import chaos_event

            chaos_event("transport", mode=spec.mode, op=op,
                        method=method, path=path)
            if spec.mode == "drop":
                raise TransportError(
                    f"chaos: dropped request #{op} ({method} {path})")
            if spec.mode == "delay":
                self.sleep(spec.delay_s)
            else:  # error
                body = json.dumps({"error": {
                    "code": "chaos",
                    "message": f"injected {spec.status} on request #{op}",
                }}).encode("utf-8")
                return spec.status, {}, body
        return self.inner.exchange(method, path, payload,
                                   idempotent=idempotent)
