"""Filesystem fault plane: a :class:`~repro.runner.fsio.LocalFS` that
fails like a real disk.

:class:`ChaosFS` counts **write-plane opens** (any ``open`` whose mode
writes: ``w``/``a``/``x``/``+``) and injects the schedule's fs faults
by op index — the Nth durable write is the Nth durable write on every
run, so an ENOSPC episode lands on exactly the same cache store or
journal append when a failing seed is replayed.  Read-plane opens pass
straight through uncounted: the degradation contracts under test
(cache memory fallback, journal torn-tail healing, lease refusal) are
all about the write path.

Faults:

* :class:`~repro.chaos.spec.DiskFull` — the open raises ``ENOSPC``;
* :class:`~repro.chaos.spec.DiskError` — the open raises ``EIO``;
* :class:`~repro.chaos.spec.TornWrite` — the open succeeds but the
  handle persists only the first ``keep_bytes`` of what is written,
  then raises ``EIO``; the torn prefix really reaches the file, which
  is precisely the artifact the journals' drop-garbled-tail discipline
  exists to absorb.
"""

from __future__ import annotations

import errno
import os
import threading
from pathlib import Path

from repro.chaos.spec import ChaosSchedule, DiskError, DiskFull, TornWrite
from repro.runner.fsio import LocalFS

__all__ = ["ChaosFS"]


class _TornHandle:
    """File-handle proxy that tears the first write at a byte offset."""

    def __init__(self, handle, keep: int) -> None:
        self._handle = handle
        self._budget = int(keep)
        self._torn = False

    def write(self, data) -> int:
        if self._torn:
            raise OSError(errno.EIO, os.strerror(errno.EIO))
        kept = data[:self._budget]
        if kept:
            self._handle.write(kept)
            self._handle.flush()
            self._budget -= len(kept)
        self._torn = True
        raise OSError(errno.EIO, os.strerror(errno.EIO))

    def flush(self) -> None:
        if self._torn:
            raise OSError(errno.EIO, os.strerror(errno.EIO))
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "_TornHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChaosFS(LocalFS):
    """Fault-injecting filesystem seam, driven by a
    :class:`~repro.chaos.spec.ChaosSchedule`'s fs plane.

    Thread-safe: the op counter is lock-protected, so concurrent
    writers (coordinator threads, scheduler workers) observe one global
    deterministic op order per run.  ``injected`` counts faults
    actually delivered, for assertions.
    """

    def __init__(self, schedule: ChaosSchedule) -> None:
        self.schedule = schedule
        self._lock = threading.Lock()
        self.write_ops = 0
        self.injected = 0

    @staticmethod
    def _writes(mode: str) -> bool:
        return any(flag in mode for flag in ("w", "a", "x", "+"))

    def _fault_for(self, op: int):
        for spec in self.schedule.fs_faults():
            if isinstance(spec, (DiskFull, DiskError)):
                if spec.start_op <= op < spec.start_op + spec.count:
                    return spec
            elif isinstance(spec, TornWrite) and spec.at_op == op:
                return spec
        return None

    def open(self, path: str | Path, mode: str = "r",
             encoding: str | None = None):
        if not self._writes(mode):
            return super().open(path, mode, encoding)
        with self._lock:
            op = self.write_ops
            self.write_ops += 1
            spec = self._fault_for(op)
            if spec is not None:
                self.injected += 1
        if spec is None:
            return super().open(path, mode, encoding)
        from repro.chaos import chaos_event

        chaos_event("fs", fault=type(spec).__name__, op=op,
                    target=str(path))
        if isinstance(spec, DiskFull):
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(path))
        if isinstance(spec, DiskError):
            raise OSError(errno.EIO, os.strerror(errno.EIO), str(path))
        return _TornHandle(super().open(path, mode, encoding),
                           spec.keep_bytes)
