"""The on-disk checkpoint container: magic, schema version, CRC, pickle.

A checkpoint file is::

    MAGIC (8 bytes)  b"RPROCKPT"
    header (14 bytes) struct "<HIQ": schema version, CRC-32 of the
                      payload, payload length in bytes
    payload           pickle of the checkpointed object

Writes are atomic (temp file + fsync + rename), so a reader can never
observe a half-written checkpoint; a *killed* writer leaves only a stale
``*.tmp`` beside the target.  Reads validate magic, schema version,
length and CRC before unpickling and raise :class:`CheckpointError` on
any mismatch — a truncated or bit-flipped file is detected up front, not
as a confusing pickle error.

Trust model: the payload is a pickle, exactly like the result cache —
only load checkpoints you (or your own runs) wrote.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any

__all__ = [
    "CheckpointError",
    "SCHEMA_VERSION",
    "dumps_checkpoint",
    "loads_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]

MAGIC = b"RPROCKPT"
#: Bump when the container layout (not the payload) changes.
SCHEMA_VERSION = 1

_HEADER = struct.Struct("<HIQ")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read or validated."""


def dumps_checkpoint(obj: Any) -> bytes:
    """Serialize ``obj`` into the container format (bytes)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(SCHEMA_VERSION, zlib.crc32(payload), len(payload))
    return MAGIC + header + payload


def loads_checkpoint(blob: bytes) -> Any:
    """Validate and deserialize a container produced by :func:`dumps_checkpoint`."""
    head_len = len(MAGIC) + _HEADER.size
    if len(blob) < head_len:
        raise CheckpointError(
            f"checkpoint truncated: {len(blob)} bytes, header needs {head_len}"
        )
    if blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError("not a checkpoint file (bad magic)")
    version, crc, length = _HEADER.unpack_from(blob, len(MAGIC))
    if version > SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema v{version} is newer than supported "
            f"v{SCHEMA_VERSION}"
        )
    payload = blob[head_len:]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint truncated: payload {len(payload)} bytes, "
            f"header says {length}"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError("checkpoint corrupt: CRC mismatch")
    try:
        return pickle.loads(payload)
    except Exception as err:
        raise CheckpointError(f"checkpoint payload unreadable: {err}") from err


def write_checkpoint(path: str | Path, obj: Any) -> Path:
    """Atomically write ``obj`` as a checkpoint file at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = dumps_checkpoint(obj)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as f:
        f.write(blob)
        f.flush()
        os.fsync(f.fileno())
    tmp.replace(path)
    return path


def read_checkpoint(path: str | Path) -> Any:
    """Read and validate the checkpoint file at ``path``."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as err:
        raise CheckpointError(f"cannot read checkpoint {path}: {err}") from err
    return loads_checkpoint(blob)


def inspect_checkpoint(path: str | Path) -> dict:
    """Header metadata (no unpickling): schema version, CRC, sizes."""
    path = Path(path)
    blob = path.read_bytes()
    head_len = len(MAGIC) + _HEADER.size
    if len(blob) < head_len or blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError(f"{path} is not a checkpoint file")
    version, crc, length = _HEADER.unpack_from(blob, len(MAGIC))
    return {
        "path": str(path),
        "schema_version": version,
        "crc32": crc,
        "payload_bytes": length,
        "file_bytes": len(blob),
        "complete": len(blob) - head_len == length,
    }
