"""Crash-safe checkpointing: container format + training snapshot/resume."""

from repro.checkpoint.format import (
    SCHEMA_VERSION,
    CheckpointError,
    dumps_checkpoint,
    inspect_checkpoint,
    loads_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.train import CheckpointPlan, TrainCheckpoint, resume_training

__all__ = [
    "CheckpointError",
    "CheckpointPlan",
    "SCHEMA_VERSION",
    "TrainCheckpoint",
    "dumps_checkpoint",
    "inspect_checkpoint",
    "loads_checkpoint",
    "read_checkpoint",
    "resume_training",
    "write_checkpoint",
]
