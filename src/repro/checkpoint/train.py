"""Deterministic training checkpoints: capture plans and resume.

A checkpoint is taken at an **iteration barrier** — the one instant where
every alive rank sits at the same simulated time with no tensors in
flight — so the whole mutable simulation state (clock, per-rank RNG
streams and pipeline clocks, runtime membership and caches, fabric and
communicator counters, timeline, fault-injector progress, telemetry
probe) reduces to a flat picklable dict.  The
:class:`~repro.train.trainer.DistributedTrainer` produces that dict; this
module wraps it with the run's knob spec into a :class:`TrainCheckpoint`
and rebuilds a live simulation from it.

The resume contract is **bit-identical continuation**: a run interrupted
at boundary *k* and resumed via :func:`resume_training` yields the same
:class:`~repro.core.sweep.Measurement` payload (training statistics,
timeline, link utilization, fault report, telemetry attribution buckets)
as the same run left uninterrupted.  Kernel-level event *counts* (e.g.
``sim_events_processed_total``) are excluded: a resumed run pays a few
bootstrap events the uninterrupted run does not.

Pending :class:`~repro.faults.ProcessKill` specs are stripped on resume —
the kill models the interruption itself, not workload behaviour, so
replaying it would just kill the resumed run again.
"""

from __future__ import annotations

import dataclasses
import math
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.checkpoint.format import CheckpointError, read_checkpoint

__all__ = ["CheckpointPlan", "TrainCheckpoint", "resume_training"]


def _current_salt() -> str:
    from repro.runner.simpoint import SIM_SALT

    return SIM_SALT


def _current_version() -> str:
    import repro

    return repro.package_version()


@dataclass(frozen=True)
class CheckpointPlan:
    """When to capture training checkpoints.

    ``every=N`` captures at every Nth iteration boundary (0 disables the
    cadence); ``at=(j, k, ...)`` captures at exactly those boundaries (the
    prefix-memoization hook: one run yields resumable state at each
    smaller sweep point's final boundary); ``stop_at=k`` additionally
    captures at boundary ``k`` and then interrupts the job right there —
    the deterministic-interrupt hook the resume gate tests use.  ``path``
    keeps the latest checkpoint on disk in the
    :mod:`repro.checkpoint.format` container.
    """

    every: int = 1
    stop_at: int | None = None
    path: str | Path | None = None
    at: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", tuple(self.at))
        if self.every < 0:
            raise ValueError("every must be >= 0")
        if self.stop_at is not None and self.stop_at < 1:
            raise ValueError("stop_at must be >= 1")
        if any(b < 1 for b in self.at):
            raise ValueError("at boundaries must be >= 1")
        if self.every == 0 and self.stop_at is None and not self.at:
            raise ValueError(
                "plan captures nothing: set every, at or stop_at"
            )


@dataclass(frozen=True)
class TrainCheckpoint:
    """One captured training state plus the knobs that produced it."""

    #: ``measure_training`` keyword set (gpus, config, model, schedule, ...).
    spec: dict
    #: The trainer's state snapshot (see ``DistributedTrainer._snapshot_state``).
    state: dict
    package_version: str = field(default_factory=_current_version)
    #: Simulation-semantics salt at capture; resume refuses on mismatch.
    sim_salt: str = field(default_factory=_current_salt)

    @property
    def boundary(self) -> int:
        """Iteration boundary the checkpoint was captured at."""
        return self.state["barrier"]

    @property
    def sim_time_s(self) -> float:
        """Simulated clock at capture."""
        return self.state["clock"]

    def summary(self) -> dict:
        """Small JSON-able description for journals and reports."""
        return {
            "boundary": self.boundary,
            "sim_time_s": self.sim_time_s,
            "iterations": self.spec.get("iterations"),
            "gpus": self.spec.get("gpus"),
            "alive_ranks": len(self.state.get("alive", ())),
            "package_version": self.package_version,
            "sim_salt": self.sim_salt,
        }


def resume_training(checkpoint: "TrainCheckpoint | str | Path", *,
                    plan: "CheckpointPlan | None" = None,
                    allow_version_mismatch: bool = False):
    """Rebuild the simulation from ``checkpoint`` and run it to completion.

    ``checkpoint`` is a :class:`TrainCheckpoint` or a path to a file
    written by :func:`~repro.checkpoint.format.write_checkpoint`.
    Returns the completed run's :class:`~repro.core.sweep.Measurement`,
    bit-identical (stats, timeline, attribution) to the uninterrupted
    run of the same spec.

    ``plan`` optionally captures **new** checkpoints while the resumed
    run completes, exactly as ``measure_training(checkpoint=plan)``
    would; prefix memoization (:mod:`repro.runner.prefix`) uses this to
    extend a stored ladder prefix and bank the new boundaries in one
    pass.  Captured checkpoints land on ``Measurement.checkpoint`` /
    ``Measurement.checkpoints``.
    """
    from repro.cluster import Fabric, build_summit
    from repro.core.sweep import (
        GPUS_PER_NODE,
        Measurement,
        build_fault_report,
        model_profile,
    )
    from repro.faults import FaultInjector, FaultSchedule, ProcessKill
    from repro.horovod.runtime import HorovodRuntime
    from repro.horovod.timeline import Timeline
    from repro.mpi.communicator import Comm
    from repro.sim import Environment
    from repro.train import DistributedTrainer, TrainJob

    if isinstance(checkpoint, (str, Path)):
        checkpoint = read_checkpoint(checkpoint)
    if not isinstance(checkpoint, TrainCheckpoint):
        raise CheckpointError(
            f"not a training checkpoint: {type(checkpoint).__name__}"
        )
    if checkpoint.sim_salt != _current_salt() and not allow_version_mismatch:
        raise CheckpointError(
            f"checkpoint simulation salt {checkpoint.sim_salt!r} does not "
            f"match this code's {_current_salt()!r}; a resumed run would "
            "not be bit-identical (pass allow_version_mismatch=True to "
            "override)"
        )
    spec = dict(checkpoint.spec)
    state = checkpoint.state
    gpus = spec["gpus"]
    config = spec["config"]
    profile = model_profile(spec["model"], spec["per_gpu_batch"])

    # Rebuild the stack at the captured instant.  Construction order
    # mirrors measure_training (coordinator process first, injector
    # drivers next, rank processes last) so same-timestamp event
    # tie-breaking matches the uninterrupted run.
    env = Environment(initial_time=state["clock"])
    topo = build_summit(env, nodes=max(1, math.ceil(gpus / GPUS_PER_NODE)))
    comm = Comm(Fabric(topo), topo.gpus()[:gpus], config.library)
    comm.messages_sent = state["comm"]["messages_sent"]
    comm.transfer_retries = state["comm"]["transfer_retries"]
    comm.transfer_timeouts = state["comm"]["transfer_timeouts"]
    timeline = Timeline(events=list(state["timeline"]))
    runtime = HorovodRuntime(
        comm, config.horovod, timeline=timeline,
        negotiation=spec["negotiation"],
    )
    r = state["runtime"]
    runtime.stats = dataclasses.replace(r["stats"])
    runtime._response_cache = set(r["response_cache"])
    runtime.active = set(r["active"])
    runtime._removed = set(r["removed"])
    runtime._crash_reports = set(r["crash_reports"])
    runtime._suspects = {
        rank: dataclasses.replace(s) for rank, s in r["suspects"].items()
    }
    fabric = comm.fabric
    f = state["fabric"]
    fabric.stats = dataclasses.replace(
        f["stats"], bytes_by_link_type=dict(f["stats"].bytes_by_link_type)
    )
    for link, (carried, busy) in zip(topo.links(), f["links"]):
        link.bytes_carried = carried
        link.busy_seconds = busy

    probe = pickle.loads(state["probe"]) if state["probe"] is not None else None
    trace_blob = state.get("trace")
    tracer = pickle.loads(trace_blob) if trace_blob is not None else None
    job = TrainJob(
        iterations=spec["iterations"],
        per_gpu_batch=profile.batch_size,
        warmup_iterations=spec["warmup_iterations"],
        jitter_std=spec["jitter_std"],
        seed=spec["seed"],
    )
    schedule = spec.get("schedule")
    injector = None
    if schedule is not None:
        replayable = FaultSchedule.of(
            *[s for s in schedule if not isinstance(s, ProcessKill)]
        )
        injector = FaultInjector(env, replayable, topology=topo,
                                 timeline=timeline)
        if state["injector"] is not None:
            injector.stats = dataclasses.replace(state["injector"])
        trainer = DistributedTrainer(
            runtime, profile, job, faults=injector, probe=probe,
            resume_state=state, checkpoint=plan,
        )
        injector.bind(runtime=runtime, trainer=trainer)
        injector.start_resumed()
    else:
        trainer = DistributedTrainer(
            runtime, profile, job, probe=probe, resume_state=state,
            checkpoint=plan,
        )
    if probe is not None:
        probe.attach(env=env, comm=comm, runtime=runtime, trainer=trainer,
                     fabric=fabric)
        probe.registry.counter(
            "checkpoint_resumes_total", "runs resumed from a checkpoint"
        ).inc()
    if tracer is not None:
        tracer.attach(env=env, comm=comm, runtime=runtime, trainer=trainer,
                      fabric=fabric)
    stats = trainer.run()
    if probe is not None:
        probe.finalize()
    fault_report = None
    if injector is not None:
        fault_report = build_fault_report(
            injector, timeline, comm, runtime, trainer
        )
    new_checkpoint = None
    new_checkpoints = None
    if plan is not None and trainer.last_checkpoint_state is not None:
        from repro.checkpoint.format import write_checkpoint

        new_checkpoint = TrainCheckpoint(
            spec=dict(spec), state=trainer.last_checkpoint_state
        )
        if trainer.checkpoint_states:
            new_checkpoints = {
                boundary: TrainCheckpoint(spec=dict(spec), state=st)
                for boundary, st in sorted(trainer.checkpoint_states.items())
            }
        if plan.path is not None:
            write_checkpoint(plan.path, new_checkpoint)
    return Measurement(
        gpus=gpus,
        config=config,
        model=spec["model"],
        stats=stats,
        runtime_stats=runtime.stats,
        timeline=timeline,
        single_gpu_images_per_second=profile.images_per_second,
        link_utilization=fabric.utilization_report(),
        fault_report=fault_report,
        telemetry=probe,
        trace=tracer,
        checkpoint=new_checkpoint,
        checkpoints=new_checkpoints,
        fast_path=runtime.fast_path_report(),
        interrupted=trainer.job_killed,
    )
