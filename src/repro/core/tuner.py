"""The paper's staged tuning procedure, runnable end-to-end.

The methodological claim of the paper is that near-linear scaling is
reachable *without touching Horovod, MPI or the model* — by tuning, in
order: (1) the MPI library, (2) the fusion threshold, (3) the cycle time,
(4) hierarchical allreduce.  :class:`StagedTuner` executes exactly that
procedure against the simulated system, measuring each candidate with
:func:`~repro.core.sweep.measure_training` at a probe scale.

Candidates are compared primarily on throughput and secondarily on
serialized allreduce seconds — the tie-breaker matters because at probe
scales where communication still hides under backward, throughput alone
is flat while the exposed-communication risk (what bites at 132 GPUs)
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.core.knobs import KNOBS, SystemConfig, paper_default_config
from repro.core.sweep import Measurement, measure_training
from repro.mpi.libraries import MPI_LIBRARIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner import Runner

__all__ = ["StageResult", "StagedTuner", "TuneOutcome"]


@dataclass(frozen=True)
class StageResult:
    """One tuning stage: every candidate tried and the winner."""

    stage: str
    #: (candidate label, images/second, allreduce seconds) per candidate.
    candidates: tuple[tuple[str, float, float], ...]
    chosen: str

    def candidate(self, label: str) -> tuple[str, float, float]:
        """Look up one candidate row by label."""
        for row in self.candidates:
            if row[0] == label:
                return row
        raise KeyError(f"no candidate {label!r} in stage {self.stage!r}")


@dataclass
class TuneOutcome:
    """Everything the staged procedure produced."""

    best: SystemConfig
    stages: list[StageResult] = field(default_factory=list)
    measurements: int = 0

    def stage(self, name: str) -> StageResult:
        """Look up a stage by name."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(f"no stage {name!r}")

    def report(self) -> str:
        """Human-readable per-stage summary."""
        lines = [f"staged tuning: {self.measurements} measurements"]
        for s in self.stages:
            lines.append(f"stage {s.stage}: chose {s.chosen}")
            for label, ips, ar in s.candidates:
                marker = "*" if label == s.chosen else " "
                lines.append(
                    f"  {marker} {label:<28} {ips:>9.1f} img/s  "
                    f"allreduce {ar * 1e3:>8.1f} ms"
                )
        lines.append(f"tuned: {self.best.label}")
        return "\n".join(lines)


class StagedTuner:
    """Runs the paper's library → fusion → cycle → hierarchy procedure."""

    def __init__(self, probe_gpus: int = 48, iterations: int = 3,
                 model: str = "deeplab",
                 fusion_grid: Sequence[int] | None = None,
                 cycle_grid: Sequence[float] | None = None,
                 jitter_std: float = 0.0, seed: int = 0,
                 runner: "Runner | None" = None) -> None:
        if probe_gpus < 2:
            raise ValueError("probe_gpus must be >= 2")
        self.probe_gpus = probe_gpus
        self.iterations = iterations
        self.model = model
        self.fusion_grid = tuple(
            fusion_grid if fusion_grid is not None
            else KNOBS["fusion_threshold"].grid
        )
        self.cycle_grid = tuple(
            cycle_grid if cycle_grid is not None else KNOBS["cycle_time"].grid
        )
        self.jitter_std = jitter_std
        self.seed = seed
        self.runner = runner

    # -- machinery ---------------------------------------------------------
    def _measure_all(self, configs: Sequence[SystemConfig]) -> list[Measurement]:
        """Measure every candidate of a stage — via the runner if one was
        given (candidates within a stage are independent), serially
        otherwise."""
        if self.runner is not None:
            from repro.runner import TrainPoint

            return self.runner.run([
                TrainPoint(
                    gpus=self.probe_gpus,
                    config=cfg,
                    model=self.model,
                    iterations=self.iterations,
                    jitter_std=self.jitter_std,
                    seed=self.seed,
                )
                for cfg in configs
            ])
        return [
            measure_training(
                self.probe_gpus,
                cfg,
                model=self.model,
                iterations=self.iterations,
                jitter_std=self.jitter_std,
                seed=self.seed,
            )
            for cfg in configs
        ]

    #: Throughputs within this relative band count as tied.  At probe
    #: scales where communication still hides under backward, raw
    #: throughput is flat to <0.5%; real tuning (and this tuner) then
    #: discriminates on the timeline-derived exposure metrics instead.
    PLATEAU_RTOL = 0.005

    def _stage(self, name: str, outcome: TuneOutcome,
               candidates: list[tuple[str, SystemConfig]]) -> SystemConfig:
        measurements = self._measure_all([cfg for _, cfg in candidates])
        outcome.measurements += len(measurements)
        measured: list[tuple[str, SystemConfig, Measurement]] = [
            (label, cfg, m)
            for (label, cfg), m in zip(candidates, measurements)
        ]
        best_ips = max(m.images_per_second for _, _, m in measured)
        plateau = [
            row for row in measured
            if row[2].images_per_second >= best_ips * (1 - self.PLATEAU_RTOL)
        ]
        # Within the plateau, minimize the *exposure risk* J: realized
        # per-iteration stall (responsiveness tail) plus serialized
        # allreduce seconds per iteration (the backlog that stops hiding
        # under backward at scale).  Both are seconds on the same
        # iteration, so the sum is dimensionally meaningful.
        def exposure(m: Measurement) -> float:
            stall = max(
                0.0,
                m.stats.mean_iteration_seconds - m.stats.compute_iteration_seconds,
            )
            iters = len(m.stats.steady_iterations)
            return stall + m.runtime_stats.allreduce_seconds / max(1, iters)

        best_label, best_cfg, _ = min(plateau, key=lambda row: exposure(row[2]))
        outcome.stages.append(
            StageResult(
                name,
                tuple(
                    (label, m.images_per_second,
                     m.runtime_stats.allreduce_seconds)
                    for label, _, m in measured
                ),
                best_label,
            )
        )
        return best_cfg

    # -- the procedure -------------------------------------------------------
    def tune(self, base: SystemConfig | None = None) -> TuneOutcome:
        """Run all four stages and return the tuned configuration."""
        current = base if base is not None else paper_default_config()
        outcome = TuneOutcome(best=current)

        current = self._stage(
            "mpi_library",
            outcome,
            [
                (name, replace(current, library=lib))
                for name, lib in sorted(MPI_LIBRARIES.items())
            ],
        )
        current = self._stage(
            "fusion_threshold",
            outcome,
            [
                (
                    f"fusion={v // (1 << 20)}MiB" if v else "fusion=off",
                    replace(current, horovod=current.horovod.with_(
                        fusion_threshold_bytes=v)),
                )
                for v in self.fusion_grid
            ],
        )
        current = self._stage(
            "cycle_time",
            outcome,
            [
                (
                    f"cycle={v * 1e3:g}ms",
                    replace(current, horovod=current.horovod.with_(
                        cycle_time_s=v)),
                )
                for v in self.cycle_grid
            ],
        )
        current = self._stage(
            "hierarchical_allreduce",
            outcome,
            [
                (
                    f"hierarchical={'on' if v else 'off'}",
                    replace(current, horovod=current.horovod.with_(
                        hierarchical_allreduce=v)),
                )
                for v in KNOBS["hierarchical_allreduce"].grid
            ],
        )
        outcome.best = current
        return outcome
