"""The measurement driver: one call = one simulated training run.

:func:`measure_training` is the single entry point every benchmark,
example and the staged tuner uses.  It assembles the whole stack — Summit
slice of the requested size, MPI library, Horovod runtime, model profile,
trainer — runs a short measured job, and returns a
:class:`Measurement`.

Model iteration profiles are cached per (model, batch) because building
the DLv3+ layer graph is pure overhead across the hundreds of
measurements a sweep performs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster import Fabric, build_summit
from repro.core.knobs import SystemConfig
from repro.horovod.runtime import HorovodRuntime, RuntimeStats
from repro.horovod.timeline import Timeline
from repro.models import (
    ModelCost,
    build_deeplabv3plus,
    build_mobilenetv2,
    build_resnet50,
    build_resnet101,
)
from repro.models.costmodel import IterationProfile
from repro.mpi.communicator import Comm
from repro.sim import Environment
from repro.train import DistributedTrainer, TrainJob
from repro.train.stats import TrainStats

__all__ = [
    "Measurement",
    "build_fault_report",
    "clear_profile_cache",
    "measure_many",
    "measure_training",
    "model_profile",
]

#: Summit has 6 GPUs per node; GPU counts that are not multiples of 6
#: occupy the last node partially (as real jobs do).
GPUS_PER_NODE = 6

_PROFILE_CACHE: dict[tuple[str, int], IterationProfile] = {}

#: Model registry for the sweep driver: name -> (builder, default batch).
MODEL_BUILDERS = {
    "deeplab": (build_deeplabv3plus, 8),
    "resnet50": (build_resnet50, 128),
    "resnet101": (build_resnet101, 96),
    "mobilenetv2": (build_mobilenetv2, 192),
}


def model_profile(model: str, per_gpu_batch: int | None = None) -> IterationProfile:
    """The cached V100 iteration profile for a registry model."""
    if model not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {model!r}; available: {sorted(MODEL_BUILDERS)}")
    builder, default_batch = MODEL_BUILDERS[model]
    batch = per_gpu_batch if per_gpu_batch is not None else default_batch
    key = (model, batch)
    if key not in _PROFILE_CACHE:
        _PROFILE_CACHE[key] = ModelCost(builder()).profile(batch)
    return _PROFILE_CACHE[key]


def clear_profile_cache() -> None:
    """Drop cached profiles (tests that tweak cost constants need this)."""
    _PROFILE_CACHE.clear()


@dataclass(frozen=True)
class Measurement:
    """Outcome of one simulated training run."""

    gpus: int
    config: SystemConfig
    model: str
    stats: TrainStats
    runtime_stats: RuntimeStats
    timeline: Timeline
    #: Compute-only single-GPU throughput (the ideal-scaling baseline).
    single_gpu_images_per_second: float
    #: Per-link-type fabric utilization over the run (where time went).
    link_utilization: dict = None
    #: Resilience counters, present when a fault schedule was injected.
    fault_report: dict | None = None
    #: :class:`~repro.telemetry.TelemetryProbe` attached to the run, when
    #: measured with ``telemetry=True`` (feeds the attribution engine).
    telemetry: object = None
    #: :class:`~repro.trace.SpanRecorder` attached to the run, when
    #: measured with ``trace=`` (feeds the critical-path engine).
    trace: object = None
    #: :class:`~repro.checkpoint.TrainCheckpoint` captured at the last
    #: plan boundary, when measured with ``checkpoint=``.
    checkpoint: object = None
    #: ``{boundary: TrainCheckpoint}`` for the plan's explicit ``at``
    #: boundaries — the handles :mod:`repro.runner.prefix` resumes from.
    checkpoints: dict | None = None
    #: Simulator fast-path counters (fast/fallback/events_elided) for
    #: this run's fabric traffic.  Diagnostics only: the split depends
    #: on which execution path ran, so it is excluded from every
    #: compared payload — both paths yield bit-identical results.
    fast_path: dict | None = None
    #: True when the run was killed before completing (``ProcessKill`` /
    #: ``CheckpointPlan.stop_at``) — the stats above are partial.
    interrupted: bool = False

    @property
    def images_per_second(self) -> float:
        """Measured steady-state aggregate throughput."""
        return self.stats.images_per_second

    @property
    def scaling_efficiency(self) -> float:
        """Throughput / (GPUs × single-GPU compute throughput)."""
        return self.images_per_second / (
            self.gpus * self.single_gpu_images_per_second
        )

    @property
    def label(self) -> str:
        """Config label for tables."""
        return self.config.label


def build_fault_report(injector, timeline, comm, runtime, trainer) -> dict:
    """Assemble the resilience counters dict for a faulted run.

    Shared between :func:`measure_training` and
    :func:`repro.checkpoint.resume_training` so both produce the same
    payload shape (a resumed run must compare equal to an uninterrupted
    one field for field).
    """
    totals = timeline.total_by_phase()
    return {
        "faults_applied": injector.stats.applied,
        "faults_reverted": injector.stats.reverted,
        "flap_cycles": injector.stats.flap_cycles,
        "crashes": injector.stats.crashes,
        "restarts": injector.stats.restarts,
        "job_kills": getattr(injector.stats, "kills", 0),
        "transfer_retries": comm.transfer_retries,
        "transfer_timeouts": comm.transfer_timeouts,
        "suspects": runtime.stats.suspects,
        "suspects_cleared": runtime.stats.suspects_cleared,
        "rank_crashes": runtime.stats.rank_crashes,
        "rank_restarts": runtime.stats.rank_restarts,
        "suspect_seconds": runtime.stats.suspect_seconds,
        "fault_phase_seconds": {
            phase: totals.get(phase, 0.0)
            for phase in ("FAULT", "SUSPECT", "RECOVER")
        },
        "surviving_ranks": len(runtime.active),
        "completed_iterations": dict(trainer.completed_iterations),
    }


def measure_training(
    gpus: int,
    config: SystemConfig,
    model: str = "deeplab",
    per_gpu_batch: int | None = None,
    iterations: int = 4,
    warmup_iterations: int = 1,
    jitter_std: float = 0.03,
    seed: int = 0,
    negotiation: str = "analytic",
    fault=None,
    schedule=None,
    telemetry=None,
    checkpoint=None,
    trace=None,
) -> Measurement:
    """Simulate a measured training job and return its statistics.

    Builds a fresh Summit slice with ``ceil(gpus / 6)`` nodes, runs
    ``iterations`` synchronous data-parallel steps of ``model`` under the
    given :class:`~repro.core.knobs.SystemConfig`, and reports throughput
    against the calibrated single-GPU compute baseline.

    ``fault`` is an optional fault-injection hook ``fault(topology)``
    applied after the cluster is built (e.g. degrade a rail with
    :meth:`~repro.cluster.topology.Topology.degrade_link`).

    ``schedule`` is an optional :class:`~repro.faults.FaultSchedule`; a
    :class:`~repro.faults.FaultInjector` is wired across topology,
    runtime and trainer, and the Measurement gains a ``fault_report``.

    ``telemetry`` attaches observability: ``True`` builds a fresh
    :class:`~repro.telemetry.TelemetryProbe`, or pass an existing probe.
    The probe is threaded through every layer (observation-only — the
    simulated timings are unchanged) and returned on
    ``Measurement.telemetry``, ready for
    :func:`~repro.telemetry.attribute_measurement`.

    ``checkpoint`` captures resumable state at iteration boundaries: an
    int is shorthand for ``CheckpointPlan(every=n)``, or pass a full
    :class:`~repro.checkpoint.CheckpointPlan` (``stop_at`` interrupts the
    run at that boundary; ``path`` persists the latest capture to disk).
    The captured :class:`~repro.checkpoint.TrainCheckpoint` is returned
    on ``Measurement.checkpoint``, ready for
    :func:`~repro.checkpoint.resume_training`.

    ``trace`` attaches span tracing: ``"spans"`` (or ``True``) records the
    hierarchical span tree down to per-rank algorithm steps, ``"links"``
    additionally records per-link transfer spans; an existing
    :class:`~repro.trace.SpanRecorder` is also accepted.  Like the probe,
    tracing is observation-only — simulated timings are bit-identical —
    and the recorder is returned on ``Measurement.trace``, ready for
    :func:`~repro.trace.compute_critical_path`.
    """
    if gpus < 1:
        raise ValueError(f"gpus must be >= 1, got {gpus}")
    plan = None
    if checkpoint is not None:
        from repro.checkpoint import CheckpointPlan

        plan = (
            checkpoint
            if isinstance(checkpoint, CheckpointPlan)
            else CheckpointPlan(every=int(checkpoint))
        )
        if fault is not None:
            raise ValueError(
                "checkpoint= cannot be combined with the fault= callable "
                "(its topology mutation has no resumable representation); "
                "use a FaultSchedule instead"
            )
    profile = model_profile(model, per_gpu_batch)
    env = Environment()
    nodes = max(1, math.ceil(gpus / GPUS_PER_NODE))
    topo = build_summit(env, nodes=nodes)
    if fault is not None:
        fault(topo)
    comm = Comm(Fabric(topo), topo.gpus()[:gpus], config.library)
    timeline = Timeline()
    runtime = HorovodRuntime(
        comm, config.horovod, timeline=timeline, negotiation=negotiation
    )
    job = TrainJob(
        iterations=iterations,
        per_gpu_batch=profile.batch_size,
        warmup_iterations=warmup_iterations,
        jitter_std=jitter_std,
        seed=seed,
    )
    fabric = comm.fabric
    probe = None
    if telemetry:
        from repro.telemetry import TelemetryProbe

        probe = telemetry if isinstance(telemetry, TelemetryProbe) else TelemetryProbe()
    injector = None
    if schedule is not None:
        from repro.faults import FaultInjector

        injector = FaultInjector(env, schedule, topology=topo, timeline=timeline)
        trainer = DistributedTrainer(
            runtime, profile, job, faults=injector, probe=probe, checkpoint=plan
        )
        injector.bind(runtime=runtime, trainer=trainer).start()
    else:
        trainer = DistributedTrainer(
            runtime, profile, job, probe=probe, checkpoint=plan
        )
    if probe is not None:
        probe.attach(
            env=env, comm=comm, runtime=runtime, trainer=trainer, fabric=fabric
        )
    tracer = None
    if trace:
        from repro.trace import SpanRecorder

        tracer = (trace if isinstance(trace, SpanRecorder)
                  else SpanRecorder(level="spans" if trace is True else trace))
        tracer.attach(
            env=env, comm=comm, runtime=runtime, trainer=trainer, fabric=fabric
        )
    stats = trainer.run()
    if probe is not None:
        probe.finalize()
    fault_report = None
    if injector is not None:
        fault_report = build_fault_report(
            injector, timeline, comm, runtime, trainer
        )
    train_checkpoint = None
    train_checkpoints = None
    if plan is not None and trainer.last_checkpoint_state is not None:
        from repro.checkpoint import TrainCheckpoint, write_checkpoint

        spec = {
            "gpus": gpus,
            "config": config,
            "model": model,
            "per_gpu_batch": per_gpu_batch,
            "iterations": iterations,
            "warmup_iterations": warmup_iterations,
            "jitter_std": jitter_std,
            "seed": seed,
            "negotiation": negotiation,
            "schedule": schedule,
            "trace": tracer.level if tracer is not None else None,
        }
        train_checkpoint = TrainCheckpoint(
            spec=spec, state=trainer.last_checkpoint_state
        )
        if trainer.checkpoint_states:
            train_checkpoints = {
                boundary: TrainCheckpoint(spec=spec, state=state)
                for boundary, state in sorted(trainer.checkpoint_states.items())
            }
        if plan.path is not None:
            write_checkpoint(plan.path, train_checkpoint)
    return Measurement(
        gpus=gpus,
        config=config,
        model=model,
        stats=stats,
        runtime_stats=runtime.stats,
        timeline=timeline,
        single_gpu_images_per_second=profile.images_per_second,
        link_utilization=fabric.utilization_report(),
        fault_report=fault_report,
        telemetry=probe,
        trace=tracer,
        checkpoint=train_checkpoint,
        checkpoints=train_checkpoints,
        fast_path=runtime.fast_path_report(),
        interrupted=trainer.job_killed,
    )


def measure_many(calls, runner=None) -> list[Measurement]:
    """Batch form of :func:`measure_training` for independent points.

    ``calls`` is a sequence of keyword dicts, each a valid argument set
    for :func:`measure_training` (``gpus`` and ``config`` required; the
    ``fault`` callable is not supported — it has no canonical cacheable
    form).  Results come back in input order.  With ``runner=None`` an
    inline serial :class:`~repro.runner.Runner` is used, which replicates
    calling :func:`measure_training` in a loop exactly; pass a configured
    runner to fan the batch across worker processes and/or the result
    cache.
    """
    from repro.runner import Runner, TrainPoint

    points = [TrainPoint(**kwargs) for kwargs in calls]
    return (runner if runner is not None else Runner()).run(points)
