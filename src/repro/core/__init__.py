"""The paper's contribution: Horovod/MPI tuning without code changes.

The paper's method is *staged manual tuning* of runtime knobs — no
modification to Horovod, MPI, or the model:

1. **MPI library** — swap IBM Spectrum MPI for MVAPICH2-GDR (GPUDirect
   RDMA, GPU-tuned collectives);
2. **tensor fusion threshold** — sweep ``HOROVOD_FUSION_THRESHOLD``;
3. **cycle time** — sweep ``HOROVOD_CYCLE_TIME``;
4. **hierarchical allreduce** — toggle ``HOROVOD_HIERARCHICAL_ALLREDUCE``.

This package packages that methodology over the simulated system:

* :func:`~repro.core.sweep.measure_training` — the one entry point that
  builds a Summit slice, an MPI library, a Horovod runtime and a trainer,
  runs a measured job, and returns a :class:`~repro.core.sweep.Measurement`;
* :class:`~repro.core.tuner.StagedTuner` — the staged procedure itself;
* :mod:`~repro.core.knobs` — the knob registry and the paper's
  default/tuned configurations;
* :mod:`~repro.core.efficiency` — scaling curves, efficiency and speedup
  math, and the table formatting the benchmarks print.
"""

from repro.core.efficiency import ScalingCurve, ScalingPoint
from repro.core.knobs import (
    KNOBS,
    Knob,
    SystemConfig,
    paper_default_config,
    paper_tuned_config,
)
from repro.core.sweep import (
    Measurement,
    clear_profile_cache,
    measure_many,
    measure_training,
)
from repro.core.tuner import StagedTuner, StageResult, TuneOutcome

__all__ = [
    "KNOBS",
    "Knob",
    "Measurement",
    "ScalingCurve",
    "ScalingPoint",
    "StageResult",
    "StagedTuner",
    "SystemConfig",
    "TuneOutcome",
    "clear_profile_cache",
    "measure_many",
    "measure_training",
    "paper_default_config",
    "paper_tuned_config",
]
