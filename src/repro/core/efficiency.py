"""Scaling curves and the paper's efficiency metrics.

A :class:`ScalingCurve` is one line of the paper's headline figure: a
named configuration measured over a list of GPU counts.  It computes the
metrics the paper reports — aggregate images/second, speedup over one
GPU, and scaling efficiency (measured / ideal-linear) — and formats the
comparison tables the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sweep import Measurement

__all__ = ["ScalingCurve", "ScalingPoint"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (GPU count, measurement) point of a scaling curve."""

    gpus: int
    images_per_second: float
    efficiency: float
    mean_iteration_seconds: float

    @staticmethod
    def from_measurement(m: Measurement) -> "ScalingPoint":
        """Project a full :class:`Measurement` onto the reported metrics."""
        return ScalingPoint(
            gpus=m.gpus,
            images_per_second=m.images_per_second,
            efficiency=m.scaling_efficiency,
            mean_iteration_seconds=m.stats.mean_iteration_seconds,
        )


@dataclass
class ScalingCurve:
    """A named configuration measured across GPU counts."""

    name: str
    points: list[ScalingPoint] = field(default_factory=list)

    def add(self, point: ScalingPoint) -> None:
        """Append a point; GPU counts must be strictly increasing."""
        if self.points and point.gpus <= self.points[-1].gpus:
            raise ValueError("points must be added in increasing GPU order")
        self.points.append(point)

    def point(self, gpus: int) -> ScalingPoint:
        """The point at exactly ``gpus`` (KeyError if absent)."""
        for p in self.points:
            if p.gpus == gpus:
                return p
        raise KeyError(f"no point at {gpus} GPUs in curve {self.name!r}")

    @property
    def gpu_counts(self) -> list[int]:
        """The x-axis of the curve."""
        return [p.gpus for p in self.points]

    def speedup(self, gpus: int) -> float:
        """Throughput at ``gpus`` over the curve's smallest point,
        normalized per GPU of that smallest point."""
        base = self.points[0]
        return self.point(gpus).images_per_second / (
            base.images_per_second / base.gpus
        )

    def table(self) -> str:
        """Fixed-width per-point table (GPUs, img/s, efficiency, iter ms)."""
        lines = [
            f"-- {self.name} --",
            f"{'GPUs':>5} {'img/s':>10} {'efficiency':>11} {'iter(ms)':>10}",
        ]
        for p in self.points:
            lines.append(
                f"{p.gpus:>5} {p.images_per_second:>10.1f} "
                f"{p.efficiency * 100:>10.1f}% {p.mean_iteration_seconds * 1e3:>10.1f}"
            )
        return "\n".join(lines)

    @staticmethod
    def comparison_table(curves: list["ScalingCurve"]) -> str:
        """Side-by-side efficiency table plus speedup-of-last-over-first.

        All curves must share the same GPU counts.  This is the layout of
        the paper's headline comparison (default vs tuned).
        """
        if not curves:
            raise ValueError("need at least one curve")
        counts = curves[0].gpu_counts
        for c in curves[1:]:
            if c.gpu_counts != counts:
                raise ValueError("curves cover different GPU counts")
        header = f"{'GPUs':>5}"
        for c in curves:
            header += f" {c.name + ' img/s':>22} {'eff':>7}"
        if len(curves) >= 2:
            header += f" {'speedup':>8}"
        lines = [header]
        for gpus in counts:
            row = f"{gpus:>5}"
            for c in curves:
                p = c.point(gpus)
                row += f" {p.images_per_second:>22.1f} {p.efficiency * 100:>6.1f}%"
            if len(curves) >= 2:
                ratio = (
                    curves[-1].point(gpus).images_per_second
                    / curves[0].point(gpus).images_per_second
                )
                row += f" {ratio:>7.2f}x"
            lines.append(row)
        return "\n".join(lines)
