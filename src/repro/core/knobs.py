"""Knob registry and the paper's default / tuned system configurations.

A :class:`SystemConfig` is everything that defines one training setup the
paper compares: the MPI library plus the Horovod knob settings.  The two
named configurations are

* :func:`paper_default_config` — out-of-the-box Horovod on Summit's
  default Spectrum MPI (the paper's baseline);
* :func:`paper_tuned_config` — the configuration the paper's staged
  tuning arrives at: MVAPICH2-GDR, 128 MiB fusion, 2.5 ms cycle,
  hierarchical allreduce.

:data:`KNOBS` documents each tunable with its env-var spelling and the
grid practitioners sweep — the benchmarks and the staged tuner draw their
candidate values from here so every table in the reproduction sweeps the
same space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.horovod.config import HorovodConfig
from repro.mpi.libraries import MPI_LIBRARIES, MVAPICH2_GDR, SPECTRUM_MPI, MPILibrary
from repro.sim.units import MiB

__all__ = [
    "KNOBS",
    "Knob",
    "SystemConfig",
    "paper_default_config",
    "paper_tuned_config",
]


@dataclass(frozen=True)
class Knob:
    """One tunable with its environment-variable spelling and sweep grid."""

    name: str
    env_var: str
    description: str
    grid: tuple = ()

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError(f"knob {self.name!r} needs a non-empty grid")


#: The tuning surface, in the order the paper's staged procedure visits it.
KNOBS: dict[str, Knob] = {
    "mpi_library": Knob(
        "mpi_library",
        "—(module load)",
        "MPI implementation and its GPU-buffer data path",
        grid=tuple(MPI_LIBRARIES),
    ),
    "fusion_threshold": Knob(
        "fusion_threshold",
        "HOROVOD_FUSION_THRESHOLD",
        "max bytes packed into one fused allreduce",
        grid=(0, 1 * MiB, 8 * MiB, 32 * MiB, 64 * MiB, 128 * MiB, 256 * MiB),
    ),
    "cycle_time": Knob(
        "cycle_time",
        "HOROVOD_CYCLE_TIME",
        "negotiation tick period (seconds)",
        grid=(0.5e-3, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3),
    ),
    "hierarchical_allreduce": Knob(
        "hierarchical_allreduce",
        "HOROVOD_HIERARCHICAL_ALLREDUCE",
        "two-level node-leader allreduce",
        grid=(False, True),
    ),
}


@dataclass(frozen=True)
class SystemConfig:
    """One complete setup: MPI library + Horovod knobs."""

    library: MPILibrary
    horovod: HorovodConfig = field(default_factory=HorovodConfig.default)

    @property
    def label(self) -> str:
        """Short display name, e.g. ``"MVAPICH2-GDR | fusion=128MiB ..."``."""
        return f"{self.library.name} | {self.horovod.describe()}"


def paper_default_config() -> SystemConfig:
    """The baseline: default Horovod knobs on Spectrum MPI."""
    return SystemConfig(library=SPECTRUM_MPI, horovod=HorovodConfig.default())


def paper_tuned_config() -> SystemConfig:
    """The paper's end state after staged tuning.

    MVAPICH2-GDR with GPUDirect RDMA; fusion raised to 128 MiB (fewer,
    larger collectives); cycle tightened to 2.5 ms (earlier launch of
    ready groups); hierarchical allreduce on (6× smaller inter-node
    communicator).  Experiment E10 checks the staged tuner re-derives an
    equivalent configuration from scratch.
    """
    return SystemConfig(
        library=MVAPICH2_GDR,
        horovod=HorovodConfig.default().with_(
            fusion_threshold_bytes=128 * MiB,
            cycle_time_s=2.5e-3,
            hierarchical_allreduce=True,
        ),
    )
