"""Command-line entry point: run reproduction experiments by id.

Usage::

    python -m repro list                  # show the experiment index
    python -m repro run E1 E2 E7          # run selected experiments
    python -m repro run E6 --quick        # scaled-down, faster variants
    python -m repro run all --parallel    # fan sweeps across worker processes
    python -m repro run all --resume      # finish an interrupted sweep
    python -m repro cache stats           # inspect the result cache
    python -m repro measure --gpus 48 --config tuned
    python -m repro serve --port 8765     # simulation-as-a-service API
    python -m repro submit E6 --wait      # queue a job on a server
    python -m repro jobs ls               # inspect the job queue
    python -m repro run E6 --backend fabric   # sweep via pulled workers
    python -m repro worker --url URL      # join a fabric as a worker
    python -m repro fabric status --url URL   # inspect a fabric queue

Results are printed as tables and saved under ``bench_results/``;
``run --parallel`` executes sweep-shaped experiments through
:mod:`repro.runner` (process pool + content-addressed result cache).

Exit codes follow one convention across every subcommand: 0 = ok,
1 = domain failure (an experiment/job/server-side error), 2 = usage
error (bad arguments, unknown ids, unreadable inputs).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench.harness import save_result
from repro.bench.registry import REGISTRY, legacy_table
from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)

#: Legacy tuple view (description, fn, full kwargs, quick kwargs), kept
#: for external callers; :mod:`repro.bench.registry` is the source of truth.
EXPERIMENTS = legacy_table()

#: Shared exit codes (the convention ``repro bench compare`` set).
EXIT_OK, EXIT_FAILURE, EXIT_USAGE = 0, 1, 2


def fail(message: str, *, usage: bool = False) -> int:
    """The single error envelope every subcommand reports through.

    Prints ``error: <message>`` to stderr and returns the conventional
    exit code: 2 for usage errors (bad arguments, unknown ids), 1 for
    domain failures (an experiment or request that legitimately
    failed).
    """
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE if usage else EXIT_FAILURE


def package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    from repro import package_version as _pv

    return _pv()


def cmd_list() -> int:
    """Print the experiment index."""
    print(f"{'id':<5} {'par':<4} description")
    for spec in REGISTRY.values():
        par = "yes" if spec.parallelizable else "-"
        print(f"{spec.id:<5} {par:<4} {spec.title}")
    return 0


def _build_runner(parallel: bool, workers: int, no_cache: bool,
                  retries: int = 0, trace_dir: str | None = None,
                  backend: str = "local"):
    """Execution backend for ``run`` (None = plain serial execution).

    ``--backend fabric`` builds a :class:`~repro.fabric.FabricRunner`:
    a local coordinator plus ``repro worker`` subprocesses pulling
    points over the lease protocol.  Otherwise ``--parallel`` (or
    ``--trace-dir`` alone — trace capture rides on the runner's
    resolution pass) builds the inline process-pool
    :class:`~repro.runner.Runner`.
    """
    from repro.runner import ResultCache

    if backend == "fabric":
        from repro.fabric import FabricRunner

        runner = FabricRunner(workers=workers or 2,
                              cache=None if no_cache else ResultCache(),
                              retries=retries)
        url = runner.start()
        print(f"[fabric coordinator on {url} — {runner.workers} "
              f"worker(s); extra workers: repro worker --url {url}]")
        return runner
    if not parallel and trace_dir is None:
        return None
    import os

    from repro.runner import Runner

    workers = (workers or (os.cpu_count() or 1)) if parallel else 0
    return Runner(workers=workers,
                  cache=None if no_cache else ResultCache(),
                  retries=retries, trace_dir=trace_dir)


def cmd_run(ids: list[str], quick: bool, parallel: bool = False,
            workers: int = 0, no_cache: bool = False, resume: bool = False,
            journal_path: str | None = None, retries: int = 1,
            trace_dir: str | None = None, fast: bool | None = None,
            backend: str = "local") -> int:
    """Run the selected experiments, journaling each for ``--resume``."""
    from repro.runner import RunJournal

    if backend == "fabric" and trace_dir is not None:
        return fail("--trace-dir requires the local backend", usage=True)

    if fast is not None:
        from repro.sim import fastpath

        fastpath.set_fast_path(fast)
        # Worker processes re-read the environment at import, so the
        # flag survives both fork and spawn start methods.
        os.environ[fastpath.ENV_VAR] = "1" if fast else "0"
    if ids == ["all"]:
        ids = list(REGISTRY)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        return fail(f"unknown experiment ids: {unknown}; "
                    f"try `python -m repro list`", usage=True)
    variant = "quick" if quick else "full"
    journal = RunJournal(journal_path)
    if resume:
        completed = journal.completed(variant)
        skipped = [i for i in ids if i in completed]
        ids = [i for i in ids if i not in completed]
        if skipped:
            print(f"[resume: skipping {len(skipped)} already-completed "
                  f"experiment(s): {' '.join(skipped)}]")
        if not ids:
            print("[resume: nothing left to run]")
            return 0
        journal.append("sweep_resume", experiments=ids, variant=variant)
    else:
        journal.append("sweep_start", experiments=ids, variant=variant)
    runner = _build_runner(parallel, workers, no_cache, retries=retries,
                           trace_dir=trace_dir, backend=backend)
    failures = []
    try:
        for exp_id in ids:
            spec = REGISTRY[exp_id]
            journal.append("experiment_start", experiment=exp_id,
                           variant=variant)
            before = runner.stats.as_dict() if runner is not None else None
            start = time.time()
            try:
                result = spec.run(quick=quick, runner=runner)
            except KeyboardInterrupt:
                raise
            except Exception as err:
                journal.append("experiment_failed", experiment=exp_id,
                               variant=variant, error=repr(err))
                failures.append(exp_id)
                print(f"[{exp_id} failed: {err!r}; continuing]",
                      file=sys.stderr)
                continue
            elapsed = time.time() - start
            result.meta = {"variant": variant}
            if runner is not None and spec.parallelizable:
                delta = runner.stats.delta(before)
                result.meta["runner"] = dict(runner.meta(), **delta)
            print(result.table())
            path = save_result(result)
            journal.append("experiment_done", experiment=exp_id,
                           variant=variant, elapsed_s=round(elapsed, 3),
                           path=str(path))
            line = f"[{exp_id}: {elapsed:.1f}s, saved {path}]"
            run_meta = result.meta.get("runner")
            if run_meta:
                line += (f" [runner: {run_meta['workers']} workers, "
                         f"{run_meta['cache_hits']} hits / "
                         f"{run_meta['cache_misses']} misses]")
            if trace_dir is not None:
                captured = (runner.stats.as_dict()["traces_captured"]
                            - before["traces_captured"]) if before else 0
                state = (f"{captured} trace file(s) -> {trace_dir}"
                         if captured else "no traced points")
                print(f"[{exp_id} trace capture: {state}]")
            print(line + "\n")
    except KeyboardInterrupt:
        journal.append("sweep_interrupted", variant=variant)
        print(f"\n[interrupted — journal saved to {journal.path}; "
              f"rerun with --resume to finish the remaining experiments]",
              file=sys.stderr)
        return 130
    finally:
        close = getattr(runner, "close", None)
        if close is not None:
            close()
    journal.append("sweep_done", variant=variant, failed=failures)
    if runner is not None and runner.cache is not None:
        s = runner.cache.stats
        print(f"[cache: {s.hits} hits, {s.misses} misses, "
              f"{runner.cache.snapshot()['entries']} entries on disk]")
    if failures:
        print(f"[{len(failures)} experiment(s) failed: {' '.join(failures)}]",
              file=sys.stderr)
        return 1
    return 0


def cmd_cache(action: str, directory: str | None, as_json: bool) -> int:
    """``repro cache stats`` / ``repro cache clear``."""
    from repro.runner import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(directory=directory or DEFAULT_CACHE_DIR)
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.directory}")
        return 0
    snap = cache.snapshot()
    if as_json:
        import json

        print(json.dumps(snap, indent=1))
        return 0
    print(f"cache directory : {snap['directory']}")
    print(f"entries         : {snap['entries']}")
    print(f"total bytes     : {snap['total_bytes']}")
    print(f"max bytes       : {snap['max_bytes']}")
    print(f"hits / misses   : {snap['hits']} / {snap['misses']}")
    print(f"hit ratio       : {snap['hit_ratio']:.3f}")
    print(f"salt            : {snap['salt']}")
    return 0


def cmd_journal_compact(journal_path: str | None) -> int:
    """``repro journal compact``: drop superseded run-journal entries."""
    from repro.runner import RunJournal
    from repro.runner.journal import compact_run_journal

    journal = RunJournal(journal_path)
    if not journal.path.exists():
        return fail(f"no journal at {journal.path}", usage=True)
    before, after = compact_run_journal(journal)
    print(f"compacted {journal.path}: {before} -> {after} record(s)")
    return 0


def _service_client(url: str, token: str | None):
    from repro.service import ServiceClient

    return ServiceClient(url=url, token=token)


def cmd_serve(host: str, port: int, state_dir: str, tokens: str | None,
              workers: int, lease_s: float,
              max_queue_depth: int = 128, backend: str = "local",
              fabric_workers: int = 2, obs_dir: str | None = None) -> int:
    """``repro serve``: run the blocking simulation-service HTTP server."""
    from pathlib import Path

    from repro.obs import configure as configure_obs
    from repro.service import Service, ServiceConfig, serve

    try:
        config = ServiceConfig(
            host=host, port=port, state_dir=Path(state_dir),
            tokens_path=Path(tokens) if tokens else None,
            workers=workers, lease_s=lease_s,
            max_queue_depth=max_queue_depth, backend=backend,
            fabric_workers=fabric_workers)
        # Structured events on by default, next to the queue journal;
        # configure() also exports REPRO_OBS_DIR so fabric worker
        # subprocesses log into the same directory (REPRO_OBS=0 is the
        # kill switch).
        emitter = configure_obs(Path(obs_dir) if obs_dir
                                else config.obs_dir)
        service = Service(config)
    except ValueError as err:
        return fail(str(err), usage=True)
    recovered = service.start()
    for job in recovered:
        print(f"[recovered job {job.id}: now {job.state}]")

    def ready(bound_host: str, bound_port: int) -> None:
        auth = "bearer-token" if service.auth.enabled else "open"
        obs = emitter.directory if emitter.enabled else "off"
        print(f"[repro service listening on http://{bound_host}:{bound_port} "
              f"— state {config.state_dir}, {workers} worker(s), "
              f"backend={backend}, auth={auth}, obs={obs}]", flush=True)

    try:
        serve(service, ready=ready)
    except KeyboardInterrupt:
        print("\n[shutting down]", file=sys.stderr)
    except OSError as err:
        service.stop(drain=True)
        return fail(f"cannot bind {host}:{port}: {err}")
    service.stop(drain=True)
    return 0


def _print_follow_line(doc: dict) -> None:
    """One progress line per followed job update."""
    progress = doc.get("progress") or {}
    if progress.get("total"):
        cached = progress.get("cached", 0)
        extra = f" ({cached} cached)" if cached else ""
        print(f"[job {doc['id']}: {doc['state']} "
              f"{progress.get('done', 0)}/{progress['total']}{extra}]",
              flush=True)
    else:
        print(f"[job {doc['id']}: {doc['state']}]", flush=True)


def cmd_submit(target: str, variant: str, priority: int, url: str,
               token: str | None, wait: bool, timeout: float,
               busy_retries: int = 2, follow: bool = False) -> int:
    """``repro submit``: queue an experiment id or a points JSON file."""
    import json
    from pathlib import Path

    from repro.service import ApiError, TransportError

    client = _service_client(url, token)
    points = None
    experiment = None
    if target in REGISTRY:
        experiment = target
    else:
        path = Path(target)
        if not path.exists():
            return fail(f"{target!r} is neither an experiment id (known: "
                        f"{', '.join(REGISTRY)}) nor a points JSON file",
                        usage=True)
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            return fail(f"cannot read points file {path}: {err}", usage=True)
        points = loaded.get("points") if isinstance(loaded, dict) else loaded
        if not isinstance(points, list) or not points:
            return fail(f"{path} must hold a JSON list of points or "
                        f"{{\"points\": [...]}}", usage=True)
    try:
        job = client.submit(experiment=experiment, variant=variant,
                            points=points, priority=priority,
                            busy_retries=busy_retries)
    except ApiError as err:
        return fail(str(err), usage=err.status in (400, 404))
    except TransportError as err:
        return fail(str(err))
    print(f"[submitted job {job['id']} "
          f"(tenant={job['tenant']}, priority={job['priority']})]")
    if not (wait or follow):
        return 0
    try:
        if follow:
            for doc in client.follow(job["id"], timeout_s=timeout):
                job = doc
                _print_follow_line(doc)
            if job["state"] not in ("DONE", "FAILED", "QUARANTINED",
                                    "CANCELLED"):
                job = client.job(job["id"])
        else:
            job = client.wait(job["id"], timeout_s=timeout)
    except TimeoutError as err:
        return fail(str(err))
    except TransportError as err:
        return fail(f"lost connection to {url}: {err}")
    print(f"[job {job['id']}: {job['state']} "
          f"in {job.get('elapsed_s') or 0.0:.3f}s]")
    if job["state"] != "DONE":
        return fail(f"job finished {job['state']}: {job.get('error')}")
    runner = job.get("runner") or {}
    if runner:
        print(f"[runner: {runner.get('cache_hits', 0)} hits / "
              f"{runner.get('cache_misses', 0)} misses, "
              f"{runner.get('executed', 0)} executed]")
    return 0


def cmd_jobs(action: str, job_id: str | None, url: str, token: str | None,
             state: str | None, out: str | None) -> int:
    """``repro jobs ls|show|result|cancel``: inspect the remote queue."""
    import json

    from repro.service import ApiError, TransportError

    client = _service_client(url, token)
    try:
        if action == "ls":
            jobs = client.jobs(state=state)
            print(f"{'id':<16} {'state':<11} {'tenant':<10} "
                  f"{'prio':>4} {'elapsed_s':>9}  spec")
            for job in jobs:
                spec = job["spec"]
                label = (f"{spec['experiment']}/{spec['variant']}"
                         if "experiment" in spec
                         else f"{len(spec['points'])} point(s)")
                elapsed = job.get("elapsed_s")
                print(f"{job['id']:<16} {job['state']:<11} "
                      f"{job['tenant']:<10} {job['priority']:>4} "
                      f"{elapsed if elapsed is not None else '—':>9}  "
                      f"{label}")
            return 0
        if job_id is None:
            return fail(f"jobs {action} needs a JOB_ID", usage=True)
        if action == "show":
            print(json.dumps(client.job(job_id), indent=1))
            return 0
        if action == "tail":
            job = client.job(job_id)
            _print_follow_line(job)
            if job["state"] not in ("DONE", "FAILED", "QUARANTINED",
                                    "CANCELLED"):
                try:
                    for doc in client.follow(job_id):
                        job = doc
                        _print_follow_line(doc)
                except TimeoutError as err:
                    return fail(str(err))
            if job["state"] == "DONE":
                return 0
            return fail(f"job finished {job['state']}: {job.get('error')}")
        if action == "result":
            blob = client.result_bytes(job_id)
            if out is not None:
                from pathlib import Path

                Path(out).write_bytes(blob)
                print(f"[result written to {out}]")
            else:
                print(blob.decode("utf-8"))
            return 0
        job = client.cancel(job_id)
        print(f"[job {job['id']}: {job['state']}]")
        return 0
    except ApiError as err:
        return fail(str(err), usage=err.status == 404)
    except TransportError as err:
        return fail(str(err))


def cmd_worker(url: str, token: str | None, poll_s: float, lease_s: float,
               retries: int, timeout_s: float | None) -> int:
    """``repro worker``: join a fabric as a pull worker.

    Leases points off the coordinator at ``url``, executes them through
    the inline self-healing runner, ships results back exactly-once.
    SIGTERM (and Ctrl-C) drain gracefully: the in-flight point finishes
    and is reported before the loop exits.
    """
    import signal

    from repro.fabric import (
        FabricClient,
        FabricWorker,
        HttpTransport,
        ServiceError,
    )

    client = FabricClient(HttpTransport(url, token=token))
    try:
        client.status()
    except ServiceError as err:
        return fail(str(err))
    worker = FabricWorker(client, poll_s=poll_s, lease_s=lease_s,
                          retries=retries, timeout_s=timeout_s)
    signal.signal(signal.SIGTERM, lambda signum, frame: worker.stop())
    print(f"[fabric worker {worker.worker} pulling from {url}]", flush=True)
    try:
        done = worker.run_forever()
    except KeyboardInterrupt:
        worker.stop()
        done = worker.done
    print(f"[fabric worker {worker.worker}: {done} point(s) executed]",
          flush=True)
    return 0


def cmd_fabric(action: str, url: str, token: str | None,
               as_json: bool) -> int:
    """``repro fabric status``: inspect a running fabric coordinator."""
    import json

    from repro.fabric import FabricClient, HttpTransport, ServiceError

    client = FabricClient(HttpTransport(url, token=token))
    try:
        snap = client.status()
    except ServiceError as err:
        return fail(str(err))
    if as_json:
        print(json.dumps(snap, indent=1))
        return 0
    states = snap.get("states", {})
    print(f"coordinator : {url}"
          f"{'  (draining)' if snap.get('draining') else ''}")
    health = snap.get("health") or {}
    if health:
        reasons = health.get("reasons") or {}
        detail = ("  (" + "; ".join(
            f"{k}: {v}" for k, v in sorted(reasons.items())) + ")"
            if reasons else "")
        print(f"health      : {health.get('state', 'unknown')}{detail}")
    print(f"items       : {snap.get('items', 0)}  ("
          + ", ".join(f"{k}={v}" for k, v in sorted(states.items())) + ")")
    print(f"lease_s     : {snap.get('lease_s')}")
    workers = snap.get("workers", {})
    detail = snap.get("worker_detail") or {}
    if not workers:
        print("workers     : none seen")
    else:
        print(f"workers     : {len(workers)}")
        for name, age in workers.items():
            info = detail.get(name) or {}
            beat = info.get("last_heartbeat_s")
            extra = (f", heartbeat {beat:.1f}s ago" if beat is not None
                     else ", no heartbeat seen")
            stale = "  STALE" if info.get("stale") else ""
            print(f"  {name:<28} last contact {age:.1f}s ago{extra}{stale}")
    return 0


def cmd_top(url: str, token: str | None, interval_s: float,
            once: bool, iterations: int | None, no_color: bool) -> int:
    """``repro top``: live dashboard over a running repro service."""
    from repro.obs import top
    from repro.service import ServiceError

    client = _service_client(url, token)
    try:
        client.healthz()
    except ServiceError as err:
        return fail(str(err))
    frames = top.run(client, interval_s=interval_s,
                     iterations=1 if once else iterations,
                     color=(not no_color) and sys.stdout.isatty())
    return 0 if frames else 1


def cmd_faults_run(schedule_path: str, gpus: int, config_name: str,
                   iterations: int, model: str, deadline_ms: float) -> int:
    """Run one training job under a JSON fault schedule and report."""
    import dataclasses
    from pathlib import Path

    from repro.faults import FaultSchedule

    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        return fail(f"config must be one of {sorted(configs)}", usage=True)
    path = Path(schedule_path)
    if not path.exists():
        return fail(f"schedule file not found: {path}", usage=True)
    try:
        schedule = FaultSchedule.from_json(path.read_text())
    except ValueError as err:
        return fail(f"bad schedule {path}: {err}", usage=True)
    bad_ranks = sorted({getattr(f, "rank", 0) for f in schedule
                        if not 0 <= getattr(f, "rank", 0) < gpus})
    if bad_ranks:
        return fail(f"bad schedule {path}: ranks {bad_ranks} out of range "
                    f"for --gpus {gpus}", usage=True)
    if deadline_ms <= 0 and any(type(f).__name__ == "RankCrash"
                                for f in schedule):
        return fail("schedule contains a rank_crash but the failure "
                    "detector is off; pass --deadline-ms > 0 or the run "
                    "will never terminate", usage=True)
    cfg = configs[config_name]()
    if deadline_ms > 0:
        cfg = dataclasses.replace(cfg, horovod=cfg.horovod.with_(
            negotiation_deadline_s=deadline_ms * 1e-3
        ))
    m = measure_training(gpus, cfg, model=model, iterations=iterations,
                         jitter_std=0.0, schedule=schedule)
    report = m.fault_report or {}
    print(f"{m.config.label}  model={model}  faults={len(schedule)}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"mean iteration {m.stats.mean_iteration_seconds * 1e3:.1f} ms")
    for key in ("faults_applied", "faults_reverted", "flap_cycles",
                "transfer_retries", "transfer_timeouts", "suspects",
                "suspects_cleared", "rank_crashes", "rank_restarts",
                "surviving_ranks", "job_kills"):
        print(f"  {key:<22} {report.get(key, 0)}")
    if m.interrupted:
        done = len(m.stats.iteration_seconds)
        print(f"  job killed after {done}/{iterations} iterations"
              f" (stats cover the completed prefix)")
    print(f"  {'suspect_seconds':<22} {report.get('suspect_seconds', 0.0):.4f}")
    for phase, seconds in report.get("fault_phase_seconds", {}).items():
        print(f"  {phase + '_seconds':<22} {seconds:.4f}")
    return 0


def cmd_measure(gpus: int, config_name: str, iterations: int,
                model: str, as_json: bool = False,
                trace: bool = False) -> int:
    """One ad-hoc measurement of a named configuration."""
    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        return fail(f"config must be one of {sorted(configs)}", usage=True)
    m = measure_training(gpus, configs[config_name](), model=model,
                         iterations=iterations, jitter_std=0.03,
                         telemetry=as_json or trace,
                         trace="spans" if trace else None)
    trace_summary = None
    if trace:
        from repro.trace import explain_measurement

        trace_summary = explain_measurement(m).trace_summary()
    if as_json:
        import json

        from repro.telemetry import attribute_measurement

        att = attribute_measurement(m)
        print(json.dumps({
            "gpus": gpus,
            "config": config_name,
            "config_label": m.config.label,
            "model": model,
            "iterations": iterations,
            "images_per_second": m.images_per_second,
            "scaling_efficiency": m.scaling_efficiency,
            "mean_iteration_seconds": m.stats.mean_iteration_seconds,
            "single_gpu_images_per_second": m.single_gpu_images_per_second,
            "runtime": {
                "cycles": m.runtime_stats.cycles,
                "negotiations": m.runtime_stats.negotiations,
                "cache_hits": m.runtime_stats.cache_hits,
                "fused_ops": m.runtime_stats.fused_ops,
                "tensors_reduced": m.runtime_stats.tensors_reduced,
                "bytes_reduced": m.runtime_stats.bytes_reduced,
            },
            "link_utilization": m.link_utilization,
            "attribution": {
                "mean_wall_s": att.mean_wall_s,
                "totals_s": att.totals(),
                "shares": att.shares(),
                "overhead_share": att.overhead_share(),
                "max_sum_error": att.max_sum_error,
            },
            **({"trace_summary": trace_summary}
               if trace_summary is not None else {}),
        }, indent=1))
        return 0
    print(f"{m.config.label}  model={model}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"{m.scaling_efficiency * 100:.1f}% scaling efficiency")
    if trace_summary is not None:
        print(f"critical path: {trace_summary['critical_path_ms']:.1f} ms, "
              f"exposed allreduce share "
              f"{trace_summary['exposed_allreduce_share'] * 100:.2f}%")
    return 0


def cmd_telemetry(gpus: int, config_name: str, iterations: int, model: str,
                  export_dir: str | None) -> int:
    """Run one instrumented measurement and print/export the attribution."""
    from pathlib import Path

    from repro.telemetry import (
        attribute_measurement,
        merge_chrome_trace,
        to_jsonl,
        to_prometheus,
    )

    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        return fail(f"config must be one of {sorted(configs)}", usage=True)
    m = measure_training(gpus, configs[config_name](), model=model,
                         iterations=iterations, jitter_std=0.03,
                         telemetry=True)
    att = attribute_measurement(m)
    print(f"{m.config.label}  model={model}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"{m.scaling_efficiency * 100:.1f}% scaling efficiency\n")
    print(att.table())
    if export_dir is not None:
        out = Path(export_dir)
        out.mkdir(parents=True, exist_ok=True)
        registry = m.telemetry.registry
        (out / "metrics.prom").write_text(to_prometheus(registry))
        (out / "telemetry.jsonl").write_text(
            to_jsonl(registry, m.telemetry.iteration_samples))
        (out / "trace.json").write_text(
            merge_chrome_trace(m.timeline, registry))
        print(f"\n[exported metrics.prom, telemetry.jsonl, trace.json "
              f"to {out}]")
    return 0


def cmd_trace_run(gpus: int, config_name: str, iterations: int, model: str,
                  level: str, out_dir: str | None) -> int:
    """One traced measurement: critical-path report + optional exports."""
    from pathlib import Path

    from repro.trace import (
        explain_measurement,
        merged_chrome_trace,
        save_spans,
    )

    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        return fail(f"config must be one of {sorted(configs)}", usage=True)
    m = measure_training(gpus, configs[config_name](), model=model,
                         iterations=iterations, jitter_std=0.03,
                         telemetry=True, trace=level)
    report = explain_measurement(m)
    print(f"{m.config.label}  model={model}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"{m.scaling_efficiency * 100:.1f}% scaling efficiency\n")
    print(report.report())
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        save_spans(m.trace, out / "spans.json")
        (out / "trace.json").write_text(merged_chrome_trace(
            m.timeline, m.telemetry.registry, m.trace))
        (out / "critical_path.txt").write_text(report.report() + "\n")
        print(f"\n[exported spans.json, trace.json, critical_path.txt "
              f"to {out}]")
    return 0


def cmd_explain(target: str) -> int:
    """Critical-path diagnosis of a saved trace or experiment result.

    ``target`` is either a span JSON file written by
    ``repro trace run --out`` / the runner's ``--trace-dir``, or an
    experiment id whose saved ``bench_results/<id>.json`` carries a
    ``trace_summary`` block (E16).
    """
    import json
    from pathlib import Path

    from repro.trace import compute_critical_path, load_spans

    path = Path(target)
    if path.suffix == ".json" or path.exists():
        if not path.exists():
            return fail(f"trace file not found: {path}", usage=True)
        try:
            recorder = load_spans(path)
        except (ValueError, json.JSONDecodeError) as err:
            return fail(f"bad trace file {path}: {err}", usage=True)
        report = compute_critical_path(recorder, label=path.stem)
        print(report.report())
        return 0
    if target in REGISTRY:
        from repro.bench.harness import load_result

        saved = Path("bench_results") / f"{target.lower()}.json"
        if not saved.exists():
            return fail(f"no saved result for {target}; run "
                        f"`python -m repro run {target}` first", usage=True)
        result = load_result(saved)
        if result.trace_summary is None:
            return fail(f"{saved} carries no trace_summary; only traced "
                        f"experiments (E16) record one — or point explain "
                        f"at a span JSON from `repro trace run --out`",
                        usage=True)
        summary = result.trace_summary
        print(f"== {result.experiment}: {result.title} ==")
        print(f"critical path : {summary['critical_path_ms']:.1f} ms/iter "
              f"over {summary['iterations']} steady iterations "
              f"(level={summary['level']})")
        print(f"exposed allreduce share: "
              f"{summary['exposed_allreduce_share'] * 100:.2f}%")
        print("shares:")
        for bucket, share in summary["shares"].items():
            print(f"  {bucket:<16} {share * 100:6.2f}%")
        print("top spans:")
        for span in summary["top_spans"]:
            print(f"  {span['cat']:<12} {span['name']:<24} "
                  f"{span['seconds_per_iter'] * 1e3:8.2f} ms/iter "
                  f"({span['share'] * 100:.1f}%)")
        return 0
    return fail(f"unknown target {target!r}: not a trace file and not "
                f"an experiment id (known: {', '.join(REGISTRY)})",
                usage=True)


def cmd_bench_compare(baselines: list[str], tolerance: float,
                      artifact: str | None, full: bool = False) -> int:
    """``repro bench compare``: regression-gate fresh runs vs baselines."""
    from repro.bench.sentinel import run_sentinel

    try:
        reports = run_sentinel(baselines, tolerance=tolerance,
                               quick=not full, artifact=artifact)
    except (ValueError, OSError) as err:
        return fail(f"bench compare failed: {err}", usage=True)
    for report in reports:
        print(report.summary())
        for delta in report.regressions:
            rel = (f" (rel_error {delta.rel_error:.4f})"
                   if delta.rel_error is not None else "")
            print(f"  {delta.status:<10} {delta.key}: "
                  f"baseline={delta.baseline!r} fresh={delta.fresh!r}{rel}")
    if artifact is not None:
        print(f"[diff artifact written to {artifact}]")
    if any(not r.ok for r in reports):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch."""
    parser = argparse.ArgumentParser(prog="python -m repro",
                                     description=__doc__)
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the experiment index")
    run_p = sub.add_parser("run", help="run experiments by id ('all' = every)")
    run_p.add_argument("ids", nargs="+", metavar="ID")
    run_p.add_argument("--quick", action="store_true",
                       help="scaled-down, faster variants")
    run_p.add_argument("--parallel", action="store_true",
                       help="fan sweep-shaped experiments across worker "
                            "processes with the result cache")
    run_p.add_argument("--workers", type=int, default=0,
                       help="worker processes for --parallel "
                            "(0 = CPU count)")
    run_p.add_argument("--no-cache", action="store_true",
                       help="with --parallel: skip the on-disk result cache")
    run_p.add_argument("--resume", action="store_true",
                       help="skip experiments the run journal already "
                            "records as done (same variant)")
    run_p.add_argument("--journal", metavar="PATH", default=None,
                       help="run journal path "
                            "(default bench_results/run_journal.jsonl)")
    run_p.add_argument("--retries", type=int, default=1,
                       help="with --parallel: per-point retries before a "
                            "failure is fatal (default 1)")
    run_p.add_argument("--trace-dir", metavar="DIR", default=None,
                       help="capture span traces of traced points into DIR "
                            "(one <key>.trace.json per traced measurement)")
    run_p.add_argument("--fast", action="store_true", default=None,
                       dest="fast",
                       help="force the simulator fast path on "
                            "(default: on, or REPRO_FAST_PATH)")
    run_p.add_argument("--no-fast", action="store_false", default=None,
                       dest="fast",
                       help="force the reference simulation path "
                            "(bit-identical results, more kernel events)")
    run_p.add_argument("--backend", default="local",
                       choices=("local", "fabric"),
                       help="execution backend: 'local' (inline/process "
                            "pool) or 'fabric' (repro-worker subprocesses "
                            "pulling points over the lease protocol)")
    cache_p = sub.add_parser("cache", help="inspect/clear the result cache")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    for verb, help_ in (("stats", "show cache contents and hit accounting"),
                        ("clear", "delete every cached result")):
        cp = cache_sub.add_parser(verb, help=help_)
        cp.add_argument("--dir", default=None,
                        help="cache directory (default bench_results/.cache)")
        if verb == "stats":
            cp.add_argument("--json", action="store_true",
                            help="machine-readable output")
    journal_p = sub.add_parser("journal", help="run-journal utilities")
    journal_sub = journal_p.add_subparsers(dest="journal_command",
                                           required=True)
    jcomp_p = journal_sub.add_parser(
        "compact",
        help="drop superseded/completed entries (atomic rewrite)")
    jcomp_p.add_argument("--journal", metavar="PATH", default=None,
                         help="journal path "
                              "(default bench_results/run_journal.jsonl)")
    serve_p = sub.add_parser(
        "serve", help="run the simulation service (REST API + job queue)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8765,
                         help="TCP port (0 = ephemeral, printed at startup)")
    serve_p.add_argument("--state-dir", default="bench_results/service",
                         help="queue journal, results and cache live here")
    serve_p.add_argument("--tokens", metavar="PATH", default=None,
                         help="bearer-token config JSON "
                              "(omit for open, unauthenticated mode)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="scheduler worker threads (default 2)")
    serve_p.add_argument("--lease-s", type=float, default=60.0,
                         help="job lease duration in seconds (default 60)")
    serve_p.add_argument("--max-queue-depth", type=int, default=128,
                         help="shed submissions with 503 + Retry-After "
                              "past this many queued jobs (default 128)")
    serve_p.add_argument("--backend", default="local",
                         choices=("local", "fabric"),
                         help="job execution backend: 'local' (inline) or "
                              "'fabric' (repro-worker subprocess fleet)")
    serve_p.add_argument("--fabric-workers", type=int, default=2,
                         help="with --backend fabric: worker subprocesses "
                              "(default 2)")
    serve_p.add_argument("--obs-dir", metavar="DIR", default=None,
                         help="structured event log directory (default "
                              "<state-dir>/obs; REPRO_OBS=0 disables)")
    submit_p = sub.add_parser(
        "submit", help="submit a job to a running repro service")
    submit_p.add_argument("target", metavar="EXP_ID|points.json",
                          help="an experiment id or a JSON file of points")
    submit_p.add_argument("--variant", default="quick",
                          choices=("quick", "full"))
    submit_p.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    submit_p.add_argument("--url", default="http://127.0.0.1:8765",
                          help="service base URL")
    submit_p.add_argument("--token", default=None, help="bearer token")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job reaches a terminal state")
    submit_p.add_argument("--timeout", type=float, default=600.0,
                          help="--wait deadline in seconds (default 600)")
    submit_p.add_argument("--busy-retries", type=int, default=2,
                          help="re-submit after 429/503 honouring the "
                               "server's Retry-After (default 2)")
    submit_p.add_argument("--follow", action="store_true",
                          help="stream live progress (SSE, falling back "
                               "to long-polling) until the job finishes")
    jobs_p = sub.add_parser(
        "jobs", help="inspect/cancel jobs on a running repro service")
    jobs_p.add_argument("jobs_command",
                        choices=("ls", "show", "result", "cancel", "tail"))
    jobs_p.add_argument("job_id", nargs="?", default=None, metavar="JOB_ID")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")
    jobs_p.add_argument("--token", default=None, help="bearer token")
    jobs_p.add_argument("--state", default=None,
                        help="with ls: filter by job state")
    jobs_p.add_argument("--out", metavar="PATH", default=None,
                        help="with result: write the envelope to PATH")
    worker_p = sub.add_parser(
        "worker", help="join a fabric as a pull worker (repro worker)")
    worker_p.add_argument("--url", required=True,
                          help="fabric coordinator base URL")
    worker_p.add_argument("--token", default=None, help="bearer token")
    worker_p.add_argument("--poll-s", type=float, default=0.1,
                          help="idle poll interval in seconds (default 0.1)")
    worker_p.add_argument("--lease-s", type=float, default=30.0,
                          help="requested lease duration (default 30)")
    worker_p.add_argument("--retries", type=int, default=0,
                          help="per-point retries before reporting failure "
                               "(default 0)")
    worker_p.add_argument("--timeout-s", type=float, default=None,
                          help="per-point budget; past it the worker stops "
                               "heartbeating so the lease lapses and the "
                               "point is reassigned")
    fabric_p = sub.add_parser(
        "fabric", help="inspect a running fabric coordinator")
    fabric_sub = fabric_p.add_subparsers(dest="fabric_command", required=True)
    fstat_p = fabric_sub.add_parser(
        "status", help="queue depth, item states and worker liveness")
    fstat_p.add_argument("--url", required=True,
                         help="fabric coordinator base URL")
    fstat_p.add_argument("--token", default=None, help="bearer token")
    fstat_p.add_argument("--json", action="store_true",
                         help="machine-readable output")
    top_p = sub.add_parser(
        "top", help="live dashboard: jobs, workers, latencies, events")
    top_p.add_argument("--url", default="http://127.0.0.1:8765",
                       help="service base URL")
    top_p.add_argument("--token", default=None, help="bearer token")
    top_p.add_argument("--interval", type=float, default=2.0,
                       help="refresh interval in seconds (default 2)")
    top_p.add_argument("--once", action="store_true",
                       help="print a single frame and exit (pipe-safe)")
    top_p.add_argument("--iterations", type=int, default=None,
                       help="stop after N frames (default: until Ctrl-C)")
    top_p.add_argument("--no-color", action="store_true",
                       help="plain text (no ANSI colors)")
    meas_p = sub.add_parser("measure", help="one ad-hoc training measurement")
    meas_p.add_argument("--gpus", type=int, default=24)
    meas_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    meas_p.add_argument("--iterations", type=int, default=3)
    meas_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    meas_p.add_argument("--json", action="store_true",
                        help="machine-readable output (includes the "
                             "telemetry attribution summary)")
    meas_p.add_argument("--trace", action="store_true",
                        help="also trace spans and report the critical "
                             "path (adds trace_summary to --json)")
    tele_p = sub.add_parser(
        "telemetry",
        help="instrumented measurement + efficiency attribution")
    tele_p.add_argument("--gpus", type=int, default=24)
    tele_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    tele_p.add_argument("--iterations", type=int, default=3)
    tele_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    tele_p.add_argument("--export", metavar="DIR", default=None,
                        help="also write metrics.prom, telemetry.jsonl and "
                             "trace.json into DIR")
    trace_p = sub.add_parser(
        "trace", help="span tracing + critical-path diagnosis")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trun_p = trace_sub.add_parser(
        "run", help="one traced measurement + critical-path report")
    trun_p.add_argument("--gpus", type=int, default=24)
    trun_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    trun_p.add_argument("--iterations", type=int, default=3)
    trun_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    trun_p.add_argument("--level", default="spans",
                        choices=("spans", "links"),
                        help="'links' adds per-transfer spans")
    trun_p.add_argument("--out", metavar="DIR", default=None,
                        help="also write spans.json, trace.json (Chrome) "
                             "and critical_path.txt into DIR")
    explain_p = sub.add_parser(
        "explain",
        help="critical-path diagnosis of a span JSON or saved experiment")
    explain_p.add_argument("target",
                           help="a spans .json file or an experiment id "
                                "with a saved trace_summary (E16)")
    bench_p = sub.add_parser("bench", help="benchmark result utilities")
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    bcomp_p = bench_sub.add_parser(
        "compare",
        help="regression sentinel: fresh quick runs vs baseline JSONs")
    bcomp_p.add_argument("baselines", nargs="+", metavar="BASELINE",
                         help="result JSON files written by save_result")
    bcomp_p.add_argument("--tolerance", type=float, default=0.05,
                         help="relative tolerance for numeric measured "
                              "keys (default 0.05)")
    bcomp_p.add_argument("--artifact", metavar="PATH", default=None,
                         help="write the full diff as JSON to PATH")
    bcomp_p.add_argument("--full", action="store_true",
                         help="re-run at the full tier instead of quick")
    faults_p = sub.add_parser("faults",
                              help="fault-injection runs (see repro.faults)")
    faults_sub = faults_p.add_subparsers(dest="faults_command", required=True)
    frun_p = faults_sub.add_parser(
        "run", help="train once under a JSON fault schedule")
    frun_p.add_argument("--schedule", required=True,
                        help="path to a fault-schedule JSON file")
    frun_p.add_argument("--gpus", type=int, default=24)
    frun_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    frun_p.add_argument("--iterations", type=int, default=6)
    frun_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    frun_p.add_argument("--deadline-ms", type=float, default=0.0,
                        help="negotiation deadline in ms (0 = detector off; "
                             "required for crash schedules to shrink)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.ids, args.quick, parallel=args.parallel,
                       workers=args.workers, no_cache=args.no_cache,
                       resume=args.resume, journal_path=args.journal,
                       retries=args.retries, trace_dir=args.trace_dir,
                       fast=args.fast, backend=args.backend)
    if args.command == "cache":
        return cmd_cache(args.cache_command, args.dir,
                         getattr(args, "json", False))
    if args.command == "journal":
        return cmd_journal_compact(args.journal)
    if args.command == "serve":
        return cmd_serve(args.host, args.port, args.state_dir, args.tokens,
                         args.workers, args.lease_s, args.max_queue_depth,
                         backend=args.backend,
                         fabric_workers=args.fabric_workers,
                         obs_dir=args.obs_dir)
    if args.command == "submit":
        return cmd_submit(args.target, args.variant, args.priority,
                          args.url, args.token, args.wait, args.timeout,
                          args.busy_retries, follow=args.follow)
    if args.command == "jobs":
        return cmd_jobs(args.jobs_command, args.job_id, args.url,
                        args.token, args.state, args.out)
    if args.command == "worker":
        return cmd_worker(args.url, args.token, args.poll_s, args.lease_s,
                          args.retries, args.timeout_s)
    if args.command == "fabric":
        return cmd_fabric(args.fabric_command, args.url, args.token,
                          args.json)
    if args.command == "top":
        return cmd_top(args.url, args.token, args.interval, args.once,
                       args.iterations, args.no_color)
    if args.command == "faults":
        return cmd_faults_run(args.schedule, args.gpus, args.config,
                              args.iterations, args.model, args.deadline_ms)
    if args.command == "telemetry":
        return cmd_telemetry(args.gpus, args.config, args.iterations,
                             args.model, args.export)
    if args.command == "trace":
        return cmd_trace_run(args.gpus, args.config, args.iterations,
                             args.model, args.level, args.out)
    if args.command == "explain":
        return cmd_explain(args.target)
    if args.command == "bench":
        return cmd_bench_compare(args.baselines, args.tolerance,
                                 args.artifact, full=args.full)
    return cmd_measure(args.gpus, args.config, args.iterations, args.model,
                       args.json, trace=args.trace)


if __name__ == "__main__":
    raise SystemExit(main())
