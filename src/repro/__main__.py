"""Command-line entry point: run reproduction experiments by id.

Usage::

    python -m repro list                  # show the experiment index
    python -m repro run E1 E2 E7          # run selected experiments
    python -m repro run E6 --quick        # scaled-down, faster variants
    python -m repro measure --gpus 48 --config tuned

Results are printed as tables and saved under ``bench_results/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments as E
from repro.bench.harness import save_result
from repro.core import (
    measure_training,
    paper_default_config,
    paper_tuned_config,
)

#: Experiment registry: id -> (description, full-scale kwargs, quick kwargs).
EXPERIMENTS = {
    "E1": ("single-GPU throughput (DLv3+ vs ResNet-50)",
           E.e1_single_gpu_throughput, {}, {"iterations": 2}),
    "E2": ("DLv3+ gradient tensor size distribution",
           E.e2_tensor_distribution, {}, {}),
    "E3": ("OSU allreduce latency per MPI library",
           E.e3_osu_allreduce, {"gpus": 24}, {"gpus": 12, "iterations": 2}),
    "E4": ("fusion-threshold sweep",
           E.e4_fusion_sweep, {"gpus": 132, "iterations": 2},
           {"gpus": 24, "iterations": 2}),
    "E5": ("cycle-time sweep",
           E.e5_cycle_sweep, {"gpus": 132, "iterations": 2},
           {"gpus": 24, "iterations": 2}),
    "E6": ("headline scaling comparison (default vs tuned)",
           E.e6_scaling_comparison, {},
           {"gpu_counts": (1, 6, 24), "iterations": 2}),
    "E7": ("final mIOU (convergence model)", E.e7_miou, {}, {}),
    "E7b": ("real npnn data-parallel training",
            E.e7_npnn_training, {"steps": 120}, {"steps": 30}),
    "E8": ("per-scale efficiency table",
           E.e8_efficiency_table, {},
           {"gpu_counts": (1, 6, 24), "iterations": 2}),
    "E9": ("tuning-step ablation at scale",
           E.e9_ablation, {"gpus": 132, "iterations": 2},
           {"gpus": 24, "iterations": 2}),
    "E10": ("staged tuning procedure",
            E.e10_autotune_vs_staged, {},
            {"probe_gpus": 12, "iterations": 2, "validate": False,
             "run_autotuner": False}),
    "E11": ("time to train the VOC recipe (extension)",
            E.e11_time_to_train, {},
            {"gpu_counts": (1, 24), "iterations": 2}),
    "E12": ("strong vs weak scaling (extension)",
            E.e12_strong_vs_weak_scaling, {},
            {"gpu_counts": (6, 12, 24), "global_batch": 48, "iterations": 2}),
    "E13": ("fault injection & resilience sweep (extension)",
            E.e13_fault_injection, {},
            {"gpus": 12, "iterations": 4,
             "slowdowns": (3.0,), "flap_fractions": (0.3,)}),
    "E13b": ("fault injection: degraded rail (extension)",
             E.e13_degraded_rail, {},
             {"gpus": 48, "iterations": 2, "factors": (1.0, 0.05)}),
    "E14": ("efficiency attribution: where the time goes (extension)",
            E.e14_efficiency_attribution, {},
            {"gpu_counts": (6, 24), "iterations": 2}),
}


def package_version() -> str:
    """Installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def cmd_list() -> int:
    """Print the experiment index."""
    print(f"{'id':<5} description")
    for exp_id, (desc, *_rest) in EXPERIMENTS.items():
        print(f"{exp_id:<5} {desc}")
    return 0


def cmd_run(ids: list[str], quick: bool) -> int:
    """Run the selected experiments and persist their results."""
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    for exp_id in ids:
        _desc, driver, full_kwargs, quick_kwargs = EXPERIMENTS[exp_id]
        kwargs = quick_kwargs if quick else full_kwargs
        start = time.time()
        result = driver(**kwargs)
        print(result.table())
        path = save_result(result)
        print(f"[{exp_id}: {time.time() - start:.0f}s, saved {path}]\n")
    return 0


def cmd_faults_run(schedule_path: str, gpus: int, config_name: str,
                   iterations: int, model: str, deadline_ms: float) -> int:
    """Run one training job under a JSON fault schedule and report."""
    import dataclasses
    from pathlib import Path

    from repro.faults import FaultSchedule

    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        print(f"config must be one of {sorted(configs)}", file=sys.stderr)
        return 2
    path = Path(schedule_path)
    if not path.exists():
        print(f"schedule file not found: {path}", file=sys.stderr)
        return 2
    try:
        schedule = FaultSchedule.from_json(path.read_text())
    except ValueError as err:
        print(f"bad schedule {path}: {err}", file=sys.stderr)
        return 2
    bad_ranks = sorted({getattr(f, "rank", 0) for f in schedule
                        if not 0 <= getattr(f, "rank", 0) < gpus})
    if bad_ranks:
        print(f"bad schedule {path}: ranks {bad_ranks} out of range for "
              f"--gpus {gpus}", file=sys.stderr)
        return 2
    if deadline_ms <= 0 and any(type(f).__name__ == "RankCrash"
                                for f in schedule):
        print("schedule contains a rank_crash but the failure detector is "
              "off; pass --deadline-ms > 0 or the run will never terminate",
              file=sys.stderr)
        return 2
    cfg = configs[config_name]()
    if deadline_ms > 0:
        cfg = dataclasses.replace(cfg, horovod=cfg.horovod.with_(
            negotiation_deadline_s=deadline_ms * 1e-3
        ))
    m = measure_training(gpus, cfg, model=model, iterations=iterations,
                         jitter_std=0.0, schedule=schedule)
    report = m.fault_report or {}
    print(f"{m.config.label}  model={model}  faults={len(schedule)}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"mean iteration {m.stats.mean_iteration_seconds * 1e3:.1f} ms")
    for key in ("faults_applied", "faults_reverted", "flap_cycles",
                "transfer_retries", "transfer_timeouts", "suspects",
                "suspects_cleared", "rank_crashes", "rank_restarts",
                "surviving_ranks"):
        print(f"  {key:<22} {report.get(key, 0)}")
    print(f"  {'suspect_seconds':<22} {report.get('suspect_seconds', 0.0):.4f}")
    for phase, seconds in report.get("fault_phase_seconds", {}).items():
        print(f"  {phase + '_seconds':<22} {seconds:.4f}")
    return 0


def cmd_measure(gpus: int, config_name: str, iterations: int,
                model: str, as_json: bool = False) -> int:
    """One ad-hoc measurement of a named configuration."""
    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        print(f"config must be one of {sorted(configs)}", file=sys.stderr)
        return 2
    m = measure_training(gpus, configs[config_name](), model=model,
                         iterations=iterations, jitter_std=0.03,
                         telemetry=as_json)
    if as_json:
        import json

        from repro.telemetry import attribute_measurement

        att = attribute_measurement(m)
        print(json.dumps({
            "gpus": gpus,
            "config": config_name,
            "config_label": m.config.label,
            "model": model,
            "iterations": iterations,
            "images_per_second": m.images_per_second,
            "scaling_efficiency": m.scaling_efficiency,
            "mean_iteration_seconds": m.stats.mean_iteration_seconds,
            "single_gpu_images_per_second": m.single_gpu_images_per_second,
            "runtime": {
                "cycles": m.runtime_stats.cycles,
                "negotiations": m.runtime_stats.negotiations,
                "cache_hits": m.runtime_stats.cache_hits,
                "fused_ops": m.runtime_stats.fused_ops,
                "tensors_reduced": m.runtime_stats.tensors_reduced,
                "bytes_reduced": m.runtime_stats.bytes_reduced,
            },
            "link_utilization": m.link_utilization,
            "attribution": {
                "mean_wall_s": att.mean_wall_s,
                "totals_s": att.totals(),
                "shares": att.shares(),
                "overhead_share": att.overhead_share(),
                "max_sum_error": att.max_sum_error,
            },
        }, indent=1))
        return 0
    print(f"{m.config.label}  model={model}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"{m.scaling_efficiency * 100:.1f}% scaling efficiency")
    return 0


def cmd_telemetry(gpus: int, config_name: str, iterations: int, model: str,
                  export_dir: str | None) -> int:
    """Run one instrumented measurement and print/export the attribution."""
    from pathlib import Path

    from repro.telemetry import (
        attribute_measurement,
        merge_chrome_trace,
        to_jsonl,
        to_prometheus,
    )

    configs = {"default": paper_default_config, "tuned": paper_tuned_config}
    if config_name not in configs:
        print(f"config must be one of {sorted(configs)}", file=sys.stderr)
        return 2
    m = measure_training(gpus, configs[config_name](), model=model,
                         iterations=iterations, jitter_std=0.03,
                         telemetry=True)
    att = attribute_measurement(m)
    print(f"{m.config.label}  model={model}")
    print(f"{gpus} GPUs: {m.images_per_second:.1f} img/s, "
          f"{m.scaling_efficiency * 100:.1f}% scaling efficiency\n")
    print(att.table())
    if export_dir is not None:
        out = Path(export_dir)
        out.mkdir(parents=True, exist_ok=True)
        registry = m.telemetry.registry
        (out / "metrics.prom").write_text(to_prometheus(registry))
        (out / "telemetry.jsonl").write_text(
            to_jsonl(registry, m.telemetry.iteration_samples))
        (out / "trace.json").write_text(
            merge_chrome_trace(m.timeline, registry))
        print(f"\n[exported metrics.prom, telemetry.jsonl, trace.json "
              f"to {out}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch."""
    parser = argparse.ArgumentParser(prog="python -m repro",
                                     description=__doc__)
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the experiment index")
    run_p = sub.add_parser("run", help="run experiments by id")
    run_p.add_argument("ids", nargs="+", metavar="ID")
    run_p.add_argument("--quick", action="store_true",
                       help="scaled-down, faster variants")
    meas_p = sub.add_parser("measure", help="one ad-hoc training measurement")
    meas_p.add_argument("--gpus", type=int, default=24)
    meas_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    meas_p.add_argument("--iterations", type=int, default=3)
    meas_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    meas_p.add_argument("--json", action="store_true",
                        help="machine-readable output (includes the "
                             "telemetry attribution summary)")
    tele_p = sub.add_parser(
        "telemetry",
        help="instrumented measurement + efficiency attribution")
    tele_p.add_argument("--gpus", type=int, default=24)
    tele_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    tele_p.add_argument("--iterations", type=int, default=3)
    tele_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    tele_p.add_argument("--export", metavar="DIR", default=None,
                        help="also write metrics.prom, telemetry.jsonl and "
                             "trace.json into DIR")
    faults_p = sub.add_parser("faults",
                              help="fault-injection runs (see repro.faults)")
    faults_sub = faults_p.add_subparsers(dest="faults_command", required=True)
    frun_p = faults_sub.add_parser(
        "run", help="train once under a JSON fault schedule")
    frun_p.add_argument("--schedule", required=True,
                        help="path to a fault-schedule JSON file")
    frun_p.add_argument("--gpus", type=int, default=24)
    frun_p.add_argument("--config", default="tuned",
                        choices=("default", "tuned"))
    frun_p.add_argument("--iterations", type=int, default=6)
    frun_p.add_argument("--model", default="deeplab",
                        choices=("deeplab", "resnet50", "resnet101",
                                 "mobilenetv2"))
    frun_p.add_argument("--deadline-ms", type=float, default=0.0,
                        help="negotiation deadline in ms (0 = detector off; "
                             "required for crash schedules to shrink)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.ids, args.quick)
    if args.command == "faults":
        return cmd_faults_run(args.schedule, args.gpus, args.config,
                              args.iterations, args.model, args.deadline_ms)
    if args.command == "telemetry":
        return cmd_telemetry(args.gpus, args.config, args.iterations,
                             args.model, args.export)
    return cmd_measure(args.gpus, args.config, args.iterations, args.model,
                       args.json)


if __name__ == "__main__":
    raise SystemExit(main())
