"""GPU compute specification and the calibrated V100 instance.

The GPU model exposes exactly what the layer cost model
(:mod:`repro.models.costmodel`) needs: peak arithmetic throughput, memory
bandwidth, kernel-launch overhead, and sustained-efficiency factors.  The
efficiency factors are *calibration constants*: they are chosen once so
that the reproduced single-GPU throughputs match the paper's two measured
numbers (DLv3+ 6.7 img/s, ResNet-50 300 img/s) and never touched again —
every scaling result downstream is derived, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "V100"]


@dataclass(frozen=True)
class GPUSpec:
    """Datasheet + calibration parameters of one GPU.

    Attributes
    ----------
    name:
        Marketing name (``"V100-SXM2-16GB"``).
    peak_fp32_flops:
        Peak single-precision FLOP/s.
    peak_fp16_flops:
        Peak half/tensor-core FLOP/s (used by the fp16-compression path).
    mem_bandwidth_Bps:
        HBM2 bandwidth in bytes/second.
    mem_bytes:
        Device memory capacity in bytes.
    kernel_launch_s:
        Fixed overhead per kernel launch in seconds (dominates tiny layers).
    compute_efficiency:
        Fraction of peak FLOP/s sustained by compute-bound kernels
        (convolutions through cuDNN typically reach 0.3–0.6 of peak on
        V100; exact value is calibrated, see module docstring).
    mem_efficiency:
        Fraction of peak memory bandwidth sustained by bandwidth-bound
        kernels (BN, ReLU, elementwise).
    """

    name: str
    peak_fp32_flops: float
    peak_fp16_flops: float
    mem_bandwidth_Bps: float
    mem_bytes: int
    kernel_launch_s: float
    compute_efficiency: float
    mem_efficiency: float

    def __post_init__(self) -> None:
        for field in (
            "peak_fp32_flops",
            "peak_fp16_flops",
            "mem_bandwidth_Bps",
            "mem_bytes",
            "kernel_launch_s",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0 < self.mem_efficiency <= 1:
            raise ValueError("mem_efficiency must be in (0, 1]")

    @property
    def sustained_fp32_flops(self) -> float:
        """Sustained FLOP/s for compute-bound fp32 kernels."""
        return self.peak_fp32_flops * self.compute_efficiency

    @property
    def sustained_mem_Bps(self) -> float:
        """Sustained bytes/second for bandwidth-bound kernels."""
        return self.mem_bandwidth_Bps * self.mem_efficiency

    def kernel_seconds(self, flops: float, bytes_moved: float,
                       compute_factor: float = 1.0,
                       mem_factor: float = 1.0) -> float:
        """Roofline execution time of one kernel.

        The kernel takes the max of its compute time and its memory time
        (roofline model), plus the fixed launch overhead.  The factors
        scale the *sustained* rates for kernel classes that fall short of
        the sustained baseline (depthwise, dilated, small-GEMM kernels);
        see :class:`repro.models.costmodel.ModelCost` for the table.
        """
        if compute_factor <= 0 or mem_factor <= 0:
            raise ValueError("efficiency factors must be positive")
        compute = flops / (self.sustained_fp32_flops * compute_factor)
        memory = bytes_moved / (self.sustained_mem_Bps * mem_factor)
        return self.kernel_launch_s + max(compute, memory)


#: NVIDIA Tesla V100-SXM2-16GB as deployed in Summit AC922 nodes.
#:
#: Datasheet numbers: 15.7 TFLOP/s fp32, 125 TFLOP/s tensor fp16, 900 GB/s
#: HBM2, 16 GB.  ``compute_efficiency`` / ``mem_efficiency`` / launch
#: overhead are the calibration constants described in the module docstring.
V100 = GPUSpec(
    name="V100-SXM2-16GB",
    peak_fp32_flops=15.7e12,
    peak_fp16_flops=125e12,
    mem_bandwidth_Bps=900e9,
    mem_bytes=16 * (1 << 30),
    kernel_launch_s=5e-6,
    compute_efficiency=0.65,
    mem_efficiency=0.85,
)
