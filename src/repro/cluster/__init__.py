"""Hardware model of a Summit-like GPU cluster.

The paper's testbed is the Summit supercomputer at Oak Ridge National
Laboratory: IBM AC922 nodes with 2 POWER9 sockets and 6 NVIDIA V100 GPUs,
NVLink 2.0 intra-node links, an X-bus between sockets, and dual-rail
Mellanox EDR InfiniBand (100 Gbit/s per rail) into a non-blocking fat tree.

This package models that hardware at the *flow level*: every physical link
is a serialized resource with a latency and a bandwidth, and a message
transfer occupies all links on its route for ``Σ latency + bytes / min(bw)``
(wormhole-style). That is exactly the level of detail at which the paper's
effects live — NVLink vs InfiniBand bandwidth hierarchy, per-node injection
bottlenecks, and GPU-direct vs host-staged data paths.

Key entry points:

* :func:`~repro.cluster.summit.build_summit` — a ready-made Summit topology.
* :class:`~repro.cluster.fabric.Fabric` — timed transfers between devices.
* :data:`~repro.cluster.gpu.V100` — the calibrated GPU compute spec.
"""

from repro.cluster.fabric import Fabric, LinkDownError, TransferStats
from repro.cluster.gpu import V100, GPUSpec
from repro.cluster.links import Link, LinkSpec
from repro.cluster.summit import SUMMIT_NODE, build_summit
from repro.cluster.topology import Device, Topology

__all__ = [
    "Device",
    "Fabric",
    "GPUSpec",
    "Link",
    "LinkDownError",
    "LinkSpec",
    "SUMMIT_NODE",
    "Topology",
    "TransferStats",
    "V100",
    "build_summit",
]
