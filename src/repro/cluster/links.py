"""Physical link model: latency, bandwidth, and serialized occupancy.

A :class:`LinkSpec` is the immutable datasheet description of a link type
(e.g. one NVLink 2.0 brick); a :class:`Link` is one *instance* of it in a
topology, backed by a :class:`repro.sim.Resource` so that concurrent
messages serialize.  Links are unidirectional — full-duplex physical links
are modeled as two :class:`Link` instances, which is what lets a ring
allreduce's simultaneous send+receive proceed without self-contention,
exactly as on real hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.sim import Environment, Resource

__all__ = ["Link", "LinkSpec"]

_link_ids = itertools.count()


@dataclass(frozen=True)
class LinkSpec:
    """Datasheet parameters of a link type.

    Attributes
    ----------
    name:
        Human-readable type name (``"nvlink2"``, ``"ib-edr"``...).
    latency_s:
        One-way propagation + protocol latency in seconds.
    bandwidth_Bps:
        Achievable (not theoretical-peak) bandwidth in bytes/second.
    """

    name: str
    latency_s: float
    bandwidth_Bps: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"negative latency for link {self.name!r}")
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"non-positive bandwidth for link {self.name!r}")

    def transfer_seconds(self, nbytes: int) -> float:
        """Unloaded transfer time of ``nbytes`` over this link alone."""
        return self.latency_s + nbytes / self.bandwidth_Bps


class Link:
    """One directed link instance inside a topology.

    The ``order_key`` is a globally unique monotone id used to acquire
    multi-link routes in canonical order (resource-ordering deadlock
    avoidance — two messages whose routes overlap can never hold links in
    conflicting order).
    """

    def __init__(self, env: Environment, spec: LinkSpec, label: str) -> None:
        self.env = env
        self.spec = spec
        #: The pristine datasheet spec this link was built with.  Fault
        #: injection (degrade/restore) always recomputes ``spec`` from
        #: this, so repeated degradations compose instead of accreting.
        self.base_spec = spec
        #: Current bandwidth factor relative to ``base_spec`` (1.0 = healthy).
        self.degrade_factor = 1.0
        #: False while the link is administratively/physically down
        #: (flapping rail): transfers through it fail and must retry.
        self.up = True
        #: Topology-level label, e.g. ``"gpu:0:1->gpu:0:2"``.
        self.label = label
        self.order_key = next(_link_ids)
        self.resource = Resource(env, capacity=1)
        #: Total bytes ever carried (for utilization accounting).
        self.bytes_carried = 0
        #: Total seconds this link was held by transfers.
        self.busy_seconds = 0.0

    def set_factor(self, factor: float) -> None:
        """Set bandwidth to ``factor`` × the *original* spec's bandwidth.

        ``factor == 1.0`` restores the pristine spec (including its
        name); anything lower rebuilds the spec from ``base_spec`` with a
        single ``-degraded`` suffix, however many times it is applied.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        self.degrade_factor = factor
        if factor == 1.0:
            self.spec = self.base_spec
        else:
            self.spec = LinkSpec(
                f"{self.base_spec.name}-degraded",
                self.base_spec.latency_s,
                self.base_spec.bandwidth_Bps * factor,
            )

    @property
    def latency_s(self) -> float:
        """One-way latency of this link (from its spec)."""
        return self.spec.latency_s

    @property
    def bandwidth_Bps(self) -> float:
        """Bandwidth of this link in bytes/second (from its spec)."""
        return self.spec.bandwidth_Bps

    def record(self, nbytes: int, held_seconds: float) -> None:
        """Account a completed transfer against this link's counters."""
        self.bytes_carried += nbytes
        self.busy_seconds += held_seconds

    def utilization(self, elapsed_seconds: float) -> float:
        """Fraction of ``elapsed_seconds`` this link spent busy."""
        if elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed_seconds)

    def __repr__(self) -> str:
        return f"<Link {self.label} ({self.spec.name})>"
