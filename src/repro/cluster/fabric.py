"""Timed point-to-point transfers over a topology.

:class:`Fabric` turns a :class:`~repro.cluster.topology.Topology` into an
executable data-movement service: ``fabric.transfer(src, dst, nbytes)``
returns a simulation process that occupies every link on the route for the
wormhole (cut-through) transfer time

    T = Σ link latencies + extra_latency + nbytes / (min link bandwidth × derate)

Contention is modeled by link serialization: a transfer must acquire all
route links (in canonical global order, which makes deadlock impossible)
before the clock starts.  This is the flow-level model standard in
collective-algorithm analysis (the α–β model with explicit shared links).

``bandwidth_derate`` is how MPI library profiles express imperfect
pipelining (e.g. host-staged sends through Spectrum MPI achieve ~70–80% of
raw link bandwidth); ``extra_latency`` expresses per-message software
overheads (protocol handshakes, staging-buffer management).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster.topology import Device, Topology
from repro.sim import Environment
from repro.sim.fastpath import fast_path_enabled

__all__ = ["Fabric", "FastPathStats", "LinkDownError", "TransferStats"]


class LinkDownError(RuntimeError):
    """Raised when a transfer's route crosses a link that is down.

    Flapping-rail fault injection marks links down; senders (the MPI
    layer) catch this and retry with backoff until the link comes back or
    their transfer timeout expires.
    """

    def __init__(self, label: str) -> None:
        super().__init__(f"link {label} is down")
        self.label = label


@dataclass
class FastPathStats:
    """Counters for the flow-level transfer shortcut (diagnostics only).

    Excluded from every compared payload: the split between fast and
    reference transfers depends on queue coincidences, and the whole
    point of the fast path is that the split is *unobservable* in
    simulated time.
    """

    #: Transfers completed through the closed-form shortcut.
    fast: int = 0
    #: Transfers that took the reference per-step path.
    fallback: int = 0
    #: Kernel events elided (one grant event per fast-acquired link).
    events_elided: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of transfers that took the shortcut."""
        total = self.fast + self.fallback
        return self.fast / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-able snapshot for diagnostics and E17 reporting."""
        return {
            "fast": self.fast,
            "fallback": self.fallback,
            "events_elided": self.events_elided,
            "hit_rate": round(self.hit_rate, 6),
        }


@dataclass
class TransferStats:
    """Aggregate accounting of everything a fabric has carried."""

    transfers: int = 0
    bytes_moved: int = 0
    seconds_busy: float = 0.0
    #: Per-link-type byte counters, e.g. ``{"nvlink2-gg": ..., "ib-edr": ...}``.
    bytes_by_link_type: dict[str, int] = field(default_factory=dict)

    def record(self, nbytes: int, seconds: float, link_types: list[str]) -> None:
        """Account one completed transfer."""
        self.transfers += 1
        self.bytes_moved += nbytes
        self.seconds_busy += seconds
        for lt in link_types:
            self.bytes_by_link_type[lt] = self.bytes_by_link_type.get(lt, 0) + nbytes


class Fabric:
    """Executable data-movement service over a :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.env: Environment = topology.env
        self.stats = TransferStats()
        self.fast_stats = FastPathStats()
        #: Optional span recorder (``repro.trace``); observation only.
        self.tracer: Any = None

    def transfer_seconds(self, src: Device, dst: Device, nbytes: int,
                         extra_latency: float = 0.0,
                         bandwidth_derate: float = 1.0) -> float:
        """Unloaded (contention-free) transfer time for planning/validation."""
        route = self.topology.route(src, dst)
        if not route:
            return 0.0
        latency = sum(link.latency_s for link in route) + extra_latency
        bottleneck = min(link.bandwidth_Bps for link in route) * bandwidth_derate
        return latency + nbytes / bottleneck

    def utilization_report(self, elapsed_seconds: float | None = None) -> dict[str, dict]:
        """Per-link-type utilization summary.

        Returns ``{link_type: {links, bytes, busy_s, mean_utilization}}``
        over ``elapsed_seconds`` (default: current simulation time).
        This is the view that shows *where* a collective's time went —
        e.g. the per-node EDR rails saturating under the default
        configuration while NVLink sits idle.
        """
        elapsed = self.env.now if elapsed_seconds is None else elapsed_seconds
        report: dict[str, dict] = {}
        for link in self.topology.links():
            entry = report.setdefault(
                link.spec.name,
                {"links": 0, "bytes": 0, "busy_s": 0.0, "mean_utilization": 0.0},
            )
            entry["links"] += 1
            entry["bytes"] += link.bytes_carried
            entry["busy_s"] += link.busy_seconds
        for entry in report.values():
            if elapsed > 0 and entry["links"]:
                entry["mean_utilization"] = min(
                    1.0, entry["busy_s"] / (entry["links"] * elapsed)
                )
        return report

    def transfer(self, src: Device, dst: Device, nbytes: int,
                 extra_latency: float = 0.0,
                 bandwidth_derate: float = 1.0):
        """A simulation process moving ``nbytes`` from ``src`` to ``dst``.

        Yields until the transfer completes; returns the elapsed seconds.
        ``src == dst`` completes immediately with 0.  ``nbytes`` may be 0
        (a pure control message still pays route latency).
        """
        return self.env.process(self.transfer_gen(src, dst, nbytes,
                                                  extra_latency, bandwidth_derate))

    def transfer_gen(self, src: Device, dst: Device, nbytes: int,
                     extra_latency: float = 0.0,
                     bandwidth_derate: float = 1.0):
        """Generator form of :meth:`transfer`, for ``yield from`` embedding.

        Embedding avoids one :class:`~repro.sim.engine.Process` per
        message — the difference between minutes and seconds on
        132-rank collective simulations.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        if not 0 < bandwidth_derate <= 1.0:
            raise ValueError(f"bandwidth_derate must be in (0, 1], got {bandwidth_derate}")
        return self._transfer(src, dst, nbytes, extra_latency, bandwidth_derate)

    def _fast_transfer_viable(self, info) -> bool:
        """True when the closed-form shortcut is provably equivalent.

        The reference path acquires the route's links through one queued
        grant event per link, popped in sequence at the current timestamp.
        Eliding those events is safe exactly when nothing else could have
        interleaved between the grant pops:

        * every route link is **idle** (free with an empty wait queue), so
          each grant would have been immediate; and
        * no other event is pending at the current timestamp — neither in
          the queue (``peek() > now``) nor later in the current dispatch
          cascade (``_cascade_rest == 0``) — so no concurrent process can
          request a route link, flap it down, or observe its occupancy
          between the grants the reference path would have scheduled.

        Under these conditions the shortcut acquires at the same instant,
        computes the same duration float, and releases at the same
        instant as the reference path; only the grant events (and hence
        the kernel event counter) differ.
        """
        env = self.env
        queue = env._queue
        if env._cascade_rest or (queue and queue[0][0] <= env._now):
            return False
        for link in info.acquire_order:
            resource = link.resource
            if resource._waiting or len(resource._users) >= resource.capacity:
                return False
        return True

    def _transfer(self, src, dst, nbytes, extra_latency, bandwidth_derate):
        env = self.env
        start = env.now
        info = self.topology.route_info(src, dst)
        if info is None:
            return 0.0
        self._check_route_up(info)
        duration = (
            info.latency_s
            + extra_latency
            + nbytes / (info.bottleneck_Bps * bandwidth_derate)
        )
        order = info.acquire_order
        held = []
        if fast_path_enabled() and self._fast_transfer_viable(info):
            # Flow-level shortcut: the route is uncontended and the
            # queue is quiet at this instant, so the reference path's
            # grant events would all pop back-to-back right now.
            # Acquire event-free; only the duration timeout remains.
            for link in order:
                held.append((link, link.resource.try_acquire()))
            fs = self.fast_stats
            fs.fast += 1
            fs.events_elided += len(order)
        else:
            self.fast_stats.fallback += 1
            # Reference path: acquire links in canonical global order
            # (deadlock-free: every transfer holding link k can only be
            # waiting on links > k).
            for link in order:
                req = link.resource.request()
                yield req
                held.append((link, req))
        acquired_at = env.now
        # A link may have flapped down while we queued for the route;
        # release everything and fail so the sender can back off.
        down = next((l for l in info.links if not l.up), None)
        if down is not None:
            for link, req in held:
                link.resource.release(req)
            raise LinkDownError(down.label)
        yield env.timeout(duration)
        for link, req in held:
            link.record(nbytes, duration)
            link.resource.release(req)
        elapsed = env.now - start
        self.stats.record(nbytes, elapsed, [l.spec.name for l in info.links])
        if self.tracer is not None and self.tracer.link_detail:
            self.tracer.on_transfer(src, dst, nbytes, start, acquired_at,
                                    env.now, info)
        return elapsed

    @staticmethod
    def _check_route_up(info) -> None:
        for link in info.links:
            if not link.up:
                raise LinkDownError(link.label)
