"""Cluster topology graph: devices, links, and routing.

The topology is a directed multigraph-free ``networkx.DiGraph`` whose nodes
are :class:`Device` instances (GPUs, CPUs/sockets, NICs, switches) and
whose edges each carry one :class:`~repro.cluster.links.Link`.  Routes are
minimum-latency shortest paths, computed lazily and cached — on the
fat-tree topologies we build, these coincide with the routes a real
subnet manager would program.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cluster.links import Link, LinkSpec
from repro.sim import Environment

__all__ = ["Device", "RouteInfo", "Topology"]


@dataclass(frozen=True)
class RouteInfo:
    """Precomputed per-route quantities for the transfer hot path."""

    links: tuple[Link, ...]
    #: Links re-ordered by global order key (deadlock-free acquisition).
    acquire_order: tuple[Link, ...]
    latency_s: float
    bottleneck_Bps: float


@dataclass(frozen=True, order=True)
class Device:
    """One addressable endpoint or forwarding element in the cluster.

    Attributes
    ----------
    kind:
        ``"gpu"``, ``"cpu"``, ``"nic"``, or ``"switch"``.
    node:
        Hosting node index; ``-1`` for network-side elements (switches).
    index:
        Index within the node (GPU 0–5, socket 0–1, rail 0–1) or the
        switch's global index.
    """

    kind: str
    node: int
    index: int

    def __str__(self) -> str:
        return f"{self.kind}:{self.node}:{self.index}"

    @staticmethod
    def gpu(node: int, index: int) -> "Device":
        """The ``index``-th GPU of ``node``."""
        return Device("gpu", node, index)

    @staticmethod
    def cpu(node: int, socket: int) -> "Device":
        """The ``socket``-th CPU socket of ``node``."""
        return Device("cpu", node, socket)

    @staticmethod
    def nic(node: int, rail: int) -> "Device":
        """The ``rail``-th InfiniBand NIC of ``node``."""
        return Device("nic", node, rail)

    @staticmethod
    def switch(index: int) -> "Device":
        """Global switch ``index`` (node = -1 by convention)."""
        return Device("switch", -1, index)

    @staticmethod
    def parse(text: str) -> "Device":
        """Parse the ``str(device)`` form ``"kind:node:index"`` back.

        This is the device syntax fault-schedule files use to name link
        endpoints (e.g. ``"nic:0:0"``, ``"switch:-1:1"``).
        """
        parts = text.strip().split(":")
        if len(parts) != 3:
            raise ValueError(f"bad device string {text!r}; want 'kind:node:index'")
        kind, node, index = parts
        if kind not in ("gpu", "cpu", "nic", "switch"):
            raise ValueError(f"unknown device kind {kind!r} in {text!r}")
        return Device(kind, int(node), int(index))


class Topology:
    """A directed graph of :class:`Device` nodes joined by :class:`Link` edges.

    Full-duplex physical links are added with :meth:`add_link` (default
    ``duplex=True``), which creates an independent serialized :class:`Link`
    in each direction.
    """

    def __init__(self, env: Environment, name: str = "cluster") -> None:
        self.env = env
        self.name = name
        self.graph = nx.DiGraph()
        self._route_cache: dict[tuple[Device, Device], list[Link]] = {}
        self._route_info_cache: dict[tuple[Device, Device], RouteInfo] = {}

    # -- construction ----------------------------------------------------
    def add_device(self, device: Device) -> Device:
        """Register a device (idempotent)."""
        self.graph.add_node(device)
        return device

    def add_link(self, a: Device, b: Device, spec: LinkSpec, duplex: bool = True) -> None:
        """Join ``a`` and ``b`` with a link of type ``spec``.

        With ``duplex`` (the default) an independent reverse link is
        created too.  Adding a second link between the same pair replaces
        the first — the model is one (possibly aggregated) link per
        device pair per direction.
        """
        self.add_device(a)
        self.add_device(b)
        self.graph.add_edge(a, b, link=Link(self.env, spec, f"{a}->{b}"))
        if duplex:
            self.graph.add_edge(b, a, link=Link(self.env, spec, f"{b}->{a}"))
        self._route_cache.clear()
        self._route_info_cache.clear()

    # -- queries ----------------------------------------------------------
    def devices(self, kind: str | None = None) -> list[Device]:
        """All devices, optionally filtered by ``kind``, in sorted order."""
        devs = (d for d in self.graph.nodes if kind is None or d.kind == kind)
        return sorted(devs)

    def gpus(self) -> list[Device]:
        """All GPU devices, ordered by (node, index) — the MPI rank order."""
        return self.devices("gpu")

    def link(self, a: Device, b: Device) -> Link:
        """The direct link from ``a`` to ``b`` (KeyError if absent)."""
        return self.graph.edges[a, b]["link"]

    def links(self) -> list[Link]:
        """Every directed link in the topology."""
        return [data["link"] for _, _, data in self.graph.edges(data=True)]

    def same_node(self, a: Device, b: Device) -> bool:
        """True when both devices live in the same physical node."""
        return a.node == b.node and a.node >= 0

    def route(self, src: Device, dst: Device) -> list[Link]:
        """Minimum-latency route from ``src`` to ``dst`` as a link list.

        Routes are cached; ``src == dst`` yields an empty route (a local
        operation that costs no fabric time).
        """
        if src == dst:
            return []
        cached = self._route_cache.get((src, dst))
        if cached is None:
            path = nx.shortest_path(
                self.graph, src, dst, weight=lambda a, b, d: d["link"].latency_s
            )
            cached = [self.graph.edges[u, v]["link"] for u, v in zip(path, path[1:])]
            self._route_cache[(src, dst)] = cached
        return cached

    def degrade_link(self, a: Device, b: Device, factor: float,
                     duplex: bool = True) -> None:
        """Multiply the a→b link's bandwidth factor by ``factor``.

        Models a failing/contended component (flapping rail, mis-seated
        cable, PCIe downtraining) for fault-injection studies.  Repeated
        degradations *compose*: the effective bandwidth is always
        ``base × Π factors``, rebuilt from the pristine spec, so the name
        carries exactly one ``-degraded`` suffix.  With ``duplex`` the
        reverse direction degrades too.  Route caches are invalidated;
        accumulated traffic counters are preserved.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        for src, dst in self._directions(a, b, duplex):
            link = self.link(src, dst)
            link.set_factor(link.degrade_factor * factor)
        self._invalidate_routes()

    def set_link_factor(self, a: Device, b: Device, factor: float,
                        duplex: bool = True) -> None:
        """Set the a→b bandwidth factor *absolutely* (1.0 = pristine).

        Unlike :meth:`degrade_link` this does not compose — it is the
        primitive fault revert uses to restore a link to exactly the
        factor it had before a fault was applied.
        """
        for src, dst in self._directions(a, b, duplex):
            self.link(src, dst).set_factor(factor)
        self._invalidate_routes()

    def restore_link(self, a: Device, b: Device, duplex: bool = True) -> None:
        """Undo all degradation and down state on the a→b link.

        The inverse of :meth:`degrade_link` / :meth:`set_link_up` needed
        by flapping-link fault injection: the spec returns to the pristine
        datasheet values (original name, latency, bandwidth) and the link
        is brought back up.
        """
        for src, dst in self._directions(a, b, duplex):
            link = self.link(src, dst)
            link.set_factor(1.0)
            link.up = True
        self._invalidate_routes()

    def set_link_up(self, a: Device, b: Device, up: bool,
                    duplex: bool = True) -> None:
        """Mark the a→b link up or down (down = transfers fail and retry)."""
        for src, dst in self._directions(a, b, duplex):
            self.link(src, dst).up = up
        self._invalidate_routes()

    def link_factor(self, a: Device, b: Device) -> float:
        """Current bandwidth factor of the a→b link (1.0 = healthy)."""
        return self.link(a, b).degrade_factor

    def _directions(self, a: Device, b: Device,
                    duplex: bool) -> list[tuple[Device, Device]]:
        return [(a, b)] + ([(b, a)] if duplex else [])

    def _invalidate_routes(self) -> None:
        self._route_cache.clear()
        self._route_info_cache.clear()

    def route_info(self, src: Device, dst: Device) -> RouteInfo | None:
        """Cached :class:`RouteInfo` for the route, ``None`` if src == dst."""
        if src == dst:
            return None
        info = self._route_info_cache.get((src, dst))
        if info is None:
            links = tuple(self.route(src, dst))
            info = RouteInfo(
                links=links,
                acquire_order=tuple(sorted(links, key=lambda l: l.order_key)),
                latency_s=sum(l.latency_s for l in links),
                bottleneck_Bps=min(l.bandwidth_Bps for l in links),
            )
            self._route_info_cache[(src, dst)] = info
        return info

    def route_latency(self, src: Device, dst: Device) -> float:
        """Sum of link latencies along the route (unloaded)."""
        return sum(link.latency_s for link in self.route(src, dst))

    def route_bandwidth(self, src: Device, dst: Device) -> float:
        """Bottleneck (minimum) bandwidth along the route in bytes/second."""
        route = self.route(src, dst)
        if not route:
            return float("inf")
        return min(link.bandwidth_Bps for link in route)

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name}: {len(self.graph.nodes)} devices, "
            f"{self.graph.number_of_edges()} links>"
        )
