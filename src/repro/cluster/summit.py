"""Summit (ORNL) topology preset.

One Summit node is an IBM AC922: two POWER9 sockets, three V100 GPUs per
socket.  Within a socket, every GPU↔GPU and GPU↔CPU pair is joined by two
NVLink 2.0 bricks (2 × 25 GB/s = 50 GB/s per direction).  The sockets are
joined by a 64 GB/s X-bus.  Each socket hosts one Mellanox EDR InfiniBand
rail (100 Gbit/s ≈ 12.5 GB/s, ~12.3 GB/s achievable) into a non-blocking
fat tree.

The fat tree is modeled as leaf switches (``nodes_per_leaf`` nodes each)
with an aggregated non-blocking uplink into a single spine: because
Summit's fabric has full bisection bandwidth, the only contended fabric
resources are the per-node injection links — which the star-of-leaves
preserves exactly while keeping the event count low.

The paper evaluates up to 132 GPUs = 22 nodes; :func:`build_summit`
defaults to that size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.links import LinkSpec
from repro.cluster.topology import Device, Topology
from repro.sim import Environment
from repro.sim.units import gbyte_per_s, microseconds

__all__ = ["SUMMIT_NODE", "SummitNodeSpec", "build_summit"]


@dataclass(frozen=True)
class SummitNodeSpec:
    """Shape of one AC922 node."""

    sockets: int = 2
    gpus_per_socket: int = 3
    rails: int = 2

    @property
    def gpus_per_node(self) -> int:
        """Total GPUs in the node (6 on Summit)."""
        return self.sockets * self.gpus_per_socket


#: The production Summit node shape (2 sockets × 3 V100, dual-rail EDR).
SUMMIT_NODE = SummitNodeSpec()

# Link datasheet values.  Latencies are one-way, measured-scale numbers:
# NVLink p2p ~1.9 µs (driver + fabric), X-bus sub-µs, PCIe ~0.9 µs, EDR
# NIC+switch hop ~0.75 µs (OSU osu_latency on EDR reports ~1.5 µs/2 hops).
NVLINK2_GPU_GPU = LinkSpec("nvlink2-gg", microseconds(1.9), gbyte_per_s(47.0))
NVLINK2_GPU_CPU = LinkSpec("nvlink2-gc", microseconds(1.9), gbyte_per_s(47.0))
XBUS = LinkSpec("x-bus", microseconds(0.6), gbyte_per_s(58.0))
PCIE_CPU_NIC = LinkSpec("pcie4-x8", microseconds(0.9), gbyte_per_s(15.0))
IB_EDR_RAIL = LinkSpec("ib-edr", microseconds(0.75), gbyte_per_s(12.3))


def _leaf_uplink(nodes_per_leaf: int, rails: int) -> LinkSpec:
    """Aggregated non-blocking uplink for one leaf switch."""
    return LinkSpec(
        "ib-edr-uplink",
        microseconds(0.3),
        IB_EDR_RAIL.bandwidth_Bps * nodes_per_leaf * rails,
    )


def build_summit(
    env: Environment,
    nodes: int = 22,
    node_spec: SummitNodeSpec = SUMMIT_NODE,
    nodes_per_leaf: int = 18,
) -> Topology:
    """Build a Summit-like topology with ``nodes`` AC922 nodes.

    Returns a :class:`~repro.cluster.topology.Topology` whose GPU devices,
    in sorted order, define the MPI rank order used throughout the
    reproduction (rank = node * 6 + local GPU index).
    """
    if nodes < 1:
        raise ValueError(f"need at least one node, got {nodes}")
    if nodes_per_leaf < 1:
        raise ValueError(f"nodes_per_leaf must be >= 1, got {nodes_per_leaf}")
    topo = Topology(env, name=f"summit-{nodes}n")

    n_leaves = (nodes + nodes_per_leaf - 1) // nodes_per_leaf
    spine = Device.switch(0)
    leaves = [Device.switch(1 + i) for i in range(n_leaves)]
    uplink = _leaf_uplink(nodes_per_leaf, node_spec.rails)
    if n_leaves > 1:
        for leaf in leaves:
            topo.add_link(leaf, spine, uplink)

    for node in range(nodes):
        cpus = [Device.cpu(node, s) for s in range(node_spec.sockets)]
        # Inter-socket X-bus.
        for a, b in zip(cpus, cpus[1:]):
            topo.add_link(a, b, XBUS)
        leaf = leaves[node // nodes_per_leaf]
        for socket in range(node_spec.sockets):
            cpu = cpus[socket]
            gpus = [
                Device.gpu(node, socket * node_spec.gpus_per_socket + g)
                for g in range(node_spec.gpus_per_socket)
            ]
            # Same-socket GPUs are all-to-all NVLink-connected, and each
            # GPU also has an NVLink path to its socket's CPU.
            for i, gpu in enumerate(gpus):
                topo.add_link(gpu, cpu, NVLINK2_GPU_CPU)
                for other in gpus[i + 1 :]:
                    topo.add_link(gpu, other, NVLINK2_GPU_GPU)
            # One EDR rail per socket (dual-rail node total).
            rail = socket % node_spec.rails
            nic = Device.nic(node, rail)
            topo.add_link(cpu, nic, PCIE_CPU_NIC)
            topo.add_link(nic, leaf, IB_EDR_RAIL)
    return topo
