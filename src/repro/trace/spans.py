"""Hierarchical span recording against simulated time.

A :class:`SpanRecorder` is an observation-only hook threaded through the
simulation stack — trainer, Horovod runtime, communicator and fabric all
carry an optional ``tracer`` attribute that defaults to ``None``, exactly
like the telemetry probe.  When attached, each layer records *spans*:
``(category, name, start_s, end_s, parent, tags)`` intervals in simulated
seconds, nested parent/child:

    ITERATION (rank)
      ├─ INPUT_STALL / FORWARD / BACKWARD / BARRIER_WAIT / OPTIMIZER
    NEGOTIATE (coordinator cycle)
    GROUP (fused buffer)
      ├─ QUEUE / MEMCPY_IN / COMPRESS / DECOMPRESS / MEMCPY_OUT
      └─ ALLREDUCE
           └─ COLLECTIVE (algorithm)
                └─ ALG_STEP (per rank)
                     └─ TRANSFER (per link traversal; ``level="links"``)

The recorder never creates simulation events and never reads anything but
``env.now`` at instants the instrumented code already reaches: tracing on
vs. off is bit-identical (enforced by ``tests/trace/test_perturbation``).

Spans are picklable (they ride inside training checkpoints) and round-trip
through a self-contained JSON format via :func:`save_spans` /
:func:`load_spans`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanRecorder",
    "load_spans",
    "save_spans",
    "well_nested_violations",
]

#: Version stamp for the on-disk span JSON format.
SPAN_SCHEMA_VERSION = 1

#: Recorder detail levels: ``"spans"`` stops at per-rank algorithm steps,
#: ``"links"`` additionally records one TRANSFER span per link traversal.
LEVELS = ("spans", "links")


@dataclass
class Span:
    """One traced interval in simulated seconds.

    ``end_s`` is mutable so begin/end style spans (GROUP, ALLREDUCE,
    COLLECTIVE, ALG_STEP) can exist — and parent children — before they
    finish.  ``parent`` is a span id or ``None`` for roots.
    """

    sid: int
    parent: int | None
    cat: str
    name: str
    start_s: float
    end_s: float
    tags: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "sid": self.sid, "parent": self.parent, "cat": self.cat,
            "name": self.name, "start_s": self.start_s, "end_s": self.end_s,
            "tags": self.tags,
        }


class SpanRecorder:
    """Collects spans from every instrumented layer of one simulation.

    Attach with :meth:`attach` after the stack is built (mirrors
    ``TelemetryProbe.attach``).  The recorder keeps a little cross-layer
    rendezvous state so children can find parents created in other
    layers:

    - ``comm_parent``: sid of the runtime's in-flight ALLREDUCE span,
      set around the ``comm.allreduce`` yield (the coordinator serialises
      groups, so a single slot suffices).
    - ``_rank_parent``: world rank -> sid of that rank's open ALG_STEP,
      registered by :meth:`wrap_alg` so fabric TRANSFER spans can parent
      under the algorithm step that issued the send.
    """

    def __init__(self, level: str = "spans") -> None:
        if level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        self.level = level
        self.spans: list[Span] = []
        self._next_sid = 0
        self.comm_parent: int | None = None
        self._rank_parent: dict[int, int] = {}
        self._env: Any = None
        self._device_rank: dict[Any, int] = {}

    # -- properties ---------------------------------------------------

    @property
    def link_detail(self) -> bool:
        return self.level == "links"

    @property
    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    # -- recording ----------------------------------------------------

    def record(self, cat: str, name: str, start_s: float, end_s: float,
               parent: int | None = None, **tags: Any) -> int:
        """Record a completed span; returns its id."""
        sid = self._next_sid
        self._next_sid += 1
        self.spans.append(Span(sid, parent, cat, name, start_s, end_s,
                               dict(tags)))
        return sid

    def begin(self, cat: str, name: str, start_s: float,
              parent: int | None = None, **tags: Any) -> int:
        """Open a span whose end is not yet known (``end_s == start_s``)."""
        return self.record(cat, name, start_s, start_s, parent, **tags)

    def end(self, sid: int, end_s: float) -> None:
        """Close a span opened with :meth:`begin`."""
        self.spans[sid].end_s = end_s

    # -- attachment ---------------------------------------------------

    def attach(self, env: Any = None, comm: Any = None, runtime: Any = None,
               trainer: Any = None, fabric: Any = None) -> None:
        """Install this recorder on each layer's ``tracer`` slot."""
        if env is not None:
            self._env = env
        if comm is not None:
            comm.tracer = self
            self._device_rank = {dev: rank
                                 for rank, dev in enumerate(comm.devices)}
        if runtime is not None:
            runtime.tracer = self
        if trainer is not None:
            trainer.tracer = self
        if fabric is not None:
            fabric.tracer = self

    # -- cross-layer hooks --------------------------------------------

    def wrap_alg(self, gen: Iterator, world_rank: int, parent: int,
                 name: str) -> Iterator:
        """Wrap one rank's algorithm generator in an ALG_STEP span.

        Pure generator delegation — the wrapped process schedules exactly
        the events the bare one would.  While the step is open the rank is
        registered in ``_rank_parent`` so its TRANSFER spans nest here.
        """
        sid = self.begin("ALG_STEP", name, self.now, parent=parent,
                         rank=world_rank)
        prev = self._rank_parent.get(world_rank)
        self._rank_parent[world_rank] = sid
        try:
            result = yield from gen
        finally:
            if prev is None:
                self._rank_parent.pop(world_rank, None)
            else:
                self._rank_parent[world_rank] = prev
            self.end(sid, self.now)
        return result

    def on_transfer(self, src: Any, dst: Any, nbytes: int, start_s: float,
                    acquired_s: float, end_s: float, info: Any) -> None:
        """Record one fabric link traversal (``level="links"`` only)."""
        src_rank = self._device_rank.get(src)
        parent = (self._rank_parent.get(src_rank)
                  if src_rank is not None else None)
        links = [link.label for link in info.links]
        kinds = sorted({link.spec.name for link in info.links})
        self.record(
            "TRANSFER", "->".join(kinds) if kinds else "route",
            start_s, end_s, parent=parent,
            src=src_rank, dst=self._device_rank.get(dst),
            bytes=int(nbytes), wait_s=acquired_s - start_s, links=links,
        )

    # -- queries ------------------------------------------------------

    def by_cat(self, *cats: str) -> list[Span]:
        wanted = set(cats)
        return [s for s in self.spans if s.cat in wanted]

    def children_of(self, sid: int) -> list[Span]:
        return [s for s in self.spans if s.parent == sid]

    def child_index(self) -> dict[int | None, list[Span]]:
        index: dict[int | None, list[Span]] = {}
        for span in self.spans:
            index.setdefault(span.parent, []).append(span)
        return index

    # -- persistence --------------------------------------------------

    def __getstate__(self) -> dict:
        """Checkpoint-safe state: drop live references, keep the spans.

        ``comm_parent``/``_rank_parent`` are transient rendezvous slots;
        checkpoints are cut at iteration barriers where no collective is
        in flight, so they are always empty there.
        """
        state = self.__dict__.copy()
        state["_env"] = None
        state["_device_rank"] = {}
        state["comm_parent"] = None
        state["_rank_parent"] = {}
        return state

    def to_payload(self) -> dict:
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "level": self.level,
            "spans": [s.to_dict() for s in self.spans],
        }


def save_spans(recorder: SpanRecorder, path: str | Path) -> Path:
    """Write a recorder's spans as self-contained JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(recorder.to_payload(), indent=1))
    return path


def load_spans(source: str | Path | dict) -> SpanRecorder:
    """Rebuild a :class:`SpanRecorder` from :func:`save_spans` output."""
    payload = (source if isinstance(source, dict)
               else json.loads(Path(source).read_text()))
    version = payload.get("schema_version")
    if version != SPAN_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported span schema {version!r} "
            f"(this build reads {SPAN_SCHEMA_VERSION})")
    rec = SpanRecorder(level=payload.get("level", "spans"))
    for item in payload["spans"]:
        rec.spans.append(Span(
            sid=int(item["sid"]),
            parent=item["parent"],
            cat=item["cat"],
            name=item["name"],
            start_s=float(item["start_s"]),
            end_s=float(item["end_s"]),
            tags=dict(item.get("tags", {})),
        ))
    rec._next_sid = 1 + max((s.sid for s in rec.spans), default=-1)
    return rec


def well_nested_violations(spans: Iterable[Span],
                           slop: float = 1e-9) -> list[str]:
    """Structural checks: every parent exists, children fit inside it.

    Returns human-readable violation strings (empty == well-nested).
    Shared helper for the property tests and ``repro trace`` validation.
    """
    spans = list(spans)
    by_sid = {s.sid: s for s in spans}
    problems = []
    for span in spans:
        if span.end_s < span.start_s - slop:
            problems.append(f"span {span.sid} ({span.cat}) ends before start")
        if span.parent is None:
            continue
        parent = by_sid.get(span.parent)
        if parent is None:
            problems.append(
                f"span {span.sid} ({span.cat}) has orphan parent "
                f"{span.parent}")
            continue
        if (span.start_s < parent.start_s - slop
                or span.end_s > parent.end_s + slop):
            problems.append(
                f"span {span.sid} ({span.cat} [{span.start_s:.6f},"
                f" {span.end_s:.6f}]) escapes parent {parent.sid}"
                f" ({parent.cat} [{parent.start_s:.6f}, {parent.end_s:.6f}])")
    return problems
