"""Span-aware Chrome trace export, merged with the runtime timeline.

One coherent ``traceEvents`` stream under a single pid/tid naming scheme:

* ``pid 0`` — the Horovod runtime timeline: one thread row per phase
  (exactly the PR 2 layout) plus a ``counters`` row
  (``tid == len(PHASES)``) carrying every tracked metric series as
  ``"ph": "C"`` events;
* ``pid 1`` — the coordinator: negotiation cycles, fused-buffer groups
  and their data-plane phases, and the collective spans;
* ``pid 2 + rank`` — one process per rank: the iteration phase stack,
  the rank's algorithm steps and (``level="links"``) its link transfers.

Flow events (``ph "s"``/``"f"``, one flow id per collective) tie each
collective's per-rank algorithm steps back to the coordinator span, so
Perfetto draws the cross-rank arrows the Horovod timeline lacks.

Metadata (``"M"``) naming events come first; every other event is sorted
by ``ts`` (stable), which the golden-trace test pins.
"""

from __future__ import annotations

import json
from typing import Any

from repro.horovod.timeline import PHASES
from repro.trace.spans import Span, SpanRecorder

__all__ = ["merged_chrome_trace"]

#: Thread layout inside the coordinator process (pid 1).
_COORD_THREADS = {
    "NEGOTIATE": (0, "negotiation"),
    "GROUP": (1, "fused groups"),
    "QUEUE": (2, "data plane"),
    "MEMCPY_IN": (2, "data plane"),
    "COMPRESS": (2, "data plane"),
    "ALLREDUCE": (2, "data plane"),
    "DECOMPRESS": (2, "data plane"),
    "MEMCPY_OUT": (2, "data plane"),
    "COLLECTIVE": (3, "collectives"),
}

#: Thread layout inside each per-rank process (pid 2 + rank).
_RANK_THREADS = {
    "ITERATION": (0, "iteration"),
    "INPUT_STALL": (0, "iteration"),
    "FORWARD": (0, "iteration"),
    "BACKWARD": (0, "iteration"),
    "BARRIER_WAIT": (0, "iteration"),
    "OPTIMIZER": (0, "iteration"),
    "ALG_STEP": (1, "collective steps"),
    "TRANSFER": (2, "link transfers"),
}


def _span_rank(span: Span, by_sid: dict[int, Span]) -> int | None:
    """The world rank a span belongs to, walking up to a tagged ancestor."""
    cursor: Span | None = span
    while cursor is not None:
        if "rank" in cursor.tags:
            return cursor.tags["rank"]
        if "src" in cursor.tags:
            return cursor.tags["src"]
        cursor = by_sid.get(cursor.parent) if cursor.parent is not None \
            else None
    return None


def merged_chrome_trace(timeline: Any = None, registry: Any = None,
                        recorder: SpanRecorder | None = None) -> str:
    """Merge timeline phases, counter tracks and trace spans into one JSON."""
    meta: list[dict] = []
    events: list[dict] = []
    named_procs: set[int] = set()
    named_threads: set[tuple[int, int]] = set()

    def process(pid: int, name: str) -> None:
        if pid not in named_procs:
            named_procs.add(pid)
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})

    def thread(pid: int, tid: int, name: str) -> None:
        if (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": name}})

    if timeline is not None:
        process(0, "horovod runtime")
        for ev in timeline.events:
            tid = PHASES.index(ev.phase)
            thread(0, tid, ev.phase)
            events.append({
                "name": ev.label, "cat": ev.phase, "ph": "X",
                "ts": ev.start_s * 1e6, "dur": ev.duration_s * 1e6,
                "pid": 0, "tid": tid,
            })

    if registry is not None:
        process(0, "horovod runtime")
        counter_tid = len(PHASES)
        for family in registry.collect():
            if not family.tracked:
                continue
            for values, child in family.child_items():
                if not child.track:
                    continue
                labels = ",".join(
                    f'{n}="{v}"' for n, v in zip(family.labelnames, values))
                series = (f"{family.name}{{{labels}}}" if labels
                          else family.name)
                thread(0, counter_tid, "counters")
                for t, v in child.track:
                    events.append({
                        "name": series, "ph": "C", "ts": t * 1e6,
                        "pid": 0, "tid": counter_tid,
                        "args": {family.name: v},
                    })

    if recorder is not None:
        by_sid = {s.sid: s for s in recorder.spans}
        for span in recorder.spans:
            if span.cat in _COORD_THREADS:
                pid = 1
                tid, tname = _COORD_THREADS[span.cat]
                process(1, "coordinator")
            else:
                rank = _span_rank(span, by_sid)
                tid, tname = _RANK_THREADS.get(span.cat, (3, "other"))
                if rank is None:
                    pid = 1
                    process(1, "coordinator")
                else:
                    pid = 2 + rank
                    process(pid, f"rank {rank}")
            thread(pid, tid, tname)
            events.append({
                "name": span.name, "cat": span.cat, "ph": "X",
                "ts": span.start_s * 1e6, "dur": span.duration_s * 1e6,
                "pid": pid, "tid": tid, "args": dict(span.tags),
            })
            # One flow per collective, fanning out to its rank steps.
            if span.cat == "COLLECTIVE":
                events.append({
                    "name": "allreduce", "cat": "flow", "ph": "s",
                    "id": span.sid, "ts": span.start_s * 1e6,
                    "pid": 1, "tid": _COORD_THREADS["COLLECTIVE"][0],
                })
            elif span.cat == "ALG_STEP" and span.parent is not None:
                rank = span.tags.get("rank")
                events.append({
                    "name": "allreduce", "cat": "flow", "ph": "f",
                    "bp": "e", "id": span.parent,
                    "ts": span.start_s * 1e6,
                    "pid": 1 if rank is None else 2 + rank,
                    "tid": _RANK_THREADS["ALG_STEP"][0],
                })

    events.sort(key=lambda e: e["ts"])
    return json.dumps({"traceEvents": meta + events}, indent=1)
