"""Exact simulated critical path and ranked bottleneck diagnosis.

The PR 2 attribution engine (:mod:`repro.telemetry.attribution`) splits
each steady iteration's wall time into six buckets.  This module refines
that flat decomposition into an ordered *critical path*: a sequence of
:class:`PathSegment` intervals that tile the marking rank's iteration
wall time, each pinned to the concrete span (and rank, and link) that
bounded the simulation during that interval.

The construction deliberately mirrors the attribution formulas step for
step — same marking rank, same tail window, same clipped-union sweep of
communication spans, same suspect-fraction split — so summing segment
seconds per bucket reproduces the E14 buckets to float rounding.  That
reconciliation is an enforced invariant, not an aspiration
(``tests/trace/test_critical.py``).

On top of the per-iteration paths the report ranks *dwell*: longest-path
seconds by phase, by bounding rank (the straggler that stretched the
barrier, or the rank whose algorithm step finished last), and — at
``level="links"`` — by fabric link.  Per-span slack is the time a span
could have grown without moving the barrier (0 for on-path spans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.attribution import BUCKETS, COMM_PHASES, _union_seconds
from repro.trace.spans import Span, SpanRecorder

__all__ = [
    "CriticalPathReport",
    "IterationPath",
    "PathSegment",
    "compute_critical_path",
    "explain_measurement",
]


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path.

    ``bucket`` is an attribution bucket name, or ``"cycle_wait"`` for
    idle-tail intervals that the iteration-level suspect fraction later
    splits into ``fusion_wait``/``fault_suspect`` (exactly as the
    attribution engine does).  ``sid`` points at the bounding span when
    one exists; ``rank`` at the rank whose work bounded the interval.
    """

    start_s: float
    end_s: float
    bucket: str
    cat: str
    name: str
    sid: int | None = None
    rank: int | None = None

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s


@dataclass
class IterationPath:
    """The ordered critical path of one steady iteration."""

    iteration: int
    wall_s: float
    suspect_frac: float
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def path_s(self) -> float:
        """Total critical-path length (== ``wall_s`` up to rounding)."""
        return sum(seg.seconds for seg in self.segments)

    def buckets(self) -> dict[str, float]:
        """Segment seconds folded into the six attribution buckets."""
        vals = dict.fromkeys(BUCKETS, 0.0)
        idle = 0.0
        for seg in self.segments:
            if seg.bucket == "cycle_wait":
                idle += seg.seconds
            else:
                vals[seg.bucket] += seg.seconds
        vals["fusion_wait"] += idle * (1.0 - self.suspect_frac)
        vals["fault_suspect"] += idle * self.suspect_frac
        return vals


def _bounding_step(allreduce_span: Span,
                   children: dict[int | None, list[Span]]) -> Span | None:
    """The latest-finishing per-rank ALG_STEP under an ALLREDUCE span."""
    steps = [
        step
        for coll in children.get(allreduce_span.sid, [])
        if coll.cat == "COLLECTIVE"
        for step in children.get(coll.sid, [])
        if step.cat == "ALG_STEP"
    ]
    return max(steps, key=lambda s: (s.end_s, s.sid)) if steps else None


def compute_critical_path(recorder: SpanRecorder, timeline: Any = None,
                          warmup_iterations: int = 1, gpus: int = 0,
                          label: str = "") -> "CriticalPathReport":
    """Walk the span DAG into per-iteration critical paths.

    ``timeline`` (optional) supplies failure-detector SUSPECT windows for
    the idle-tail split, exactly as in ``attribute_samples``; without it
    the suspect fraction is 0 (fault-free traces are unaffected).
    """
    children = recorder.child_index()
    comm = sorted((s for s in recorder.spans if s.cat in COMM_PHASES),
                  key=lambda s: (s.start_s, s.end_s, s.sid))
    suspect_spans = (
        [(ev.start_s, ev.end_s) for ev in timeline.spans("SUSPECT")]
        if timeline is not None else []
    )

    by_iteration: dict[int, list[Span]] = {}
    for span in recorder.spans:
        if span.cat == "ITERATION":
            by_iteration.setdefault(span.tags["iteration"], []).append(span)
    if not by_iteration:
        raise ValueError("trace contains no ITERATION spans")

    paths: list[IterationPath] = []
    slack_s: dict[int, float] = {}
    link_dwell_s: dict[str, float] = {}

    for iteration in sorted(by_iteration):
        if iteration < warmup_iterations:
            continue
        group = by_iteration[iteration]
        mark = min(group, key=lambda s: s.tags["rank"])
        mrank = mark.tags["rank"]
        kids = {c.cat: c for c in children.get(mark.sid, [])}
        fw, bw, opt = kids["FORWARD"], kids["BACKWARD"], kids["OPTIMIZER"]
        start, end = mark.start_s, mark.end_s
        stall_end, forward_end = fw.start_s, fw.end_s
        last_emit, barrier = bw.end_s, opt.start_s

        # Peer emissions: straggler skew and backward-span slack.
        emits = []
        for span in group:
            b = next(c for c in children.get(span.sid, [])
                     if c.cat == "BACKWARD")
            emits.append((b.end_s, span.tags["rank"], b.sid))
        emit_max, straggler_rank, straggler_sid = max(emits)
        for emit, _rank, sid in emits:
            slack_s[sid] = emit_max - emit

        segments: list[PathSegment] = []
        if stall_end > start:
            stall = kids.get("INPUT_STALL")
            segments.append(PathSegment(
                start, stall_end, "input_stall", "INPUT_STALL",
                "input pipeline stall",
                sid=stall.sid if stall is not None else None, rank=mrank))
        segments.append(PathSegment(
            stall_end, forward_end, "compute", "FORWARD", "forward pass",
            sid=fw.sid, rank=mrank))
        segments.append(PathSegment(
            forward_end, last_emit, "compute", "BACKWARD", "backward pass",
            sid=bw.sid, rank=mrank))

        skew = max(0.0, emit_max - last_emit)
        if skew > 0:
            segments.append(PathSegment(
                last_emit, last_emit + skew, "straggler_skew", "BACKWARD",
                f"rank {straggler_rank} backward (straggler)",
                sid=straggler_sid, rank=straggler_rank))

        # Tail window: the same clipped-union sweep the attribution
        # engine runs, but keeping *which* span covered each interval.
        tail_lo = min(emit_max, barrier)
        window = [s for s in comm
                  if s.end_s > tail_lo and s.start_s < barrier]
        window.sort(key=lambda s: (max(s.start_s, tail_lo),
                                   min(s.end_s, barrier), s.sid))
        cursor = tail_lo
        for span in window:
            lo = max(span.start_s, tail_lo)
            hi = min(span.end_s, barrier)
            if hi <= cursor:
                continue
            if lo > cursor:
                segments.append(PathSegment(
                    cursor, lo, "cycle_wait", "CYCLE_WAIT",
                    "fusion cycle wait"))
            lo = max(lo, cursor)
            rank = None
            if span.cat == "ALLREDUCE":
                step = _bounding_step(span, children)
                if step is not None:
                    rank = step.tags.get("rank")
                    for transfer in children.get(step.sid, []):
                        if transfer.cat != "TRANSFER":
                            continue
                        overlap = (min(transfer.end_s, hi)
                                   - max(transfer.start_s, lo))
                        if overlap <= 0:
                            continue
                        for link in transfer.tags.get("links", []):
                            link_dwell_s[link] = (
                                link_dwell_s.get(link, 0.0) + overlap)
            segments.append(PathSegment(
                lo, hi, "exposed_comm", span.cat, span.name,
                sid=span.sid, rank=rank))
            cursor = hi
        if barrier > cursor:
            segments.append(PathSegment(
                cursor, barrier, "cycle_wait", "CYCLE_WAIT",
                "fusion cycle wait"))

        segments.append(PathSegment(
            barrier, end, "compute", "OPTIMIZER", "optimizer update",
            sid=opt.sid, rank=mrank))

        tail = barrier - tail_lo
        idle = sum(seg.seconds for seg in segments
                   if seg.bucket == "cycle_wait")
        suspect_frac = 0.0
        if idle > 0 and suspect_spans:
            overlap = _union_seconds(suspect_spans, tail_lo, barrier)
            suspect_frac = min(1.0, overlap / tail) if tail > 0 else 0.0
        paths.append(IterationPath(iteration, end - start, suspect_frac,
                                   segments))

    if not paths:
        raise ValueError(
            f"all {len(by_iteration)} traced iterations fell inside the "
            f"{warmup_iterations}-iteration warmup")

    # On-path spans have no slack; per-collective step slack is global.
    for path in paths:
        for seg in path.segments:
            if seg.sid is not None and seg.sid not in slack_s:
                slack_s[seg.sid] = 0.0
    for span in recorder.spans:
        if span.cat != "COLLECTIVE":
            continue
        steps = [c for c in children.get(span.sid, [])
                 if c.cat == "ALG_STEP"]
        if steps:
            bound = max(s.end_s for s in steps)
            for step in steps:
                slack_s[step.sid] = bound - step.end_s

    return CriticalPathReport(
        gpus=gpus, label=label, level=recorder.level,
        warmup_iterations=warmup_iterations, iterations=paths,
        slack_s=slack_s, link_dwell_s=link_dwell_s,
        spans={s.sid: s for s in recorder.spans})


@dataclass
class CriticalPathReport:
    """Per-iteration critical paths plus ranked dwell aggregations."""

    gpus: int
    label: str
    level: str
    warmup_iterations: int
    iterations: list[IterationPath]
    slack_s: dict[int, float]
    link_dwell_s: dict[str, float]
    spans: dict[int, Span]

    @property
    def n(self) -> int:
        return len(self.iterations)

    @property
    def mean_wall_s(self) -> float:
        return sum(p.wall_s for p in self.iterations) / self.n

    @property
    def mean_path_s(self) -> float:
        """Mean critical-path length (== mean wall up to rounding)."""
        return sum(p.path_s for p in self.iterations) / self.n

    def totals(self) -> dict[str, float]:
        """Mean seconds per attribution bucket — E14-comparable."""
        return {
            bucket: sum(p.buckets()[bucket] for p in self.iterations) / self.n
            for bucket in BUCKETS
        }

    def shares(self) -> dict[str, float]:
        wall = self.mean_wall_s
        return {k: v / wall for k, v in self.totals().items()}

    @property
    def max_sum_error(self) -> float:
        """Worst relative |path − wall| across iterations."""
        return max(
            abs(p.path_s - p.wall_s) / p.wall_s if p.wall_s > 0 else 0.0
            for p in self.iterations
        )

    def share_of_cat(self, cat: str) -> float:
        """Critical-path share of one span category (e.g. ALLREDUCE)."""
        total = sum(seg.seconds for p in self.iterations
                    for seg in p.segments if seg.cat == cat)
        return total / self.n / self.mean_wall_s

    @property
    def exposed_allreduce_share(self) -> float:
        """Share of the critical path spent inside exposed allreduces —
        the quantity the paper's fusion/cycle tuning collapses."""
        return self.share_of_cat("ALLREDUCE")

    def dwell_by_phase(self) -> list[tuple[str, float]]:
        """Mean on-path seconds per phase, longest dwell first."""
        acc: dict[str, float] = {}
        for p in self.iterations:
            for seg in p.segments:
                acc[seg.cat] = acc.get(seg.cat, 0.0) + seg.seconds
        return sorted(((cat, s / self.n) for cat, s in acc.items()),
                      key=lambda kv: -kv[1])

    def dwell_by_rank(self) -> list[tuple[int, float]]:
        """Mean on-path seconds per bounding rank, longest first."""
        acc: dict[int, float] = {}
        for p in self.iterations:
            for seg in p.segments:
                if seg.rank is not None:
                    acc[seg.rank] = acc.get(seg.rank, 0.0) + seg.seconds
        return sorted(((r, s / self.n) for r, s in acc.items()),
                      key=lambda kv: -kv[1])

    def dwell_by_link(self) -> list[tuple[str, float]]:
        """Mean on-path seconds per fabric link (``level="links"``)."""
        return sorted(((label, s / self.n)
                       for label, s in self.link_dwell_s.items()),
                      key=lambda kv: -kv[1])

    def top_spans(self, count: int = 3) -> list[dict]:
        """The spans with the most critical-path dwell."""
        acc: dict[int, float] = {}
        for p in self.iterations:
            for seg in p.segments:
                if seg.sid is not None:
                    acc[seg.sid] = acc.get(seg.sid, 0.0) + seg.seconds
        ranked = sorted(acc.items(), key=lambda kv: (-kv[1], kv[0]))[:count]
        wall = self.mean_wall_s
        out = []
        for sid, seconds in ranked:
            span = self.spans[sid]
            out.append({
                "sid": sid, "cat": span.cat, "name": span.name,
                "seconds_per_iter": seconds / self.n,
                "share": seconds / self.n / wall if wall > 0 else 0.0,
            })
        return out

    def trace_summary(self, count: int = 3) -> dict:
        """Compact envelope block for results and ``measure --json``."""
        return {
            "critical_path_ms": self.mean_path_s * 1e3,
            "iterations": self.n,
            "level": self.level,
            "exposed_allreduce_share": self.exposed_allreduce_share,
            "shares": self.shares(),
            "top_spans": [
                {k: v for k, v in item.items() if k != "sid"}
                for item in self.top_spans(count)
            ],
        }

    def report(self) -> str:
        """Plain-text critical-path report."""
        totals, shares = self.totals(), self.shares()
        lines = [
            f"-- critical path: {self.label or 'run'} @ {self.gpus} GPUs "
            f"({self.mean_path_s * 1e3:.1f} ms/iter over {self.n} steady "
            f"iterations, level={self.level}) --",
            f"{'bucket':<16} {'ms/iter':>10} {'share':>8}",
        ]
        for bucket in BUCKETS:
            lines.append(f"{bucket:<16} {totals[bucket] * 1e3:>10.2f} "
                         f"{shares[bucket] * 100:>7.1f}%")
        lines.append(
            f"exposed allreduce critical-path share: "
            f"{self.exposed_allreduce_share * 100:.1f}%")
        lines.append("dwell by phase (ms/iter):")
        for cat, seconds in self.dwell_by_phase():
            lines.append(f"  {cat:<14} {seconds * 1e3:>10.2f}")
        ranks = self.dwell_by_rank()[:5]
        if ranks:
            lines.append("dwell by bounding rank (ms/iter):")
            for rank, seconds in ranks:
                lines.append(f"  rank {rank:<9} {seconds * 1e3:>10.2f}")
        links = self.dwell_by_link()[:5]
        if links:
            lines.append("dwell by link (ms/iter):")
            for label, seconds in links:
                lines.append(f"  {label:<14} {seconds * 1e3:>10.2f}")
        lines.append("top bottleneck spans:")
        for item in self.top_spans():
            lines.append(
                f"  {item['cat']:<12} {item['name']:<28} "
                f"{item['seconds_per_iter'] * 1e3:>8.2f} ms/iter "
                f"({item['share'] * 100:.1f}%)")
        return "\n".join(lines)


def explain_measurement(measurement) -> CriticalPathReport:
    """Critical path of a traced :class:`~repro.core.sweep.Measurement`."""
    recorder = getattr(measurement, "trace", None)
    if recorder is None:
        raise ValueError(
            "measurement carries no trace; run measure_training with "
            "trace='spans' (or 'links')")
    return compute_critical_path(
        recorder,
        timeline=measurement.timeline,
        warmup_iterations=measurement.stats.warmup_iterations,
        gpus=measurement.gpus,
        label=measurement.config.label,
    )
