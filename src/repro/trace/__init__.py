"""Span tracing and critical-path diagnosis for simulated training runs.

``repro.trace`` answers the question the flat E14 attribution cannot:
*which* rank, link or fused buffer bounded each iteration.  A
:class:`SpanRecorder` hooks into every layer of the stack (observation
only — tracing on is bit-identical to tracing off), and
:func:`compute_critical_path` refines each steady iteration into an
ordered critical path whose bucket totals reconcile exactly with the
attribution engine.  Exporters: merged span-aware Chrome trace, a
self-contained JSON span format, and a plain-text bottleneck report.
"""

from repro.trace.critical import (
    CriticalPathReport,
    IterationPath,
    PathSegment,
    compute_critical_path,
    explain_measurement,
)
from repro.trace.export import merged_chrome_trace
from repro.trace.spans import (
    SPAN_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    load_spans,
    save_spans,
    well_nested_violations,
)

__all__ = [
    "SPAN_SCHEMA_VERSION",
    "CriticalPathReport",
    "IterationPath",
    "PathSegment",
    "Span",
    "SpanRecorder",
    "compute_critical_path",
    "explain_measurement",
    "load_spans",
    "merged_chrome_trace",
    "save_spans",
    "well_nested_violations",
]
