"""Component health state machine: ``healthy``/``degraded``/``draining``.

One :class:`Health` instance per long-lived component (the service,
a fabric coordinator) aggregates keyed degradation *reasons* — a
failing journal, a cache that cannot persist — into a single state:

* **healthy** — no reasons outstanding;
* **degraded** — at least one reason outstanding; the component keeps
  serving what it safely can (reads, already-leased work) while
  refusing what it cannot make durable;
* **draining** — shutdown in progress; terminal (a draining component
  never goes back to healthy).

Reasons are edge-triggered by the code that detects the fault
(``degrade(key, detail)``) and cleared by the code that observes
recovery (``resolve(key)``) — typically the next successful write to
the same resource, so recovery needs no background prober.  The state
is surfaced on ``/healthz`` payloads and, when a registry is supplied,
as ``{component}_health{state=...}`` one-hot gauges.
"""

from __future__ import annotations

import threading

__all__ = ["Health"]


class Health:
    """Thread-safe keyed-reason health aggregator for one component."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINING = "draining"
    STATES = (HEALTHY, DEGRADED, DRAINING)

    def __init__(self, registry=None, component: str = "service") -> None:
        self.component = str(component)
        self._lock = threading.Lock()
        self._reasons: dict[str, str] = {}
        self._draining = False
        self._gauge = None
        if registry is not None:
            self._gauge = registry.gauge(
                f"{self.component}_health",
                f"one-hot health state of the {self.component}",
                labelnames=("state",))
        self._publish()

    # -- state --------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._draining:
            return self.DRAINING
        return self.DEGRADED if self._reasons else self.HEALTHY

    def as_dict(self) -> dict:
        """``{"state": ..., "reasons": {key: detail}}`` for healthz."""
        with self._lock:
            return {"state": self._state_locked(),
                    "reasons": dict(sorted(self._reasons.items()))}

    # -- transitions --------------------------------------------------------
    def degrade(self, key: str, detail: str) -> None:
        """Record one outstanding degradation reason (idempotent)."""
        with self._lock:
            before = self._state_locked()
            self._reasons[str(key)] = str(detail)
            after = self._state_locked()
        self._publish()
        if after != before:
            self._flip(before, after, key=str(key), detail=str(detail))

    def resolve(self, key: str) -> None:
        """Clear one reason; healthy again once none remain."""
        with self._lock:
            before = self._state_locked()
            cleared = self._reasons.pop(str(key), None)
            after = self._state_locked()
        self._publish()
        if after != before and cleared is not None:
            self._flip(before, after, key=str(key))

    def drain(self) -> None:
        """Enter the terminal draining state (shutdown in progress)."""
        with self._lock:
            before = self._state_locked()
            self._draining = True
            after = self._state_locked()
        self._publish()
        if after != before:
            self._flip(before, after)

    def _flip(self, before: str, after: str, **fields) -> None:
        """A state *flip* (not every keyed reason) is operator news:
        emit it, and on entering ``degraded`` dump the flight recorder
        so the postmortem evidence exists even if the process dies
        next.  Never raises."""
        try:
            from repro.obs import emit, emitter

            emit("health_flip",
                 level="warn" if after != self.HEALTHY else "info",
                 component=self.component, before=before, after=after,
                 **fields)
            if after == self.DEGRADED:
                emitter().dump(reason=f"{self.component} degraded: "
                                      f"{fields.get('key', '')}")
        except Exception:
            pass

    # -- telemetry ----------------------------------------------------------
    def _publish(self) -> None:
        if self._gauge is None:
            return
        current = self.state
        for state in self.STATES:
            self._gauge.labels(state=state).set(
                1.0 if state == current else 0.0)
