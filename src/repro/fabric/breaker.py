"""Shared circuit breaker: closed → open → half-open, deterministic.

Both remote-call clients (:class:`~repro.service.client.ServiceClient`
and :class:`~repro.fabric.worker.FabricClient`) face the same failure
shape: a peer that is down or overloaded answers every request with a
connection error or a 5xx, and a naive retry loop turns one sick
server into a fleet-wide retry storm.  A :class:`CircuitBreaker`
attached to a transport converts consecutive failures into *fast
local* rejections:

* **closed** — requests flow; ``failures`` consecutive failures trip
  the breaker open;
* **open** — :meth:`allow` raises :class:`CircuitOpenError`
  immediately (no network I/O) until the backoff window lapses.  The
  window doubles on every consecutive trip, capped at
  ``max_backoff_s`` — deterministic, so tests with an injected clock
  replay exactly;
* **half-open** — after the window, exactly one probe request is let
  through; its success closes the breaker (and resets the backoff
  ladder), its failure re-opens with the next-longer window.

The breaker is transport-agnostic: :meth:`allow` /
:meth:`record_success` / :meth:`record_failure` are called by
:class:`~repro.fabric.transport.Transport`'s decoded request paths.
A :class:`TransportError` or any 5xx response counts as a failure;
every other response (including 4xx — the server is *working*, it just
dislikes the request) counts as success.
"""

from __future__ import annotations

import threading
import time

from repro.fabric.transport import ServiceError

__all__ = ["CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(ServiceError):
    """The breaker is open: the call was rejected without any I/O.

    ``retry_after`` is the remaining backoff in seconds — the local
    analogue of a server's ``Retry-After`` header, and callers handle
    both the same way.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker with capped backoff."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failures: int = 5, backoff_s: float = 0.5,
                 max_backoff_s: float = 30.0, clock=time.monotonic) -> None:
        if failures < 1:
            raise ValueError("failures must be >= 1")
        if backoff_s <= 0 or max_backoff_s < backoff_s:
            raise ValueError("need 0 < backoff_s <= max_backoff_s")
        self.failures = int(failures)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive = 0
        self._trips = 0
        self._open_until = 0.0
        self._probing = False

    # -- inspection ---------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def as_dict(self) -> dict:
        """Snapshot for status surfaces."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "trips": self._trips,
                "retry_after": (max(0.0, self._open_until - self.clock())
                                if self._state == self.OPEN else 0.0),
            }

    # -- the protocol -------------------------------------------------------
    def allow(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open.

        In the open state, the first caller past the backoff window is
        promoted to the half-open probe; concurrent callers keep being
        rejected until the probe reports.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            now = self.clock()
            if now >= self._open_until and not self._probing:
                self._probing = True
                self._state = self.HALF_OPEN
                return
            wait = max(0.0, self._open_until - now)
            raise CircuitOpenError(
                f"circuit open after {self._consecutive} consecutive "
                f"failure(s); retry in {wait:.3g}s",
                retry_after=wait if wait > 0 else self._window())

    def record_success(self) -> None:
        """A request got a healthy answer: close and reset the ladder."""
        with self._lock:
            reopened = self._state != self.CLOSED
            self._state = self.CLOSED
            self._consecutive = 0
            self._trips = 0
            self._probing = False
        if reopened:
            self._emit("breaker_closed")

    def record_failure(self) -> None:
        """A request failed; trip (or re-trip) once the threshold hits."""
        tripped = None
        with self._lock:
            self._consecutive += 1
            if self._state == self.HALF_OPEN:
                tripped = self._trip()  # probe failed: next-longer window
            elif (self._state == self.CLOSED
                    and self._consecutive >= self.failures):
                tripped = self._trip()
        if tripped is not None:
            self._emit("breaker_open", consecutive=tripped[0],
                       trips=tripped[1], window_s=tripped[2])

    def _emit(self, event: str, **fields) -> None:
        """State-transition obs event (operators watch trips live)."""
        from repro.obs import emit

        emit(event, level="warn", **fields)

    # -- internals (call with the lock held) --------------------------------
    def _window(self) -> float:
        return min(self.backoff_s * (2 ** max(self._trips - 1, 0)),
                   self.max_backoff_s)

    def _trip(self) -> tuple[int, int, float]:
        self._trips += 1
        self._state = self.OPEN
        self._probing = False
        window = self._window()
        self._open_until = self.clock() + window
        return self._consecutive, self._trips, window
