"""Distributed runner fabric: multi-worker pull protocol.

N worker processes (on any hosts that can reach the coordinator) pull
:class:`~repro.runner.simpoint.SimPoint` work off a shared journaled
queue, execute it through the inline self-healing Runner, and report
completions exactly-once over the lease protocol.  The package also
hosts the primitives the rest of the codebase shares:

* :mod:`repro.fabric.lease` — lease/heartbeat/exactly-once mechanics
  (consumed by :mod:`repro.service.queue` too);
* :mod:`repro.fabric.transport` — the single HTTP client/server layer
  and the typed :class:`ServiceError` hierarchy;
* :mod:`repro.fabric.breaker` / :mod:`repro.fabric.health` — the shared
  circuit breaker and the healthy/degraded/draining state machine;
* :mod:`repro.fabric.queue` — the journaled point queue;
* :mod:`repro.fabric.worker` — the pull-loop worker (``repro worker``);
* :mod:`repro.fabric.runner` — coordinator + the drop-in
  :class:`FabricRunner` execution backend.
"""

from repro.fabric.breaker import CircuitBreaker, CircuitOpenError
from repro.fabric.health import Health
from repro.fabric.lease import LeaseManager, atomic_write
from repro.fabric.queue import ItemState, PointQueue, PointQueueError, WorkItem
from repro.fabric.runner import FabricApp, FabricCoordinator, FabricRunner
from repro.fabric.transport import (
    ApiError,
    HttpTransport,
    InProcessTransport,
    ServiceError,
    Transport,
    TransportError,
)
from repro.fabric.worker import (
    FabricClient,
    FabricWorker,
    PayloadError,
    worker_id,
)

__all__ = [
    "ApiError",
    "CircuitBreaker",
    "CircuitOpenError",
    "FabricApp",
    "FabricClient",
    "FabricCoordinator",
    "FabricRunner",
    "FabricWorker",
    "Health",
    "HttpTransport",
    "InProcessTransport",
    "ItemState",
    "LeaseManager",
    "PayloadError",
    "PointQueue",
    "PointQueueError",
    "ServiceError",
    "Transport",
    "TransportError",
    "WorkItem",
    "atomic_write",
    "worker_id",
]
