"""Journaled work queue of simulation points for the distributed fabric.

The coordinator-side state of one fabric session: batches of
:class:`~repro.runner.simpoint.SimPoint` become :class:`WorkItem`
entries that remote workers lease, heartbeat, and complete exactly
once.  The mechanics mirror the service's
:class:`~repro.service.queue.JobQueue` — deliberately: both consume the
same :class:`~repro.fabric.lease.LeaseManager` primitives and the same
fsynced-JSONL :class:`~repro.runner.journal.RunJournal` discipline, so
the lease/heartbeat/exactly-once logic exists in the codebase once.

Exactly-once contract
---------------------
A point's result is written into the shared content-addressed
:class:`~repro.runner.ResultCache` *before* ``point_done`` is journaled
(the coordinator does both; see :mod:`repro.fabric.runner`).  The first
completion wins: a late completion from a worker whose lease was
reclaimed is journaled as a no-op duplicate — harmless, because the
deterministic simulation wrote byte-identical bytes under the same
content key — and the item reaches DONE exactly once.

Item states::

    PENDING -> LEASED -> DONE
                      -> PENDING   (worker failed/vanished; retry)
                      -> FAILED    (attempts exhausted: poison point)
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

from repro.fabric.health import Health
from repro.fabric.lease import LeaseManager
from repro.obs import bind as obs_bind, current_context, emit as obs_emit
from repro.runner.journal import RunJournal
from repro.runner.simpoint import SimPoint

__all__ = ["ItemState", "PointQueue", "PointQueueError", "WorkItem"]


class PointQueueError(RuntimeError):
    """An illegal work-item transition (unknown item, bad worker...)."""


class ItemState:
    """String constants for the work-item lifecycle."""

    PENDING = "PENDING"
    LEASED = "LEASED"
    DONE = "DONE"
    FAILED = "FAILED"

    ALL = (PENDING, LEASED, DONE, FAILED)


@dataclass
class WorkItem:
    """One leasable unit of work: a unique point within a batch.

    ``retries`` and ``timeout_s`` are optional per-item overrides of
    the queue/worker defaults, stamped at enqueue time so a batch's
    ``run_points(..., retries=..., timeout_s=...)`` settings travel
    with its items instead of mutating shared state that concurrent
    batches would cross-wire.

    ``ctx`` is the correlation context bound when the item was
    enqueued (``job_id``/``request_id``); it travels to the leasing
    worker inside the lease response, so a worker's event log carries
    the same ``job_id`` as the coordinator's.
    """

    id: str
    batch: int
    key: str
    describe: str
    state: str = ItemState.PENDING
    worker: str | None = None
    lease_until: float | None = None
    attempts: int = 0
    recoveries: int = 0
    error: str | None = None
    completed_by: str | None = None
    retries: int | None = None
    timeout_s: float | None = None
    ctx: dict | None = None

    def to_dict(self) -> dict:
        """JSON-able form for journal records and status payloads."""
        return asdict(self)


class PointQueue:
    """Lease-tracked point queue behind the fabric coordinator.

    Thread-safe: the HTTP server dispatches worker requests from many
    threads.  ``registry`` (optional) receives ``fabric_*`` counters.

    Journal-failure policy: the fabric journal is an audit trail (this
    queue never replays it), so a failing disk must not corrupt live
    state — most events degrade :attr:`health` and proceed in memory.
    The exception is **granting new leases**: handing out work the
    journal cannot witness would silently widen the audit gap, so a
    lease whose ``point_leased`` record cannot be written is reverted
    and refused (the node answers "no work" until the disk recovers;
    the next successful journal write resolves the degradation).
    ``fs`` injects the filesystem seam for the chaos harness; ``health``
    shares a :class:`~repro.fabric.health.Health` (one is created,
    tagged ``fabric``, when not supplied).
    """

    def __init__(self, state_dir: str | Path, registry=None,
                 lease_s: float = 30.0, retries: int = 1,
                 max_recoveries: int = 3, clock=time.time,
                 fs=None, health: Health | None = None) -> None:
        self.state_dir = Path(state_dir)
        self.journal = RunJournal(self.state_dir / "fabric.jsonl", fs=fs)
        self.health = (health if health is not None
                       else Health(registry=registry, component="fabric"))
        self.retries = int(retries)
        self.leases = LeaseManager(active_states=(ItemState.LEASED,),
                                   lease_s=lease_s,
                                   max_recoveries=max_recoveries,
                                   clock=clock)
        self._lock = threading.RLock()
        self._items: dict[str, WorkItem] = {}
        self._points: dict[str, SimPoint] = {}
        self._order: list[str] = []
        self._next_batch = 0
        #: worker id -> last contact timestamp (lease/heartbeat/complete).
        self.workers_seen: dict[str, float] = {}
        #: worker id -> last *heartbeat* timestamp — tracked apart from
        #: general contact so operators can see a worker that still
        #: leases/polls but whose in-flight heartbeats stopped (it is
        #: about to lose its lease) before the sweep fires.
        self.heartbeats_seen: dict[str, float] = {}
        self._m_leases = self._m_heartbeats = self._m_completions = None
        self._m_requeues = self._m_failures = self._m_depth = None
        self._m_workers = self._m_journal_errors = None
        if registry is not None:
            self._m_journal_errors = registry.counter(
                "fabric_journal_errors_total",
                "journal appends lost to disk errors")
            self._m_leases = registry.counter(
                "fabric_leases_total", "point leases granted to workers")
            self._m_heartbeats = registry.counter(
                "fabric_heartbeats_total", "lease heartbeats accepted")
            self._m_completions = registry.counter(
                "fabric_completions_total", "point completions reported",
                labelnames=("status",))
            self._m_requeues = registry.counter(
                "fabric_requeues_total",
                "leases reclaimed from dead or silent workers")
            self._m_failures = registry.counter(
                "fabric_failures_total", "worker-reported point failures")
            self._m_depth = registry.gauge(
                "fabric_queue_depth", "PENDING points awaiting a worker")
            self._m_workers = registry.gauge(
                "fabric_workers", "distinct workers seen within one lease")

    # -- metric plumbing ---------------------------------------------------
    def _update_gauges(self) -> None:
        if self._m_depth is not None:
            self._m_depth.set(sum(1 for i in self._items.values()
                                  if i.state == ItemState.PENDING))
        if self._m_workers is not None:
            horizon = self.leases.clock() - self.leases.lease_s
            self._m_workers.set(sum(1 for t in self.workers_seen.values()
                                    if t >= horizon))

    def _saw(self, worker: str) -> None:
        self.workers_seen[str(worker)] = self.leases.clock()

    # -- journal plumbing --------------------------------------------------
    def _journal(self, event: str, **fields) -> bool:
        """Append one audit record; ``False`` when the disk refused it.

        Success doubles as the recovery probe: the first append that
        lands after an outage resolves the ``journal`` degradation.
        """
        try:
            self.journal.append(event, **fields)
        except OSError as err:
            if self._m_journal_errors is not None:
                self._m_journal_errors.inc()
            self.health.degrade("journal",
                                f"{event} append failed: {err}")
            return False
        self.health.resolve("journal")
        return True

    # -- enqueue -----------------------------------------------------------
    def enqueue(self, points: Sequence[SimPoint],
                retries: int | None = None,
                timeout_s: float | None = None) -> tuple[int, list[str]]:
        """Add one batch; returns ``(batch id, item ids in order)``.

        Points whose key is already tracked (pending, leased or done
        from an earlier batch) attach to the existing item instead of
        enqueuing a duplicate execution — the fabric-level analogue of
        the runner's batch dedup (an attached point keeps the existing
        item's overrides).  ``retries`` / ``timeout_s`` are per-batch
        overrides stamped onto the new items.
        """
        with self._lock:
            batch = self._next_batch
            self._next_batch += 1
            ids = []
            for index, point in enumerate(points):
                key = point.key()
                existing = next((i for i in self._items.values()
                                 if i.key == key
                                 and i.state != ItemState.FAILED), None)
                if existing is not None:
                    ids.append(existing.id)
                    continue
                item = WorkItem(id=f"{batch}:{index}", batch=batch, key=key,
                                describe=point.describe(),
                                retries=(int(retries) if retries is not None
                                         else None),
                                timeout_s=timeout_s)
                item.ctx = current_context() or None
                self._items[item.id] = item
                self._points[item.id] = point
                self._order.append(item.id)
                self._journal("point_enqueued", id=item.id, key=key,
                              batch=batch, describe=item.describe)
                obs_emit("point_enqueued", level="debug", item=item.id,
                         point_key=key, batch=batch)
                ids.append(item.id)
            self._update_gauges()
            return batch, ids

    # -- worker protocol ---------------------------------------------------
    def lease(self, worker: str,
              lease_s: float | None = None) -> WorkItem | None:
        """Oldest PENDING item, leased to ``worker`` (``None`` = drained)."""
        with self._lock:
            self._saw(worker)
            item = next((self._items[i] for i in self._order
                         if self._items[i].state == ItemState.PENDING), None)
            if item is None:
                self._update_gauges()
                return None
            item.state = ItemState.LEASED
            lease_until = self.leases.grant(item, worker, lease_s)
            if not self._journal("point_leased", id=item.id, worker=worker,
                                 lease_until=lease_until,
                                 attempts=item.attempts):
                # A lease the journal cannot witness must not stand:
                # revert the grant (including its attempt charge) and
                # refuse work until the disk recovers.
                item.state = ItemState.PENDING
                self.leases.release(item)
                item.attempts -= 1
                self._update_gauges()
                return None
            if self._m_leases is not None:
                self._m_leases.inc()
            with obs_bind(**(item.ctx or {}), point_key=item.key,
                          worker_id=worker):
                obs_emit("point_leased", item=item.id,
                         attempts=item.attempts, lease_until=lease_until)
            self._update_gauges()
            return item

    def point(self, item_id: str) -> SimPoint:
        """The executable point behind one item."""
        with self._lock:
            if item_id not in self._points:
                raise PointQueueError(f"unknown item {item_id!r}")
            return self._points[item_id]

    def heartbeat(self, worker: str, item_id: str,
                  lease_s: float | None = None) -> bool:
        """Refresh a live lease (in-memory only).  Returns ``False``
        when the lease is no longer this worker's to refresh."""
        with self._lock:
            self._saw(worker)
            item = self._items.get(item_id)
            if item is None or item.worker != worker:
                return False
            ok = self.leases.refresh(item, lease_s)
            if ok:
                self.heartbeats_seen[str(worker)] = self.leases.clock()
                if self._m_heartbeats is not None:
                    self._m_heartbeats.inc()
            return ok

    def complete(self, worker: str, item_id: str) -> str:
        """Record a completion; returns ``"done"``, ``"late"`` or
        ``"duplicate"``.

        Call only *after* the result bytes are durably in the shared
        cache (result-before-journal).  The first completion journals
        ``point_done``; a second is a no-op duplicate.  A completion
        from a worker whose lease was reclaimed but whose item is still
        un-done is accepted (``"late"``) — the result is deterministic
        and already stored, so discarding it would only waste work.
        """
        with self._lock:
            self._saw(worker)
            item = self.get(item_id)
            if item.state == ItemState.DONE:
                if self._m_completions is not None:
                    self._m_completions.labels(status="duplicate").inc()
                return "duplicate"
            status = "done" if item.worker == worker else "late"
            item.state = ItemState.DONE
            item.completed_by = str(worker)
            item.error = None
            self.leases.release(item)
            self._journal("point_done", id=item.id, worker=worker,
                          status=status)
            if self._m_completions is not None:
                self._m_completions.labels(status=status).inc()
            with obs_bind(**(item.ctx or {}), point_key=item.key,
                          worker_id=worker):
                obs_emit("point_done", item=item.id, status=status)
            self._update_gauges()
            return status

    def fail(self, worker: str, item_id: str, error: str) -> str:
        """A worker reports a terminal point failure; returns the new
        state (``PENDING`` for a retry, ``FAILED`` once attempts are
        exhausted).

        Mirrors :meth:`complete`'s staleness classification: a report
        from a worker that no longer holds the lease (it lapsed and was
        reclaimed, possibly re-granted) is a no-op — transitioning the
        item on a stale report would requeue work another worker is
        live-leasing (double execution) or spuriously FAIL a point its
        new holder may yet complete.
        """
        with self._lock:
            self._saw(worker)
            item = self.get(item_id)
            if item.state == ItemState.DONE:
                return ItemState.DONE
            if item.worker != worker:
                return item.state
            if self._m_failures is not None:
                self._m_failures.inc()
            budget = item.retries if item.retries is not None else self.retries
            if item.attempts > budget:
                item.state = ItemState.FAILED
                item.error = str(error)
                self.leases.release(item)
                self._journal("point_failed", id=item.id,
                              worker=worker, error=str(error))
                with obs_bind(**(item.ctx or {}), point_key=item.key,
                              worker_id=worker):
                    obs_emit("point_failed", level="error", item=item.id,
                             error=str(error))
            else:
                self._requeue(item, error=str(error))
            self._update_gauges()
            return item.state

    # -- crash recovery ----------------------------------------------------
    def _requeue(self, item: WorkItem, error: str | None = None,
                 recovered: bool = False) -> None:
        holder = item.worker
        item.state = ItemState.PENDING
        self.leases.release(item)
        if error is not None:
            item.error = str(error)
        if recovered:
            item.recoveries += 1
        self._journal("point_requeued", id=item.id,
                      recoveries=item.recoveries,
                      **({"error": str(error)}
                         if error is not None else {}))
        with obs_bind(**(item.ctx or {}), point_key=item.key,
                      worker_id=holder):
            obs_emit("point_requeued", level="warn", item=item.id,
                     recovered=recovered, recoveries=item.recoveries,
                     **({"error": str(error)} if error is not None else {}))

    def requeue_expired(self,
                        skip_workers: frozenset[str] = frozenset()) -> list:
        """Reclaim leases whose holder stopped heartbeating.

        Uses the shared TOCTOU-closed sweep: a heartbeat arriving
        mid-sweep rescues its item.  An item that has cycled through
        too many dead workers is FAILED as poison instead of requeued
        forever.
        """
        def reclaim(item: WorkItem) -> None:
            if self.leases.should_quarantine(item):
                holder = item.worker
                item.state = ItemState.FAILED
                item.error = (f"failed after {item.recoveries + 1} "
                              f"dead-worker recoveries")
                self.leases.release(item)
                self._journal("point_failed", id=item.id,
                              worker=None, error=item.error)
                with obs_bind(**(item.ctx or {}), point_key=item.key,
                              worker_id=holder):
                    obs_emit("point_failed", level="error", item=item.id,
                             error=item.error, poison=True)
            else:
                self._requeue(item, recovered=True)
            if self._m_requeues is not None:
                self._m_requeues.inc()

        touched = self.leases.sweep_expired(
            lambda: list(self._items.values()), lock=self._lock,
            reclaim=reclaim, skip_workers=skip_workers)
        with self._lock:
            self._update_gauges()
        return touched

    # -- inspection --------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        """The queue's re-entrant lock, for callers composing larger
        atomic steps around it (e.g. the coordinator's
        check-state-then-cache-then-journal completion)."""
        return self._lock

    def get(self, item_id: str) -> WorkItem:
        """The item, or :class:`PointQueueError` when unknown."""
        with self._lock:
            item = self._items.get(item_id)
            if item is None:
                raise PointQueueError(f"unknown item {item_id!r}")
            return item

    def items(self, batch: int | None = None,
              state: str | None = None) -> list[WorkItem]:
        """Items in enqueue order, optionally filtered."""
        with self._lock:
            return [self._items[i] for i in self._order
                    if (batch is None or self._items[i].batch == batch)
                    and (state is None or self._items[i].state == state)]

    def batch_done(self, ids: Sequence[str]) -> bool:
        """Whether every named item is terminal (DONE or FAILED)."""
        with self._lock:
            return all(self._items[i].state in (ItemState.DONE,
                                                ItemState.FAILED)
                       for i in ids)

    def snapshot(self) -> dict:
        """Counts + per-worker ages, for ``/status``.

        ``workers`` keeps its original shape (worker -> last-contact
        age); ``worker_detail`` adds the last-*heartbeat* age and a
        ``stale`` flag (no heartbeat within one lease window while
        holding a lease) so operators see a worker going silent
        *before* the expiry sweep reclaims its item.
        """
        with self._lock:
            now = self.leases.clock()
            counts = {state: 0 for state in ItemState.ALL}
            holding = set()
            for item in self._items.values():
                counts[item.state] += 1
                if item.state == ItemState.LEASED and item.worker:
                    holding.add(item.worker)
            detail = {}
            for worker, seen in sorted(self.workers_seen.items()):
                beat = self.heartbeats_seen.get(worker)
                beat_age = round(now - beat, 3) if beat is not None else None
                stale = (worker in holding
                         and (beat is None
                              or now - beat > self.leases.lease_s))
                detail[worker] = {
                    "last_contact_s": round(now - seen, 3),
                    "last_heartbeat_s": beat_age,
                    "leased": worker in holding,
                    "stale": stale,
                }
            return {
                "items": len(self._items),
                "states": counts,
                "lease_s": self.leases.lease_s,
                "health": self.health.as_dict(),
                "workers": {w: round(now - t, 3)
                            for w, t in sorted(self.workers_seen.items())},
                "worker_detail": detail,
            }
