"""Shared lease/heartbeat/exactly-once primitives.

The lease idiom grew twice — once in the service job queue
(:mod:`repro.service.queue`) and once, implicitly, in the runner's
journal/watchdog machinery — and the distributed fabric would have been
the third copy.  This module is the single home for the mechanics all of
them share:

* **Lease bookkeeping** — granting a lease stamps the holder and an
  expiry (``lease_until``) onto the entry and charges an attempt;
  releasing clears both.
* **Heartbeats** — a live holder refreshes ``lease_until`` *in memory
  only*.  Heartbeats are liveness, not durable state: recovery after a
  process crash never trusts them.
* **Expiry sweeps with the TOCTOU window closed** — reclaiming an
  expired lease involves a durable journal write (fsync), so a sweep
  over many entries is slow.  :meth:`LeaseManager.sweep_expired`
  snapshots candidates under the caller's lock, then *releases the lock
  between entries* and re-checks each entry's expiry against a fresh
  clock immediately before reclaiming it — a heartbeat that arrives
  after the snapshot (even mid-sweep) rescues its entry instead of
  queueing behind the whole sweep and losing the race.
* **Recovery counting** — an entry found mid-lease by a crash recovery
  pass more than ``max_recoveries`` times is poison (it keeps taking
  its executor down) and should be quarantined rather than requeued.
* **Atomic result writes** — :func:`atomic_write` is the
  result-before-journal half of the exactly-once contract: the result
  file is durably renamed into place *before* the completion event is
  journaled, so a crash between the two replays the work onto the same
  path and the directory holds exactly one result no matter how many
  attempts ran.

Entries are duck-typed: anything with ``state``, ``worker``,
``lease_until``, ``attempts`` and ``recoveries`` attributes (the service
``Job``, the fabric ``WorkItem``) plugs in directly.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Iterable, Protocol, runtime_checkable

__all__ = ["LeaseManager", "Leasable", "atomic_write"]


@runtime_checkable
class Leasable(Protocol):
    """What :class:`LeaseManager` needs from an entry."""

    state: str
    worker: str | None
    lease_until: float | None
    attempts: int
    recoveries: int


class LeaseManager:
    """Lease-state engine shared by the job queue and the point queue.

    Parameters
    ----------
    active_states:
        Entry states that can hold a lease (e.g. ``("LEASED",
        "RUNNING")``).  Everything else is ignored by heartbeats and
        sweeps.
    lease_s:
        Default lease duration; individual grants/refreshes may
        override it.
    max_recoveries:
        How many crash recoveries an entry survives before
        :meth:`should_quarantine` says it is poison.
    clock:
        Injectable time source (tests freeze it).
    """

    def __init__(self, active_states: tuple[str, ...],
                 lease_s: float = 60.0, max_recoveries: int = 3,
                 clock: Callable[[], float] = time.time) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        self.active_states = tuple(active_states)
        self.lease_s = float(lease_s)
        self.max_recoveries = int(max_recoveries)
        self.clock = clock

    # -- grant / refresh / release -----------------------------------------
    def grant(self, entry: Leasable, worker: str,
              lease_s: float | None = None) -> float:
        """Stamp ``worker`` and an expiry onto ``entry``; charge an
        attempt.  Returns the new ``lease_until``."""
        entry.worker = str(worker)
        entry.attempts += 1
        entry.lease_until = self.clock() + (lease_s if lease_s is not None
                                            else self.lease_s)
        return entry.lease_until

    def refresh(self, entry: Leasable, lease_s: float | None = None) -> bool:
        """Heartbeat: extend a *live* holder's lease, in memory only.

        Returns ``False`` (and touches nothing) when the entry is not
        currently leased — a late heartbeat from a holder whose lease
        was already reclaimed must not resurrect it.
        """
        if entry.state not in self.active_states or entry.worker is None:
            return False
        entry.lease_until = self.clock() + (lease_s if lease_s is not None
                                            else self.lease_s)
        return True

    def release(self, entry: Leasable) -> None:
        """Clear the lease fields (completion, failure, requeue)."""
        entry.worker = None
        entry.lease_until = None

    # -- expiry ------------------------------------------------------------
    def expired(self, entry: Leasable, now: float | None = None,
                skip_workers: Iterable[str] = frozenset()) -> bool:
        """Whether ``entry`` holds a lease that has lapsed.

        ``skip_workers`` names holders known alive by other means (e.g.
        live threads of this process) — their leases are never treated
        as expired, because reclaiming a lease a live holder still
        works under would double-run the work.
        """
        if entry.state not in self.active_states:
            return False
        if entry.worker is None or entry.worker in skip_workers:
            return False
        if entry.lease_until is None:
            return False
        return entry.lease_until < (now if now is not None else self.clock())

    def sweep_expired(self, entries: Callable[[], Iterable[Leasable]],
                      lock, reclaim: Callable[[Leasable], None],
                      skip_workers: Iterable[str] = frozenset()) -> list:
        """Reclaim every lapsed lease, with the TOCTOU window closed.

        ``entries`` is called under ``lock`` to snapshot candidates;
        ``reclaim`` is then invoked per entry, also under ``lock`` but
        with the lock *released between entries* so heartbeats blocked
        behind the sweep get processed mid-sweep.  Immediately before
        each reclaim the expiry is re-checked against a **fresh** clock
        reading: a heartbeat that arrived between the snapshot and this
        entry's turn (the journal fsyncs of earlier reclaims make that
        window real) has refreshed ``lease_until`` and rescues it.

        Returns the entries actually reclaimed.
        """
        skip = frozenset(skip_workers)
        with lock:
            now = self.clock()
            candidates = [e for e in entries() if self.expired(e, now, skip)]
        touched = []
        for entry in candidates:
            with lock:
                if not self.expired(entry, self.clock(), skip):
                    continue  # heartbeat won the race; lease is live again
                reclaim(entry)
                touched.append(entry)
        return touched

    # -- recovery ----------------------------------------------------------
    def should_quarantine(self, entry: Leasable) -> bool:
        """Whether one more recovery would exceed ``max_recoveries``."""
        return entry.recoveries + 1 > self.max_recoveries


def atomic_write(path: str | Path, data: bytes | str) -> Path:
    """Durably write ``data`` to ``path``: temp file + fsync + rename.

    The writer half of the exactly-once contract: call this *before*
    journaling the completion event.  Replaying a crashed attempt
    rewrites the same path, so the directory holds exactly one entry
    per unit of work no matter how many attempts ran.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = data.encode("utf-8") if isinstance(data, str) else data
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path
