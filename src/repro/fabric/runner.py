"""Coordinator side of the fabric: protocol app + drop-in runner.

Three layers, mirroring the service's app/composition split:

* :class:`FabricApp` — pure dispatch ``(method, path, headers, body) ->
  (status, content_type, bytes)`` for the worker protocol, testable
  without sockets through
  :class:`~repro.fabric.transport.InProcessTransport`;
* :class:`FabricCoordinator` — composition root owning the journaled
  :class:`~repro.fabric.queue.PointQueue`, the shared
  :class:`~repro.runner.cache.ResultCache` and the HTTP server.  Its
  :meth:`~FabricCoordinator.complete` enforces the exactly-once order:
  result bytes land in the cache *before* ``point_done`` is journaled;
* :class:`FabricRunner` — presents the local
  :class:`~repro.runner.pool.Runner` surface (``run``, ``run_points``,
  ``stats``, ``meta``, ``quarantined``) over N remote pull-workers, so
  ``repro run --backend fabric`` and the service scheduler target it
  transparently.

Protocol routes (all JSON)::

    GET  /v1/fabric/healthz    liveness + health state (unauth)
    GET  /v1/fabric/status     queue snapshot + drain flag (unauth)
    POST /v1/fabric/lease      {"worker", "lease_s"?} -> one leased
                               item + its pickled point, or nothing
                               (plus a "shutdown" hint when draining)
    POST /v1/fabric/heartbeat  {"worker", "id"} -> {"ok": bool}
    POST /v1/fabric/complete   {"worker", "id", "result"} -> {"status"}
    POST /v1/fabric/fail       {"worker", "id", "error"} -> {"state"}

Determinism contract: the fabric merges results **in input order from
the shared cache**, exactly as the local runner does, so a sweep
executed by two workers (even with one SIGKILLed mid-lease) returns
values bit-identical to the serial run.
"""

from __future__ import annotations

import hmac
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.fabric.queue import ItemState, PointQueue, PointQueueError
from repro.fabric.transport import is_loopback, serve_app_in_thread
from repro.fabric.worker import decode_payload, encode_payload
from repro.obs import (SYSTEM_CLOCK, CONTEXT_HEADER, bind as obs_bind,
                       decode_context, new_request_id)
from repro.runner.cache import ResultCache
from repro.runner.pool import RunnerError, RunnerStats
from repro.runner.simpoint import SimPoint
from repro.telemetry.metrics import MetricRegistry

__all__ = ["FabricApp", "FabricCoordinator", "FabricRunner"]

_JSON = "application/json"


class FabricApp:
    """Pure HTTP-shaped dispatch over a :class:`FabricCoordinator`."""

    def __init__(self, coordinator: "FabricCoordinator",
                 token: str | None = None) -> None:
        self.coordinator = coordinator
        self.token = token

    # -- plumbing ----------------------------------------------------------
    @staticmethod
    def _json(status: int, payload) -> tuple[int, str, bytes]:
        return status, _JSON, json.dumps(payload, indent=1).encode("utf-8")

    @classmethod
    def _error(cls, status: int, code: str,
               message: str) -> tuple[int, str, bytes]:
        """The same error envelope the service API uses."""
        return cls._json(status, {"error": {"code": code,
                                            "message": message}})

    def handle(self, method: str, path: str, headers: dict | None = None,
               body: bytes | None = None) -> tuple[int, str, bytes]:
        """Dispatch one request; never raises (500 envelope instead).

        Context propagated by the caller (the worker's
        ``X-Repro-Context`` header) is re-bound around the dispatch, so
        coordinator-side obs events carry the same ``job_id`` /
        ``request_id`` as the hop that caused them.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        parts = [p for p in path.split("?")[0].split("/") if p]
        ctx = decode_context(headers.get(CONTEXT_HEADER.lower()))
        ctx.setdefault("request_id", new_request_id())
        with obs_bind(**ctx):
            try:
                return self._dispatch(method.upper(), parts, headers, body)
            except PointQueueError as err:
                return self._error(404, "unknown_item", str(err))
            except Exception as err:  # pragma: no cover - defensive
                return self._error(500, "internal",
                                   f"{type(err).__name__}: {err}")

    def _dispatch(self, method, parts, headers, body):
        if len(parts) != 3 or parts[0] != "v1" or parts[1] != "fabric":
            return self._error(404, "unknown_route",
                               "fabric routes live under /v1/fabric/")
        verb = parts[2]
        if verb == "healthz" and method == "GET":
            health = self.coordinator.queue.health
            state = health.state
            return self._json(200, {
                "status": {health.HEALTHY: "ok"}.get(state, state),
                "health": health.as_dict(),
            })
        if verb == "status" and method == "GET":
            return self._json(200, {"fabric": self.coordinator.status()})
        if method != "POST" or verb not in ("lease", "heartbeat",
                                            "complete", "fail"):
            return self._error(404, "unknown_route",
                               f"no route {method} /v1/fabric/{verb}")
        if self.token is not None:
            supplied = headers.get("authorization", "")
            if not hmac.compare_digest(supplied.encode("utf-8"),
                                       f"Bearer {self.token}".encode("utf-8")):
                return self._error(401, "unauthorized",
                                   "missing or invalid bearer token")
        try:
            payload = json.loads((body or b"{}").decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            return self._error(400, "bad_json", f"request body: {err}")
        worker = payload.get("worker")
        if not isinstance(worker, str) or not worker:
            return self._error(400, "bad_request",
                               '"worker" (non-empty string) is required')
        if verb == "lease":
            return self._lease(worker, payload)
        item_id = payload.get("id")
        if not isinstance(item_id, str):
            return self._error(400, "bad_request", '"id" is required')
        if verb == "heartbeat":
            ok = self.coordinator.queue.heartbeat(worker, item_id)
            return self._json(200, {"ok": ok})
        if verb == "complete":
            blob = payload.get("result")
            if not isinstance(blob, str):
                return self._error(400, "bad_request",
                                   '"result" (base64 pickle) is required')
            try:
                value = decode_payload(blob, key=self.token)
            except Exception as err:
                return self._error(400, "bad_payload",
                                   f"cannot decode result: {err}")
            status = self.coordinator.complete(worker, item_id, value)
            return self._json(200, {"status": status})
        state = self.coordinator.queue.fail(
            worker, item_id, str(payload.get("error", "worker failure")))
        return self._json(200, {"state": state})

    def _lease(self, worker: str, payload: dict):
        lease_s = payload.get("lease_s")
        item = self.coordinator.queue.lease(
            worker, lease_s=float(lease_s) if lease_s is not None else None)
        if item is None:
            return self._json(200, {
                "item": None, "point": None,
                "shutdown": self.coordinator.draining})
        point = self.coordinator.queue.point(item.id)
        return self._json(200, {
            "item": item.to_dict(),
            "point": encode_payload(point, key=self.token),
            "shutdown": False,
        })


class FabricCoordinator:
    """Composition root: point queue + shared cache + HTTP endpoint.

    :meth:`complete` is where the exactly-once ordering lives: the
    decoded result is written to the shared cache (an atomic
    temp-file + rename inside :meth:`ResultCache.put`) *before* the
    queue journals ``point_done`` — a crash between the two replays
    the point onto the same cache key and the sweep still yields one
    result per point.
    """

    def __init__(self, state_dir: str | Path,
                 cache: ResultCache | None = None,
                 registry: MetricRegistry | None = None,
                 lease_s: float = 30.0, retries: int = 1,
                 max_recoveries: int = 3,
                 token: str | None = None, fs=None,
                 clock=SYSTEM_CLOCK) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.clock = clock
        self.queue = PointQueue(state_dir, registry=self.registry,
                                lease_s=lease_s, retries=retries,
                                max_recoveries=max_recoveries, fs=fs,
                                clock=clock.wall)
        self.cache = cache
        #: key -> value for this session (merge source when no cache).
        self.results: dict = {}
        self.draining = False
        self.app = FabricApp(self, token=token)
        self._serve_lock = threading.Lock()
        self._server = None
        self._thread = None
        self.url: str | None = None

    def complete(self, worker: str, item_id: str, value) -> str:
        """Store the result durably, then record the completion.

        First write wins: the whole check-state → cache-put → journal
        sequence runs under the queue lock, and an item that is already
        DONE skips the stores entirely — a duplicate (or never-leased)
        worker's bytes must not replace a result the journal already
        vouches for, even if that worker is buggy or nondeterministic.
        """
        with self.queue.lock:
            item = self.queue.get(item_id)
            if item.state != ItemState.DONE:
                if self.cache is not None:
                    self.cache.put(item.key, value)
                self.results[item.key] = value
            return self.queue.complete(worker, item_id)

    def value(self, key: str):
        """A completed point's value (session memory, then cache)."""
        if key in self.results:
            return self.results[key]
        if self.cache is not None:
            return self.cache.get(key)
        return None

    def status(self) -> dict:
        """Snapshot for ``/v1/fabric/status``."""
        return {**self.queue.snapshot(), "draining": self.draining,
                "url": self.url}

    # -- HTTP lifecycle ----------------------------------------------------
    def serve(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Start the endpoint on a daemon thread; returns its URL.

        Refuses to bind a non-loopback host without a token: the
        protocol ships pickled payloads, so an open port would hand
        arbitrary code execution to anyone who can reach it (see the
        trust-boundary notes in :mod:`repro.fabric.worker`).  Even
        loopback-only fabrics on multi-user hosts should set a token —
        it also turns on payload signing.
        """
        if self.app.token is None and not is_loopback(host):
            raise ValueError(
                f"refusing to serve the fabric protocol on non-loopback "
                f"host {host!r} without a token: the protocol exchanges "
                f"pickled payloads (code execution for any process that "
                f"can reach the port); pass token=...")
        with self._serve_lock:
            if self.url is None:
                self._server, self._thread, self.url = serve_app_in_thread(
                    self.app.handle, host=host, port=port)
            return self.url

    def close(self) -> None:
        """Flag draining and tear the HTTP endpoint down."""
        self.draining = True
        self.queue.health.drain()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        self.url = None


class FabricRunner:
    """The local Runner surface over a fleet of remote pull-workers.

    Parameters
    ----------
    workers:
        Worker processes to spawn (``spawn="process"``/``"thread"``) or
        merely expected (``spawn=None``: the caller starts workers by
        hand, e.g. ``repro worker`` on other hosts).
    cache / registry / progress / retries / timeout_s / failure_policy:
        Exactly the local :class:`~repro.runner.pool.Runner` meanings —
        ``retries`` is enforced by the *coordinator* (a failed point is
        re-leased up to that many times), ``timeout_s`` by each worker's
        heartbeat deadline (a point running past it loses its lease and
        is reassigned; the stuck worker process stays busy, which is
        the honest remote analogue of the pool watchdog's kill).
    state_dir:
        Where the fabric lease journal lives
        (default ``bench_results/fabric``).
    spawn:
        ``"process"`` (default) launches ``repro worker`` subprocesses —
        points must be importable in a fresh interpreter;
        ``"thread"`` runs :class:`~repro.fabric.worker.FabricWorker`
        loops on daemon threads of this process (tests, single-host);
        ``None`` spawns nothing and waits for external workers.
    """

    def __init__(self, workers: int = 2,
                 cache: ResultCache | None = None,
                 registry: MetricRegistry | None = None,
                 progress: Callable[[int, int, SimPoint, bool], None] | None = None,
                 retries: int = 0,
                 timeout_s: float | None = None,
                 failure_policy: str = "raise",
                 lease_s: float = 30.0,
                 poll_s: float = 0.05,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 state_dir: str | Path | None = None,
                 token: str | None = None,
                 spawn: str | None = "process",
                 max_recoveries: int = 3,
                 fs=None,
                 wrap_transport: Callable | None = None,
                 clock=SYSTEM_CLOCK) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if failure_policy not in ("raise", "quarantine"):
            raise ValueError(
                f"failure_policy must be 'raise' or 'quarantine', "
                f"got {failure_policy!r}")
        if spawn not in (None, "process", "thread"):
            raise ValueError("spawn must be 'process', 'thread' or None")
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress
        self.retries = int(retries)
        self.timeout_s = timeout_s
        self.failure_policy = failure_policy
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.host = host
        self.port = port
        self.token = token
        self.spawn = spawn
        #: Chaos seam: ``wrap_transport(transport, index) -> transport``
        #: decorates each thread-worker's transport (fault injection);
        #: ``fs`` threads the filesystem seam down to the point queue.
        self.wrap_transport = wrap_transport
        self.registry = registry if registry is not None else MetricRegistry()
        #: One clock *pair* for the whole runner: ``clock.wall`` feeds
        #: the lease deadlines (operators reason about lease expiry in
        #: wall time), ``clock.mono`` feeds durations — never mixed,
        #: and both injectable together for deterministic tests.
        self.clock = clock
        state_dir = (Path(state_dir) if state_dir is not None
                     else Path("bench_results") / "fabric")
        self.coordinator = FabricCoordinator(
            state_dir, cache=cache, registry=self.registry,
            lease_s=lease_s, retries=self.retries,
            max_recoveries=max_recoveries, token=token, fs=fs,
            clock=clock)
        self.stats = RunnerStats()
        self.quarantined: list[dict] = []
        self._fleet_lock = threading.Lock()
        self._procs: list[subprocess.Popen] = []
        self._thread_workers: list = []
        self._m_points = self.registry.counter(
            "runner_points_total", "simulation points resolved",
            labelnames=("status",))
        self._m_batches = self.registry.counter(
            "runner_batches_total", "run() invocations")
        self._m_seconds = self.registry.counter(
            "runner_execute_seconds_total",
            "host wall seconds spent executing points")
        self._m_quarantined = self.registry.counter(
            "runner_quarantined_total", "points quarantined after retries")
        self._m_respawns = self.registry.counter(
            "runner_pool_respawns_total", "worker pool respawns")
        self._m_progress_errors = self.registry.counter(
            "runner_progress_errors_total",
            "exceptions swallowed from progress callbacks")
        self._m_workers = self.registry.gauge(
            "runner_workers", "configured worker processes")
        self._m_workers.set(self.workers)

    # -- worker fleet ------------------------------------------------------
    @property
    def url(self) -> str | None:
        return self.coordinator.url

    def start(self) -> str:
        """Bring the endpoint up and the worker fleet to strength."""
        url = self.coordinator.serve(host=self.host, port=self.port)
        self._ensure_workers()
        return url

    def _worker_argv(self) -> list[str]:
        argv = [sys.executable, "-m", "repro", "worker",
                "--url", self.coordinator.url,
                "--lease-s", str(self.lease_s),
                "--poll-s", str(max(self.poll_s, 0.02))]
        if self.timeout_s is not None:
            argv += ["--timeout-s", str(self.timeout_s)]
        if self.token is not None:
            argv += ["--token", self.token]
        return argv

    def _ensure_workers(self) -> None:
        """Spawn (and respawn) workers up to the configured width.

        Serialized by ``_fleet_lock``: concurrent batches (scheduler
        worker threads sharing one injected backend) poll this, and
        unsynchronized checks would overshoot the fleet width.
        """
        if self.spawn is None or self.coordinator.draining:
            return
        with self._fleet_lock:
            self._ensure_workers_locked()

    def _ensure_workers_locked(self) -> None:
        if self.spawn == "thread":
            from repro.fabric.transport import InProcessTransport
            from repro.fabric.worker import FabricClient, FabricWorker

            self._thread_workers = [
                w for w in self._thread_workers if w[1].is_alive()]
            while len(self._thread_workers) < self.workers:
                index = len(self._thread_workers)
                transport = InProcessTransport(self.coordinator.app,
                                               token=self.token)
                if self.wrap_transport is not None:
                    transport = self.wrap_transport(transport, index)
                fabric_worker = FabricWorker(
                    FabricClient(transport),
                    worker=f"thread:{os.getpid()}:{index}",
                    poll_s=self.poll_s, lease_s=self.lease_s,
                    timeout_s=self.timeout_s)
                thread = threading.Thread(
                    target=fabric_worker.run_forever,
                    name=f"fabric-worker-{index}", daemon=True)
                thread.start()
                self._thread_workers.append((fabric_worker, thread))
            return
        live = []
        for proc in self._procs:
            if proc.poll() is None:
                live.append(proc)
            else:
                self.stats.pool_respawns += 1
                self._m_respawns.inc()
        self._procs = live
        while len(self._procs) < self.workers:
            self._procs.append(subprocess.Popen(
                self._worker_argv(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL))

    def worker_pids(self) -> list[int]:
        """PIDs of live spawned worker subprocesses."""
        return [p.pid for p in self._procs if p.poll() is None]

    # -- the core ----------------------------------------------------------
    def run(self, points: Sequence[SimPoint], *,
            timeout_s: float | None = None,
            retries: int | None = None,
            progress: Callable | None = None) -> list:
        """Resolve every point via the fleet; results in input order.

        The keyword-only arguments are batch-scoped overrides of the
        configured defaults.  They are threaded through as locals and
        stamped onto the enqueued items — never stored on the runner —
        so concurrent batches (scheduler worker threads sharing one
        backend) cannot cross-wire each other's progress callbacks or
        retry/timeout budgets.
        """
        points = list(points)
        progress = self.progress if progress is None else progress
        self.start()
        self._m_batches.inc()
        self.stats.points += len(points)
        results: list = [None] * len(points)
        done = 0

        groups: dict[str, list[int]] = {}
        for i, point in enumerate(points):
            groups.setdefault(point.key(), []).append(i)
        self.stats.deduplicated += len(points) - len(groups)

        def resolve(key: str, value, cached: bool,
                    status: str | None = None) -> None:
            nonlocal done
            for i in groups[key]:
                results[i] = value
                done += 1
                label = status or ("cache_hit" if cached else "executed")
                self._m_points.labels(status=label).inc()
                if cached:
                    self.stats.cache_hits += 1
                if progress is not None:
                    try:
                        progress(done, len(points), points[i], cached)
                    except Exception:
                        self.stats.progress_errors += 1
                        self._m_progress_errors.inc()

        todo: list[str] = []
        for key in groups:
            value = self.cache.get(key) if self.cache is not None else None
            if value is not None:
                resolve(key, value, cached=True)
            else:
                todo.append(key)

        start = self.clock.mono()
        if todo:
            self._drive(points, groups, todo, resolve,
                        timeout_s=timeout_s, retries=retries)
        elapsed = self.clock.mono() - start
        self.stats.executed += len(todo)
        self.stats.execute_seconds += elapsed
        self._m_seconds.inc(elapsed)
        return results

    def _drive(self, points, groups, todo, resolve, *,
               timeout_s: float | None = None,
               retries: int | None = None) -> None:
        """Enqueue the misses and poll the queue until all are terminal."""
        queue = self.coordinator.queue
        batch_points = [points[groups[key][0]] for key in todo]
        _batch, ids = queue.enqueue(batch_points, retries=retries,
                                    timeout_s=timeout_s)
        key_of = dict(zip(ids, todo))
        pending = set(ids)
        while pending:
            for item_id in list(pending):
                item = queue.get(item_id)
                if item.state == ItemState.DONE:
                    pending.discard(item_id)
                    key = key_of[item_id]
                    resolve(key, self.coordinator.value(key), cached=False)
                elif item.state == ItemState.FAILED:
                    pending.discard(item_id)
                    self._terminal(key_of[item_id],
                                   points[groups[key_of[item_id]][0]],
                                   item.error, resolve)
            if not pending:
                break
            queue.requeue_expired()
            self._ensure_workers()
            time.sleep(self.poll_s)

    def _terminal(self, key, point, error, resolve) -> None:
        if self.failure_policy == "quarantine":
            self.stats.quarantined += 1
            self._m_quarantined.inc()
            self.quarantined.append({
                "key": key,
                "point": point.describe(),
                "error": str(error),
            })
            resolve(key, None, cached=False, status="quarantined")
            return
        raise RunnerError(
            f"point failed: {point.describe()} ({error})")

    def run_points(self, points: Sequence[SimPoint], *,
                   timeout_s: float | None = None,
                   retries: int | None = None,
                   on_progress: Callable | None = None) -> list:
        """:class:`~repro.runner.backend.ExecutionBackend` entry point.

        ``retries`` and ``timeout_s`` are stamped onto this batch's
        queue items (so they apply wherever the points land, and only
        to them); ``on_progress`` replaces the configured callback for
        this batch alone.  Nothing on the runner is mutated, so
        concurrent ``run_points`` calls are safe.
        """
        return self.run(points, timeout_s=timeout_s, retries=retries,
                        progress=on_progress)

    # -- reporting / lifecycle ---------------------------------------------
    def meta(self) -> dict:
        """Runner metadata, same shape as the local Runner's."""
        out = {"workers": self.workers, "backend": "fabric",
               **self.stats.as_dict()}
        if self.quarantined:
            out["quarantined_points"] = [dict(q) for q in self.quarantined]
        if self.cache is not None:
            out["cache"] = self.cache.snapshot()
        return out

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain the fleet (shutdown hint), reap it, stop the server."""
        self.coordinator.draining = True
        deadline = self.clock.mono() + timeout_s
        for proc in self._procs:
            remaining = max(0.1, deadline - self.clock.mono())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._procs = []
        for fabric_worker, thread in self._thread_workers:
            fabric_worker.stop()
        for fabric_worker, thread in self._thread_workers:
            thread.join(timeout=max(0.1, deadline - self.clock.mono()))
        self._thread_workers = []
        self.coordinator.close()

    def __enter__(self) -> "FabricRunner":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
