"""One HTTP transport + error-envelope layer for every client and server.

The service client and the fabric's worker protocol speak the same
dialect — JSON bodies, bearer tokens, one ``{"error": {"code",
"message"}}`` envelope — so the plumbing lives here exactly once:

* :class:`HttpTransport` — stdlib ``urllib`` with connection-level
  retry/backoff (an HTTP *response*, any status, is never retried;
  connection failures are retried only for **idempotent** requests —
  GETs, plus POSTs the caller explicitly marks replay-safe).  Retry
  sleeps are exponential, capped at ``max_backoff_s`` and
  deterministically jittered so a worker fleet doesn't hammer a
  recovering server in lock-step;
* :class:`InProcessTransport` — direct calls into a pure app's
  ``handle(method, path, headers, body)``, no sockets, which is how
  the test suites exercise full APIs without network access;
* :func:`serve_app` / :func:`serve_app_in_thread` — the server half:
  wrap any such pure app in a stdlib ``ThreadingHTTPServer``.

The transfer primitive is :meth:`Transport.exchange`, returning
``(status, response headers, body bytes)`` — headers carry
``Retry-After`` from overloaded/degraded servers through to
:attr:`ApiError.retry_after`.  :meth:`Transport.request` is the
headerless legacy surface, derived from it.  A transport may carry a
:class:`~repro.fabric.breaker.CircuitBreaker`: the decoded request
paths (:meth:`~Transport.json` / :meth:`~Transport.bytes`) gate on it
and feed it outcomes (transport failures and 5xx responses count as
failures; everything else — 4xx included, the server is alive — counts
as success).

Error hierarchy (single and typed, replacing ad-hoc ``RuntimeError``
and bare ``URLError`` leakage)::

    ServiceError              any client-side service/fabric failure
    ├── ApiError              the server answered with a non-2xx
    │                         envelope (carries status/code/message
    │                         and an optional retry_after hint)
    ├── TransportError        the request never produced a response
    │                         (connection refused, timeout, DNS...)
    └── CircuitOpenError      (repro.fabric.breaker) rejected locally
                              by an open circuit breaker

Catching :class:`ServiceError` therefore covers everything a remote
call can throw.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.context import CONTEXT_HEADER, context_header

__all__ = [
    "ApiError",
    "HttpTransport",
    "InProcessTransport",
    "ServiceError",
    "Transport",
    "TransportError",
    "is_loopback",
    "serve_app",
    "serve_app_in_thread",
]


def is_loopback(host: str) -> bool:
    """Whether binding ``host`` is reachable from this machine only.

    ``""`` and ``"0.0.0.0"``/``"::"`` (all interfaces) are *not*
    loopback; callers exposing a trust-sensitive endpoint use this to
    decide whether to demand authentication.
    """
    return host in ("localhost", "::1") or host.startswith("127.")


class ServiceError(RuntimeError):
    """Base of every failure a service/fabric client call can raise."""


class ApiError(ServiceError):
    """A non-2xx API response, decoded from the error envelope.

    ``retry_after`` (seconds, or ``None``) is the server's advice from
    a ``Retry-After`` header or a ``retry_after`` envelope field —
    overloaded (503) and quota-limited (429) responses carry it.
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class TransportError(ServiceError):
    """The request never produced an HTTP response."""

    def __init__(self, message: str,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.cause = cause


def _parse_retry_after(value) -> float | None:
    """A ``Retry-After`` delay in seconds, or ``None`` when unusable.

    Only delta-seconds are supported (the only form this codebase
    emits); HTTP-date forms are ignored rather than misparsed.
    """
    if value is None:
        return None
    try:
        delay = float(value)
    except (TypeError, ValueError):
        return None
    return delay if delay >= 0 else None


class Transport:
    """Request plumbing shared by every client; subclasses move bytes.

    ``breaker`` (optional) is a
    :class:`~repro.fabric.breaker.CircuitBreaker` consulted by the
    decoded request paths; it is plain duck-typed state here so the
    breaker module can import this one without a cycle.
    """

    def __init__(self, token: str | None = None, breaker=None) -> None:
        self.token = token
        self.breaker = breaker

    def headers(self) -> dict:
        """Standard request headers (JSON + optional bearer token).

        When a correlation context is bound (:func:`repro.obs.bind`)
        it rides along as ``X-Repro-Context`` — the one seam through
        which ``job_id``/``request_id`` correlation crosses every HTTP
        hop, since all clients build their headers here.
        """
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        context = context_header()
        if context is not None:
            headers[CONTEXT_HEADER] = context
        return headers

    def exchange(self, method: str, path: str,
                 payload: dict | None = None, *,
                 idempotent: bool | None = None) -> tuple[int, dict, bytes]:
        """One request; returns ``(status, response headers, body)`` or
        raises :class:`TransportError`.  Header keys are lowercased.

        ``idempotent`` asserts the request is safe to replay after a
        connection-level failure (default: GETs only).  Transports
        without a retry loop ignore it.
        """
        raise NotImplementedError

    def request(self, method: str, path: str,
                payload: dict | None = None, *,
                idempotent: bool | None = None) -> tuple[int, bytes]:
        """Headerless legacy surface over :meth:`exchange`."""
        status, _headers, data = self.exchange(method, path, payload,
                                               idempotent=idempotent)
        return status, data

    def _guarded(self, method: str, path: str, payload,
                 idempotent) -> tuple[int, dict, bytes]:
        """:meth:`exchange` gated by and feeding the circuit breaker."""
        breaker = self.breaker
        if breaker is not None:
            breaker.allow()  # raises CircuitOpenError when open
        try:
            status, headers, data = self.exchange(method, path, payload,
                                                  idempotent=idempotent)
        except TransportError:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            if status >= 500:
                breaker.record_failure()
            else:
                breaker.record_success()
        return status, headers, data

    # -- decoded conveniences ----------------------------------------------
    def json(self, method: str, path: str,
             payload: dict | None = None, *,
             idempotent: bool | None = None) -> dict:
        """Request + JSON decode; non-2xx raises :class:`ApiError`."""
        status, headers, data = self._guarded(method, path, payload,
                                              idempotent)
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {}
        if status >= 400:
            raise self.error(status, data, doc, headers)
        return doc if isinstance(doc, dict) else {}

    def bytes(self, method: str, path: str,
              payload: dict | None = None, *,
              idempotent: bool | None = None) -> bytes:
        """Request returning the raw body; non-2xx raises
        :class:`ApiError` (envelope decoded when present)."""
        status, headers, data = self._guarded(method, path, payload,
                                              idempotent)
        if status >= 400:
            try:
                doc = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = {}
            raise self.error(status, data, doc, headers)
        return data

    @staticmethod
    def error(status: int, data: bytes, doc,
              headers: dict | None = None) -> ApiError:
        """Build the :class:`ApiError` for one non-2xx response."""
        envelope = doc.get("error", {}) if isinstance(doc, dict) else {}
        retry_after = _parse_retry_after(envelope.get("retry_after"))
        if retry_after is None:
            retry_after = _parse_retry_after(
                (headers or {}).get("retry-after"))
        return ApiError(status, envelope.get("code", "error"),
                        envelope.get("message",
                                     data[:200].decode("utf-8", "replace")),
                        retry_after=retry_after)


class HttpTransport(Transport):
    """Real HTTP over stdlib ``urllib`` with connection-level retry.

    An HTTP response, whatever the status, is returned/raised as-is
    and never retried.  A request that produced *no response*
    (connection refused, timeout, reset) is retried only when it is
    **idempotent**: a dropped connection cannot prove the server did
    not accept and execute the request before the failure, so blindly
    replaying a non-idempotent POST can double-apply it (e.g. create
    a duplicate job).  GETs retry by default; a POST retries only when
    the caller passes ``idempotent=True``, asserting the route is
    replay-safe by design (the fabric worker protocol qualifies: a
    replayed lease grant expires and requeues, a replayed completion
    or stale failure report is a journaled no-op).  Everything else
    surfaces the failure as :class:`TransportError` for the caller to
    reconcile.

    Retry sleeps are ``backoff_s * 2**attempt`` **capped at
    ``max_backoff_s``** and jittered into ``[50%, 100%]`` of that by a
    per-transport RNG, so a fleet of workers retrying against one
    recovering coordinator desynchronizes instead of dog-piling.  The
    RNG seeds from ``jitter_seed`` when given (tests replay the exact
    sleep sequence) and from the url+pid otherwise — deterministic per
    process, distinct across a fleet.
    """

    def __init__(self, url: str, token: str | None = None,
                 timeout_s: float = 30.0, retries: int = 2,
                 backoff_s: float = 0.1, max_backoff_s: float = 2.0,
                 jitter_seed: int | None = None, breaker=None) -> None:
        super().__init__(token=token, breaker=breaker)
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._rng = random.Random(
            jitter_seed if jitter_seed is not None
            else f"{self.url}:{os.getpid()}")

    def _sleep_s(self, attempt: int) -> float:
        """The (capped, jittered) sleep before retry ``attempt + 1``."""
        base = min(self.backoff_s * (2 ** attempt), self.max_backoff_s)
        return base * (0.5 + 0.5 * self._rng.random())

    def exchange(self, method: str, path: str,
                 payload: dict | None = None, *,
                 idempotent: bool | None = None) -> tuple[int, dict, bytes]:
        if idempotent is None:
            idempotent = method.upper() == "GET"
        retries = self.retries if idempotent else 0
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        last: BaseException | None = None
        for attempt in range(retries + 1):
            request = urllib.request.Request(
                self.url + path, data=body, method=method,
                headers=self.headers())
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout_s) as response:
                    return (response.status,
                            {k.lower(): v
                             for k, v in response.headers.items()},
                            response.read())
            except urllib.error.HTTPError as err:
                # An HTTP response *is* an answer; never retried.
                return (err.code,
                        {k.lower(): v
                         for k, v in (err.headers or {}).items()},
                        err.read())
            except (urllib.error.URLError, OSError, TimeoutError) as err:
                last = err
                if attempt < retries:
                    time.sleep(self._sleep_s(attempt))
        raise TransportError(
            f"cannot reach {self.url}{path} "
            f"after {retries + 1} attempt(s): {last}", cause=last)


class InProcessTransport(Transport):
    """Direct dispatch into a pure app — no sockets, same semantics."""

    def __init__(self, app, token: str | None = None, breaker=None) -> None:
        super().__init__(token=token, breaker=breaker)
        self.app = app

    def exchange(self, method: str, path: str,
                 payload: dict | None = None, *,
                 idempotent: bool | None = None) -> tuple[int, dict, bytes]:
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        response = self.app.handle(method, path, self.headers(), body)
        status, _ctype, data, extra = _unpack_response(response)
        if not isinstance(data, bytes):
            # Streaming payloads collapse to one body in-process: the
            # caller sees the same bytes an HTTP client would read off
            # the fully consumed stream.
            data = b"".join(data)
        return status, extra, data


def _unpack_response(response) -> tuple[int, str, object, dict]:
    """Normalize a pure app's 3- or 4-tuple ``handle`` return.

    Apps return ``(status, content_type, payload)`` normally and
    ``(status, content_type, payload, headers)`` for responses that
    carry extra headers (e.g. ``Retry-After``).  ``payload`` is bytes
    for ordinary responses, or an *iterable of bytes chunks* for
    streaming ones (SSE) — the socket layer writes chunks as they
    come, the in-process transport joins them.  Header keys come back
    lowercased.
    """
    if len(response) == 4:
        status, ctype, data, extra = response
        headers = {str(k).lower(): str(v)
                   for k, v in (extra or {}).items()}
        return status, ctype, data, headers
    status, ctype, data = response
    return status, ctype, data, {}


# -- the server half -------------------------------------------------------

class _AppHandler(BaseHTTPRequestHandler):
    """Thin adapter from the socket layer onto a pure app ``handle``."""

    handle_fn: Callable  # set by serve_app()
    protocol_version = "HTTP/1.1"

    def _serve(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = type(self).handle_fn(
            method, self.path, dict(self.headers.items()), body)
        status, ctype, payload, extra = _unpack_response(response)
        if isinstance(payload, bytes):
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in extra.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)
            return
        self._stream(status, ctype, payload, extra)

    def _stream(self, status: int, ctype: str, chunks, extra: dict) -> None:
        """Write an incremental payload (SSE): no Content-Length, each
        chunk flushed as it is produced, connection closed at the end
        so the client sees EOF as end-of-stream."""
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        for name, value in extra.items():
            if name.lower() not in ("content-length", "connection"):
                self.send_header(name, value)
        self.end_headers()
        self.close_connection = True
        try:
            for chunk in chunks:
                if chunk:
                    self.wfile.write(chunk)
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # the follower hung up; nothing to salvage
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._serve("POST")

    def log_message(self, fmt: str, *args) -> None:
        # Request accounting belongs in the app's metrics, not stderr.
        pass


def serve_app(handle: Callable, host: str = "127.0.0.1",
              port: int = 0) -> ThreadingHTTPServer:
    """Bind a ``ThreadingHTTPServer`` around a pure app ``handle``.

    ``handle`` is ``(method, path, headers, body) -> (status,
    content_type, payload bytes)``, optionally with a fourth
    extra-headers dict element.  Returns the bound (not yet serving)
    server; ``server.server_address`` carries the ephemeral port when
    ``port=0``.  The caller owns ``serve_forever()`` / ``shutdown()``
    / ``server_close()``.
    """
    handler = type("BoundAppHandler", (_AppHandler,),
                   {"handle_fn": staticmethod(handle)})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_app_in_thread(handle: Callable, host: str = "127.0.0.1",
                        port: int = 0) -> tuple[ThreadingHTTPServer,
                                                threading.Thread, str]:
    """:func:`serve_app` + a daemon serving thread; returns
    ``(server, thread, url)``."""
    server = serve_app(handle, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1},
        name="repro-app-server", daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    return server, thread, f"http://{bound_host}:{bound_port}"
