"""The fabric worker: pull → lease → run → report, until drained.

A :class:`FabricWorker` is one executor process (spawnable on any host
that can reach the coordinator's HTTP endpoint).  Its loop:

1. **pull** — ``POST /v1/fabric/lease`` asks for work; the coordinator
   answers with one leased item + its pickled point, or nothing (plus a
   ``shutdown`` hint once the session is draining);
2. **run** — the point executes through an *inline* self-healing
   :class:`~repro.runner.pool.Runner` (``workers=0``), so the local
   retry/backoff/quarantine machinery is exactly the one serial runs
   use;
3. **heartbeat** — a background thread refreshes the lease while the
   point runs.  With ``timeout_s`` set it deliberately *stops*
   refreshing past the deadline: inline execution cannot be interrupted,
   so "this worker's point timed out" is expressed by letting the lease
   lapse and the coordinator reassign the item — the fabric analogue of
   the pool watchdog killing a worker process;
4. **report** — success ships the pickled result back
   (``/v1/fabric/complete``); a terminal failure reports
   ``/v1/fabric/fail`` and lets the coordinator's retry policy decide.

Graceful drain: :meth:`FabricWorker.stop` (wired to SIGTERM by ``repro
worker``) lets the in-flight point finish and report before the loop
exits; only SIGKILL abandons a lease, and that is precisely the case
the lease expiry + requeue protocol recovers.

Trust boundary
--------------
Points and results travel as **pickle** — unpickling a payload is
arbitrary code execution, so coordinator and workers must mutually
trust each other.  The protocol enforces that in two layers: the
coordinator refuses to bind a non-loopback host without a bearer
``token``, and whenever a token is configured every payload carries an
HMAC-SHA256 signature keyed by it — :func:`decode_payload` verifies
the signature (constant-time) *before* ``pickle.loads`` touches the
bytes, so an unauthenticated sender cannot reach the deserializer in
either direction.  Run loopback-only fabrics on single-user hosts, or
set a token.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import pickle
import socket
import threading
import time

from repro.fabric.breaker import CircuitOpenError
from repro.fabric.transport import (
    ApiError,
    ServiceError,
    Transport,
    TransportError,
)
from repro.obs import bind as obs_bind, emit as obs_emit
from repro.runner.pool import Runner, RunnerError
from repro.telemetry.metrics import MetricRegistry

__all__ = ["FabricClient", "FabricWorker", "PayloadError", "decode_payload",
           "encode_payload", "worker_id"]

#: Length of the HMAC-SHA256 signature prefixed to keyed payloads.
_SIG_BYTES = hashlib.sha256().digest_size


class PayloadError(ValueError):
    """A protocol payload failed signature verification or decoding."""


def encode_payload(obj, key: str | None = None) -> str:
    """Pickle + base64 an object for a JSON protocol body.

    With ``key`` set the pickled bytes are prefixed by an HMAC-SHA256
    signature over them, proving the sender holds the shared fabric
    token (pickle is code execution on the receiving side — see the
    module docstring's trust-boundary notes).
    """
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if key is not None:
        raw = hmac.new(key.encode("utf-8"), raw, hashlib.sha256).digest() + raw
    return base64.b64encode(raw).decode("ascii")


def decode_payload(blob: str, key: str | None = None):
    """Inverse of :func:`encode_payload`.

    With ``key`` set the signature is verified (constant-time,
    :func:`hmac.compare_digest`) **before** the bytes reach
    ``pickle.loads``; a missing or wrong signature raises
    :class:`PayloadError` without deserializing anything.
    """
    raw = base64.b64decode(blob.encode("ascii"))
    if key is not None:
        if len(raw) < _SIG_BYTES:
            raise PayloadError("payload too short to carry a signature")
        sig, raw = raw[:_SIG_BYTES], raw[_SIG_BYTES:]
        want = hmac.new(key.encode("utf-8"), raw, hashlib.sha256).digest()
        if not hmac.compare_digest(sig, want):
            raise PayloadError("payload signature mismatch")
    return pickle.loads(raw)


def worker_id() -> str:
    """Default identity: ``host:pid`` (unique across a cluster)."""
    import os
    return f"{socket.gethostname()}:{os.getpid()}"


class FabricClient:
    """Typed client for the fabric worker protocol.

    Speaks through any :class:`~repro.fabric.transport.Transport`
    (HTTP to a remote coordinator, or in-process for tests) — the same
    shared layer :class:`~repro.service.client.ServiceClient` uses.
    The transport's bearer token doubles as the payload-signing key.

    Every protocol route is replay-safe by design (a re-granted lease
    expires and requeues; duplicate completions and stale failure
    reports are journaled no-ops), so the calls opt into the
    transport's connection-level retry with ``idempotent=True``.
    """

    def __init__(self, transport: Transport, breaker=None) -> None:
        self.transport = transport
        if breaker is not None:
            # Share one circuit breaker across every call this client
            # makes — the transport consults it in ``_guarded``.
            self.transport.breaker = breaker

    @property
    def payload_key(self) -> str | None:
        """HMAC key for point/result payloads (the bearer token)."""
        return self.transport.token

    def status(self) -> dict:
        """Coordinator queue snapshot (``repro fabric status``)."""
        return self.transport.json("GET", "/v1/fabric/status")["fabric"]

    def lease(self, worker: str, lease_s: float | None = None) -> dict:
        """Ask for work.  Returns the response document:
        ``{"item": {...}|None, "point": b64|None, "shutdown": bool}``."""
        payload = {"worker": worker}
        if lease_s is not None:
            payload["lease_s"] = lease_s
        return self.transport.json("POST", "/v1/fabric/lease", payload,
                                   idempotent=True)

    def heartbeat(self, worker: str, item_id: str) -> bool:
        """Refresh a lease; ``False`` means it is no longer ours."""
        doc = self.transport.json("POST", "/v1/fabric/heartbeat",
                                  {"worker": worker, "id": item_id},
                                  idempotent=True)
        return bool(doc.get("ok"))

    def complete(self, worker: str, item_id: str, value) -> str:
        """Ship a result; returns ``done`` / ``late`` / ``duplicate``."""
        doc = self.transport.json(
            "POST", "/v1/fabric/complete",
            {"worker": worker, "id": item_id,
             "result": encode_payload(value, key=self.payload_key)},
            idempotent=True)
        return str(doc.get("status", "done"))

    def fail(self, worker: str, item_id: str, error: str) -> str:
        """Report a terminal point failure; returns the item's new state."""
        doc = self.transport.json(
            "POST", "/v1/fabric/fail",
            {"worker": worker, "id": item_id, "error": str(error)},
            idempotent=True)
        return str(doc.get("state", ""))


class _Heartbeat:
    """Background lease refresher for one in-flight item.

    Refreshes every ``lease_s / 3``.  Past ``deadline`` (the worker's
    ``timeout_s`` budget) it stops refreshing on purpose, so the lease
    lapses and the coordinator reassigns the point.
    """

    def __init__(self, client: FabricClient, worker: str, item_id: str,
                 lease_s: float, deadline: float | None) -> None:
        self.client = client
        self.worker = worker
        self.item_id = item_id
        self.interval = max(0.05, lease_s / 3.0)
        self.deadline = deadline
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"fabric-heartbeat-{item_id}",
            daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        start = time.monotonic()
        while not self._stop.wait(self.interval):
            if self.deadline is not None \
                    and time.monotonic() - start > self.deadline:
                return  # let the lease lapse: this point timed out
            try:
                if not self.client.heartbeat(self.worker, self.item_id):
                    self.lost.set()
                    return
            except ServiceError:
                # Transient coordinator unreachability (or an open
                # circuit): keep trying; the lease survives as long as
                # one refresh lands in time.
                continue


class FabricWorker:
    """One pull-loop executor process.

    Parameters
    ----------
    client:
        A :class:`FabricClient` pointed at the coordinator.
    worker:
        Identity reported on every protocol call (default ``host:pid``).
    poll_s:
        Idle sleep between empty pulls while the queue is open.
    lease_s:
        Lease duration to request; heartbeats run at a third of it.
    retries / timeout_s:
        Local inline-runner retry budget and the heartbeat deadline
        (see module docstring for the timeout semantics).
    lease_error_limit:
        Consecutive failed pulls tolerated before the coordinator is
        presumed gone and the loop drains.  Transient flaps (a dropped
        packet, a single 503 from a degraded node) ride through; a
        dead coordinator still drains after a short burst.
    registry:
        Optional :class:`~repro.telemetry.MetricRegistry` for
        worker-side ``fabric_worker_*`` counters.
    """

    def __init__(self, client: FabricClient, worker: str | None = None,
                 poll_s: float = 0.1, lease_s: float = 30.0,
                 retries: int = 0, timeout_s: float | None = None,
                 lease_error_limit: int = 3,
                 registry: MetricRegistry | None = None) -> None:
        self.client = client
        self.worker = worker if worker is not None else worker_id()
        self.poll_s = float(poll_s)
        self.lease_s = float(lease_s)
        self.timeout_s = timeout_s
        self.lease_error_limit = int(lease_error_limit)
        self.registry = registry if registry is not None else MetricRegistry()
        self.runner = Runner(workers=0, retries=retries,
                             registry=self.registry,
                             failure_policy="raise")
        self._stop = threading.Event()
        self.done = 0
        self.failed = 0
        self._m_done = self.registry.counter(
            "fabric_worker_points_total", "points this worker resolved",
            labelnames=("status",))

    def stop(self) -> None:
        """Graceful drain: finish the in-flight point, then exit."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the loop ----------------------------------------------------------
    def run_forever(self) -> int:
        """Pull until the coordinator drains (or :meth:`stop`).

        Returns the number of points completed.  A failed pull is
        tolerated up to ``lease_error_limit`` consecutive times
        (transient flap, degraded node) and then treated as a drain —
        a vanished coordinator has reclaimed (or lost) our leases
        either way.
        """
        lease_errors = 0
        while not self._stop.is_set():
            try:
                doc = self.client.lease(self.worker, lease_s=self.lease_s)
            except CircuitOpenError as err:
                # The breaker is shedding calls locally: the coordinator
                # was failing moments ago but may recover — wait out the
                # open window instead of treating it as a drain.
                self._stop.wait(min(err.retry_after or 1.0, 5.0))
                continue
            except (TransportError, ApiError):
                lease_errors += 1
                if lease_errors >= self.lease_error_limit:
                    break
                self._stop.wait(self.poll_s)
                continue
            lease_errors = 0
            item = doc.get("item")
            if item is None:
                if doc.get("shutdown"):
                    break
                self._stop.wait(self.poll_s)
                continue
            self._run_one(item, decode_payload(doc["point"],
                                               key=self.client.payload_key))
        return self.done

    def run_one(self) -> bool:
        """Pull and run a single point (tests); ``True`` if one ran."""
        doc = self.client.lease(self.worker, lease_s=self.lease_s)
        item = doc.get("item")
        if item is None:
            return False
        self._run_one(item, decode_payload(doc["point"],
                                           key=self.client.payload_key))
        return True

    def _run_one(self, item: dict, point) -> None:
        item_id = item["id"]
        # A batch-scoped timeout override rides on the item itself, so
        # it applies no matter which worker the point lands on.
        timeout_s = item.get("timeout_s")
        if timeout_s is None:
            timeout_s = self.timeout_s
        # Re-bind the enqueuer's context (it rode here inside the lease
        # response): every event this worker emits for the point — and
        # every protocol call it makes about it, via the transport's
        # ``X-Repro-Context`` header — carries the submitting job's ids.
        ctx = dict(item.get("ctx") or {})
        ctx["worker_id"] = self.worker
        ctx["point_key"] = item.get("key")
        with obs_bind(**ctx):
            obs_emit("point_execute_start", item=item_id,
                     attempts=item.get("attempts"))
            with _Heartbeat(self.client, self.worker, item_id,
                            self.lease_s, timeout_s) as beat:
                try:
                    value = self.runner.run([point])[0]
                except KeyboardInterrupt:
                    raise
                except (RunnerError, Exception) as exc:
                    self.failed += 1
                    self._m_done.labels(status="failed").inc()
                    obs_emit("point_execute_failed", level="error",
                             item=item_id, error=repr(exc))
                    self._report(lambda: self.client.fail(
                        self.worker, item_id, repr(exc)))
                    return
            if beat.lost.is_set():
                # Our lease was reclaimed mid-run; the result is still
                # deterministic and worth shipping (the coordinator
                # counts it as a late completion).
                pass
            self.done += 1
            self._m_done.labels(status="done").inc()
            obs_emit("point_execute_done", item=item_id,
                     lease_lost=beat.lost.is_set())
            self._report(lambda: self.client.complete(
                self.worker, item_id, value))

    @staticmethod
    def _report(call) -> None:
        """Best-effort report: an unreachable coordinator must not kill
        the worker loop — the lease protocol recovers the item."""
        try:
            call()
        except ServiceError:
            pass
