"""The synchronous data-parallel training loop as simulation processes.

One process per rank, per iteration:

1. stall on the input pipeline if the next batch isn't ready
   (:class:`~repro.data.pipeline.PipelineClock`);
2. run forward (a timed compute segment);
3. run backward, submitting each gradient tensor to the
   :class:`~repro.horovod.runtime.HorovodRuntime` at its emission offset —
   this is where communication/computation overlap comes from;
4. wait for *all* averaged gradients (the synchronous-SGD barrier);
5. apply the optimizer update.

Per-rank compute jitter (a lognormal multiplier per rank × iteration)
models real kernel-time variation; it is what makes negotiation wait on
stragglers, one of the effects cycle-time tuning trades against.

Fault hooks: a :class:`~repro.faults.injector.FaultInjector` (or anything
with a ``compute_multiplier(rank)`` method) can be attached to slow ranks
down, and :meth:`DistributedTrainer.kill_rank` /
:meth:`DistributedTrainer.restart_rank` model process death and elastic
rejoin.  A restarted rank first drains its stale submissions from the
runtime, waits for the survivors' next iteration boundary, re-admits
itself at that instant, then runs in lockstep with them (gradient
tensors are matched by name, so the barrier self-aligns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.pipeline import InputPipelineModel, PipelineClock
from repro.horovod.runtime import HorovodRuntime
from repro.models.costmodel import IterationProfile
from repro.mpi.payload import VirtualBuffer
from repro.sim import Environment, Interrupt
from repro.sim.rng import RandomStreams
from repro.train.stats import TrainStats

__all__ = ["DistributedTrainer", "TrainJob"]


@dataclass(frozen=True)
class TrainJob:
    """What to run: length, batch, jitter, input pipeline."""

    iterations: int = 5
    per_gpu_batch: int = 8
    warmup_iterations: int = 1
    #: Lognormal sigma of the per-rank, per-iteration compute multiplier.
    jitter_std: float = 0.0
    pipeline: InputPipelineModel | None = field(default_factory=InputPipelineModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.per_gpu_batch < 1:
            raise ValueError("per_gpu_batch must be >= 1")
        if not 0 <= self.warmup_iterations < self.iterations:
            raise ValueError("warmup_iterations must be in [0, iterations)")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be >= 0")


class DistributedTrainer:
    """Drives a training run over an existing runtime and profile.

    The ``profile`` must have been computed at ``job.per_gpu_batch``
    (checked).  ``run()`` owns the simulation clock: it executes the whole
    job, shuts the runtime's coordinator down, and returns statistics.

    ``faults`` is an optional duck-typed hook exposing
    ``compute_multiplier(rank) -> float``; compute segments of that rank
    are stretched by the returned factor (1.0 = healthy).
    """

    def __init__(self, runtime: HorovodRuntime, profile: IterationProfile,
                 job: TrainJob, faults: Any | None = None,
                 probe: Any | None = None) -> None:
        if profile.batch_size != job.per_gpu_batch:
            raise ValueError(
                f"profile computed at batch {profile.batch_size}, "
                f"job uses {job.per_gpu_batch}"
            )
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.profile = profile
        self.job = job
        self.faults = faults
        #: Optional telemetry hook (``on_iteration(IterationSample)``) —
        #: see :class:`repro.telemetry.TelemetryProbe`.
        self.probe = probe
        self._iteration_marks: dict[int, float] = {}
        self._input_stall = 0.0
        self._alive: set[int] = set(range(runtime.size))
        self._rank_procs: dict[int, Any] = {}
        self._procs: list[Any] = []
        self._next_barrier = 0
        self._boundary: Any | None = None
        #: Iterations finished per rank (survivors end at ``job.iterations``).
        self.completed_iterations: dict[int, int] = {}

    @property
    def world_size(self) -> int:
        """Number of ranks in the run."""
        return self.runtime.size

    @property
    def alive_ranks(self) -> list[int]:
        """Ranks whose training process is currently running, sorted."""
        return sorted(self._alive)

    def run(self) -> TrainStats:
        """Execute the job and return measured statistics."""
        start = self.env.now
        self._alive = set(range(self.world_size))
        for rank in range(self.world_size):
            proc = self.env.process(self._rank_loop(rank))
            self._rank_procs[rank] = proc
            self._procs.append(proc)
        # Restarts spawn new processes mid-run, so loop until no process
        # (original or dynamically added) is still pending.
        while True:
            pending = [p for p in self._procs if not p.triggered]
            if not pending:
                break
            self.env.run(until=self.env.all_of(pending))
        self.runtime.shutdown()
        self.env.run()
        marks = [start] + [t for _, t in sorted(self._iteration_marks.items())]
        return TrainStats(
            world_size=self.world_size,
            per_gpu_batch=self.job.per_gpu_batch,
            iteration_seconds=[b - a for a, b in zip(marks, marks[1:])],
            warmup_iterations=self.job.warmup_iterations,
            input_stall_seconds=self._input_stall,
            runtime=self.runtime.stats,
            compute_iteration_seconds=self.profile.compute_s,
        )

    # -- fault hooks -----------------------------------------------------------
    def kill_rank(self, rank: int) -> None:
        """Kill ``rank``'s training process mid-flight (a crash).

        The runtime is *not* told directly — its failure detector has to
        notice the missing rank, as in a real deployment (pair this with
        :meth:`~repro.horovod.runtime.HorovodRuntime.report_crash`).
        """
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        self._alive.discard(rank)
        proc = self._rank_procs.get(rank)
        if proc is not None and not proc.triggered:
            proc.interrupt("rank killed by fault injection")

    def restart_rank(self, rank: int) -> None:
        """Spawn a replacement process for a crashed ``rank``.

        The new process drains the rank's stale submissions, re-admits
        the rank into the runtime's active set, and joins the survivors
        at the next iteration barrier.  No-op if the rank is alive.
        """
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        if rank in self._alive:
            return
        proc = self.env.process(self._restart_loop(rank))
        self._rank_procs[rank] = proc
        self._procs.append(proc)

    def _fault_mult(self, rank: int) -> float:
        if self.faults is None:
            return 1.0
        return float(self.faults.compute_multiplier(rank))

    # -- per-rank process ------------------------------------------------------
    def _rank_loop(self, rank: int):
        job = self.job
        streams = RandomStreams(job.seed).child(f"rank{rank}")
        jitter_gen = streams.get("compute-jitter")
        clock = (
            PipelineClock(job.pipeline, job.per_gpu_batch, self.env.now)
            if job.pipeline is not None
            else None
        )
        try:
            for iteration in range(job.iterations):
                yield from self._one_iteration(rank, iteration, jitter_gen, clock)
        except Interrupt:
            return

    def _restart_loop(self, rank: int):
        job = self.job
        streams = RandomStreams(job.seed).child(f"rank{rank}-restart")
        jitter_gen = streams.get("compute-jitter")
        try:
            yield from self.runtime.drain_rank(rank)
            # Re-admission must land exactly on an iteration boundary.
            # Joining mid-iteration would re-submit tensor names the
            # survivors already reduced this iteration, creating entries
            # only the *next* iteration can complete — a deadlock on the
            # final one.  At the barrier instant no survivor has emitted
            # anything for the next iteration yet (optimizer + forward
            # time still ahead of them), so every name merges cleanly.
            if self._alive and self._next_barrier < job.iterations:
                yield self._iteration_boundary()
            self.runtime.report_restart(rank)
            self._alive.add(rank)
            while self._next_barrier < job.iterations:
                yield from self._one_iteration(
                    rank, self._next_barrier, jitter_gen, None
                )
        except Interrupt:
            return

    def _iteration_boundary(self):
        """Shared event fired each time an iteration barrier completes."""
        if self._boundary is None or self._boundary.triggered:
            self._boundary = self.env.event()
        return self._boundary

    def _one_iteration(self, rank: int, iteration: int, jitter_gen, clock):
        job = self.job
        profile = self.profile
        start_s = self.env.now
        if clock is not None:
            stall = clock.wait(self.env.now)
            if stall > 0:
                yield self.env.timeout(stall)
                self._input_stall += stall
        stall_end_s = self.env.now
        jitter = (
            float(jitter_gen.lognormal(0.0, job.jitter_std))
            if job.jitter_std > 0
            else 1.0
        )
        yield self.env.timeout(profile.forward_s * jitter * self._fault_mult(rank))
        forward_end_s = self.env.now
        # Backward: submit each tensor at its (jittered) emission time.
        events = []
        previous = 0.0
        for offset, tensor in profile.emission_schedule:
            delta = (offset - previous) * jitter * self._fault_mult(rank)
            if delta > 0:
                yield self.env.timeout(delta)
            previous = offset
            events.append(
                self.runtime.submit(rank, tensor.name, VirtualBuffer(tensor.nbytes))
            )
        last_emit_s = self.env.now
        yield self.env.all_of(events)
        barrier_s = self.env.now
        # All barrier participants pass here at the same instant, before
        # any optimizer time elapses — a race-free shared iteration count.
        if iteration + 1 > self._next_barrier:
            self._next_barrier = iteration + 1
        if self._boundary is not None and not self._boundary.triggered:
            self._boundary.succeed()
        yield self.env.timeout(profile.optimizer_s * jitter * self._fault_mult(rank))
        self.completed_iterations[rank] = self.completed_iterations.get(rank, 0) + 1
        if self._alive and rank == min(self._alive):
            self._iteration_marks.setdefault(iteration, self.env.now)
        if self.probe is not None:
            from repro.telemetry.instrument import IterationSample

            self.probe.on_iteration(IterationSample(
                rank=rank,
                iteration=iteration,
                start_s=start_s,
                stall_end_s=stall_end_s,
                forward_end_s=forward_end_s,
                last_emit_s=last_emit_s,
                barrier_s=barrier_s,
                end_s=self.env.now,
            ))
