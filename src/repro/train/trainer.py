"""The synchronous data-parallel training loop as simulation processes.

One process per rank, per iteration:

1. stall on the input pipeline if the next batch isn't ready
   (:class:`~repro.data.pipeline.PipelineClock`);
2. run forward (a timed compute segment);
3. run backward, submitting each gradient tensor to the
   :class:`~repro.horovod.runtime.HorovodRuntime` at its emission offset —
   this is where communication/computation overlap comes from;
4. wait for *all* averaged gradients (the synchronous-SGD barrier);
5. apply the optimizer update.

Per-rank compute jitter (a lognormal multiplier per rank × iteration)
models real kernel-time variation; it is what makes negotiation wait on
stragglers, one of the effects cycle-time tuning trades against.

Fault hooks: a :class:`~repro.faults.injector.FaultInjector` (or anything
with a ``compute_multiplier(rank)`` method) can be attached to slow ranks
down, and :meth:`DistributedTrainer.kill_rank` /
:meth:`DistributedTrainer.restart_rank` model process death and elastic
rejoin.  A restarted rank first drains its stale submissions from the
runtime, waits for the survivors' next iteration boundary, re-admits
itself at that instant, then runs in lockstep with them (gradient
tensors are matched by name, so the barrier self-aligns).
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.data.pipeline import InputPipelineModel, PipelineClock
from repro.horovod.runtime import HorovodRuntime
from repro.models.costmodel import IterationProfile
from repro.mpi.payload import VirtualBuffer
from repro.sim import Environment, Interrupt
from repro.sim.rng import RandomStreams
from repro.train.stats import TrainStats

__all__ = ["DistributedTrainer", "TrainJob"]


@dataclass(frozen=True)
class TrainJob:
    """What to run: length, batch, jitter, input pipeline."""

    iterations: int = 5
    per_gpu_batch: int = 8
    warmup_iterations: int = 1
    #: Lognormal sigma of the per-rank, per-iteration compute multiplier.
    jitter_std: float = 0.0
    pipeline: InputPipelineModel | None = field(default_factory=InputPipelineModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.per_gpu_batch < 1:
            raise ValueError("per_gpu_batch must be >= 1")
        if not 0 <= self.warmup_iterations < self.iterations:
            raise ValueError("warmup_iterations must be in [0, iterations)")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be >= 0")


class DistributedTrainer:
    """Drives a training run over an existing runtime and profile.

    The ``profile`` must have been computed at ``job.per_gpu_batch``
    (checked).  ``run()`` owns the simulation clock: it executes the whole
    job, shuts the runtime's coordinator down, and returns statistics.

    ``faults`` is an optional duck-typed hook exposing
    ``compute_multiplier(rank) -> float``; compute segments of that rank
    are stretched by the returned factor (1.0 = healthy).
    """

    def __init__(self, runtime: HorovodRuntime, profile: IterationProfile,
                 job: TrainJob, faults: Any | None = None,
                 probe: Any | None = None,
                 checkpoint: Any | None = None,
                 resume_state: dict | None = None) -> None:
        if profile.batch_size != job.per_gpu_batch:
            raise ValueError(
                f"profile computed at batch {profile.batch_size}, "
                f"job uses {job.per_gpu_batch}"
            )
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.profile = profile
        self.job = job
        self.faults = faults
        #: Optional telemetry hook (``on_iteration(IterationSample)``) —
        #: see :class:`repro.telemetry.TelemetryProbe`.
        self.probe = probe
        #: Optional span recorder (``repro.trace``); observation only.
        self.tracer: Any = None
        #: Optional :class:`~repro.checkpoint.CheckpointPlan` controlling
        #: state capture at iteration boundaries (duck-typed: anything
        #: with ``every`` / ``stop_at`` works).
        self.checkpoint_plan = checkpoint
        self._resume_state = resume_state
        self._iteration_marks: dict[int, float] = {}
        self._input_stall = 0.0
        self._alive: set[int] = set(range(runtime.size))
        self._rank_procs: dict[int, Any] = {}
        self._procs: list[Any] = []
        self._next_barrier = 0
        self._boundary: Any | None = None
        #: Ranks mid-rejoin (drained, not yet re-admitted) — checkpoints
        #: are skipped while any rank is in this limbo.
        self._rejoining: set[int] = set()
        self._capture_pending: dict[int, dict[int, dict]] = {}
        self._run_start_s = 0.0
        #: Iterations finished per rank (survivors end at ``job.iterations``).
        self.completed_iterations: dict[int, int] = {}
        #: Most recent state dict captured by the checkpoint plan.
        self.last_checkpoint_state: dict | None = None
        #: States captured at the plan's explicit ``at`` boundaries,
        #: keyed by boundary — the prefix-memo consumer
        #: (``repro.runner.prefix``) resumes from any of these.  Cadence
        #: (``every``) captures are not retained here: a long run would
        #: otherwise hold one full timeline copy per boundary.
        self.checkpoint_states: dict[int, dict] = {}
        #: Boundaries at which a checkpoint was successfully captured.
        self.checkpoint_boundaries: list[int] = []
        #: Captures skipped because the boundary was not quiescent.
        self.checkpoints_skipped = 0
        #: True once :meth:`kill_job` interrupted the run.
        self.job_killed = False
        self.halt_reason: str | None = None

    @property
    def world_size(self) -> int:
        """Number of ranks in the run."""
        return self.runtime.size

    @property
    def alive_ranks(self) -> list[int]:
        """Ranks whose training process is currently running, sorted."""
        return sorted(self._alive)

    def run(self) -> TrainStats:
        """Execute the job and return measured statistics."""
        if self._resume_state is not None:
            return self._run_resumed()
        self._run_start_s = self.env.now
        self._alive = set(range(self.world_size))
        for rank in range(self.world_size):
            proc = self.env.process(self._rank_loop(rank))
            self._rank_procs[rank] = proc
            self._procs.append(proc)
        return self._finish()

    def _run_resumed(self) -> TrainStats:
        """Continue a run from a checkpoint state dict (see ``resume_state``)."""
        rs = self._resume_state
        self._run_start_s = rs["run_start_s"]
        self._alive = set(rs["alive"])
        self._next_barrier = rs["barrier"]
        self._iteration_marks = dict(rs["iteration_marks"])
        self._input_stall = rs["input_stall"]
        self.completed_iterations = dict(rs["completed_iterations"])
        # Sorted spawn order mirrors the relative event ordering the
        # uninterrupted run's ranks have at the barrier instant.
        for rank in sorted(rs["ranks"]):
            proc = self.env.process(
                self._resumed_rank_loop(rank, rs["ranks"][rank])
            )
            self._rank_procs[rank] = proc
            self._procs.append(proc)
        return self._finish()

    def _finish(self) -> TrainStats:
        # Restarts spawn new processes mid-run, so loop until no process
        # (original or dynamically added) is still pending.
        while True:
            pending = [p for p in self._procs if not p.triggered]
            if not pending:
                break
            self.env.run(until=self.env.all_of(pending))
        self.runtime.shutdown()
        self.env.run()
        marks = [self._run_start_s]
        marks += [t for _, t in sorted(self._iteration_marks.items())]
        return TrainStats(
            world_size=self.world_size,
            per_gpu_batch=self.job.per_gpu_batch,
            iteration_seconds=[b - a for a, b in zip(marks, marks[1:])],
            warmup_iterations=self.job.warmup_iterations,
            input_stall_seconds=self._input_stall,
            runtime=self.runtime.stats,
            compute_iteration_seconds=self.profile.compute_s,
        )

    # -- fault hooks -----------------------------------------------------------
    def kill_rank(self, rank: int) -> None:
        """Kill ``rank``'s training process mid-flight (a crash).

        The runtime is *not* told directly — its failure detector has to
        notice the missing rank, as in a real deployment (pair this with
        :meth:`~repro.horovod.runtime.HorovodRuntime.report_crash`).
        """
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        self._alive.discard(rank)
        proc = self._rank_procs.get(rank)
        if proc is not None and not proc.triggered:
            proc.interrupt("rank killed by fault injection")

    def restart_rank(self, rank: int) -> None:
        """Spawn a replacement process for a crashed ``rank``.

        The new process drains the rank's stale submissions, re-admits
        the rank into the runtime's active set, and joins the survivors
        at the next iteration barrier.  No-op if the rank is alive.
        """
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        if rank in self._alive or self.job_killed:
            # A restart after kill_job would poll a shut-down coordinator
            # forever; the killed run has nothing left to rejoin.
            return
        self._rejoining.add(rank)
        proc = self.env.process(self._restart_loop(rank))
        self._rank_procs[rank] = proc
        self._procs.append(proc)

    def kill_job(self, reason: str = "interrupted") -> None:
        """Interrupt the whole run — the external preemption/SIGKILL model.

        Every live training process is interrupted; ``run()`` then winds
        down normally and returns partial statistics.  Pair with a
        checkpoint plan: the state captured at the last boundary
        (:attr:`last_checkpoint_state`) survives the kill and feeds
        :func:`repro.checkpoint.resume_training`.
        """
        self.job_killed = True
        self.halt_reason = reason
        active = self.env.active_process
        for proc in self._procs:
            if proc is not active and not proc.triggered:
                proc.interrupt(reason)

    def _fault_mult(self, rank: int) -> float:
        if self.faults is None:
            return 1.0
        return float(self.faults.compute_multiplier(rank))

    # -- per-rank process ------------------------------------------------------
    def _rank_loop(self, rank: int):
        job = self.job
        streams = RandomStreams(job.seed).child(f"rank{rank}")
        jitter_gen = streams.get("compute-jitter")
        clock = (
            PipelineClock(job.pipeline, job.per_gpu_batch, self.env.now)
            if job.pipeline is not None
            else None
        )
        try:
            for iteration in range(job.iterations):
                yield from self._one_iteration(rank, iteration, jitter_gen, clock)
        except Interrupt:
            return

    def _restart_loop(self, rank: int):
        job = self.job
        streams = RandomStreams(job.seed).child(f"rank{rank}-restart")
        jitter_gen = streams.get("compute-jitter")
        try:
            yield from self.runtime.drain_rank(rank)
            # Re-admission must land exactly on an iteration boundary.
            # Joining mid-iteration would re-submit tensor names the
            # survivors already reduced this iteration, creating entries
            # only the *next* iteration can complete — a deadlock on the
            # final one.  At the barrier instant no survivor has emitted
            # anything for the next iteration yet (optimizer + forward
            # time still ahead of them), so every name merges cleanly.
            if self._alive and self._next_barrier < job.iterations:
                yield self._iteration_boundary()
            self.runtime.report_restart(rank)
            self._alive.add(rank)
            self._rejoining.discard(rank)
            while self._next_barrier < job.iterations:
                yield from self._one_iteration(
                    rank, self._next_barrier, jitter_gen, None
                )
        except Interrupt:
            return
        finally:
            self._rejoining.discard(rank)

    def _iteration_boundary(self):
        """Shared event fired each time an iteration barrier completes."""
        if self._boundary is None or self._boundary.triggered:
            self._boundary = self.env.event()
        return self._boundary

    def _one_iteration(self, rank: int, iteration: int, jitter_gen, clock):
        job = self.job
        profile = self.profile
        start_s = self.env.now
        if clock is not None:
            stall = clock.wait(self.env.now)
            if stall > 0:
                yield self.env.timeout(stall)
                self._input_stall += stall
        stall_end_s = self.env.now
        jitter = (
            float(jitter_gen.lognormal(0.0, job.jitter_std))
            if job.jitter_std > 0
            else 1.0
        )
        yield self.env.timeout(profile.forward_s * jitter * self._fault_mult(rank))
        forward_end_s = self.env.now
        # Backward: submit each tensor at its (jittered) emission time.
        events = []
        previous = 0.0
        for offset, tensor in profile.emission_schedule:
            delta = (offset - previous) * jitter * self._fault_mult(rank)
            if delta > 0:
                yield self.env.timeout(delta)
            previous = offset
            events.append(
                self.runtime.submit(rank, tensor.name, VirtualBuffer(tensor.nbytes))
            )
        last_emit_s = self.env.now
        yield self.env.all_of(events)
        barrier_s = self.env.now
        # All barrier participants pass here at the same instant, before
        # any optimizer time elapses — a race-free shared iteration count.
        if iteration + 1 > self._next_barrier:
            self._next_barrier = iteration + 1
        if self._boundary is not None and not self._boundary.triggered:
            self._boundary.succeed()
        if self.checkpoint_plan is not None and self._capture_wanted(iteration + 1):
            self._report_barrier(
                rank, iteration, jitter, jitter_gen, clock,
                (start_s, stall_end_s, forward_end_s, last_emit_s, barrier_s),
            )
        yield self.env.timeout(profile.optimizer_s * jitter * self._fault_mult(rank))
        self.completed_iterations[rank] = self.completed_iterations.get(rank, 0) + 1
        if self._alive and rank == min(self._alive):
            self._iteration_marks.setdefault(iteration, self.env.now)
        if self.probe is not None:
            from repro.telemetry.instrument import IterationSample

            self.probe.on_iteration(IterationSample(
                rank=rank,
                iteration=iteration,
                start_s=start_s,
                stall_end_s=stall_end_s,
                forward_end_s=forward_end_s,
                last_emit_s=last_emit_s,
                barrier_s=barrier_s,
                end_s=self.env.now,
            ))
        if self.tracer is not None:
            self._trace_iteration(rank, iteration, start_s, stall_end_s,
                                  forward_end_s, last_emit_s, barrier_s)

    def _trace_iteration(self, rank: int, iteration: int, start_s: float,
                         stall_end_s: float, forward_end_s: float,
                         last_emit_s: float, barrier_s: float) -> None:
        """Record one finished iteration's span stack (post-hoc, at the
        optimizer-completion instant — mirrors ``probe.on_iteration``)."""
        rec = self.tracer
        end_s = self.env.now
        it = rec.record("ITERATION", f"iter_{iteration}", start_s, end_s,
                        rank=rank, iteration=iteration)
        if stall_end_s > start_s:
            rec.record("INPUT_STALL", "input stall", start_s, stall_end_s,
                       parent=it)
        rec.record("FORWARD", "forward", stall_end_s, forward_end_s,
                   parent=it)
        rec.record("BACKWARD", "backward", forward_end_s, last_emit_s,
                   parent=it)
        if barrier_s > last_emit_s:
            rec.record("BARRIER_WAIT", "allreduce wait", last_emit_s,
                       barrier_s, parent=it)
        rec.record("OPTIMIZER", "optimizer", barrier_s, end_s, parent=it)

    # -- checkpointing ---------------------------------------------------------
    def _capture_wanted(self, barrier: int) -> bool:
        plan = self.checkpoint_plan
        if self.job_killed or barrier >= self.job.iterations:
            return False
        if plan.stop_at is not None and barrier >= plan.stop_at:
            # A boundary can be skipped (not quiescent), so the stop
            # request stays armed until a capture actually lands.
            return True
        if barrier in getattr(plan, "at", ()):
            return True
        return plan.every > 0 and barrier % plan.every == 0

    def _report_barrier(self, rank, iteration, jitter, jitter_gen, clock,
                        times) -> None:
        """One rank deposits its loop-local state at a barrier instant.

        The barrier is the only moment the rank generators hold no
        in-flight work, but their loop locals (jitter RNG, the drawn
        multiplier for the iteration whose optimizer segment is still
        ahead, the pipeline clock) live on the generator frames — each
        rank passing the barrier parks a copy here, and a zero-delay
        finalizer process assembles the full snapshot once every alive
        rank has reported.
        """
        barrier = iteration + 1
        reports = self._capture_pending.get(barrier)
        first = reports is None
        if first:
            reports = {}
            self._capture_pending[barrier] = reports
        reports[rank] = {
            "iteration": iteration,
            "jitter": jitter,
            "rng_state": jitter_gen.bit_generator.state,
            "pipeline_ready_at": (
                list(clock._ready_at) if clock is not None else None
            ),
            "sample": tuple(times),
        }
        if first:
            # timeout(0) puts the finalizer after every event already
            # scheduled at this instant: all rank reports, plus any fault
            # driver firing exactly now (classified as done, not pending).
            self._procs.append(
                self.env.process(self._finalize_checkpoint(barrier))
            )

    def _finalize_checkpoint(self, barrier: int):
        yield self.env.timeout(0.0)
        reports = self._capture_pending.pop(barrier, {})
        runtime = self.runtime
        quiescent = (
            set(reports) == self._alive
            and not self._rejoining
            and not runtime._entries
            and not runtime._ready
        )
        if not quiescent:
            self.checkpoints_skipped += 1
            self._ckpt_count("checkpoint_skips_total")
            return
        self.last_checkpoint_state = self._snapshot_state(barrier, reports)
        if barrier in getattr(self.checkpoint_plan, "at", ()):
            self.checkpoint_states[barrier] = self.last_checkpoint_state
        self.checkpoint_boundaries.append(barrier)
        self._ckpt_count("checkpoint_captures_total")
        plan = self.checkpoint_plan
        if plan.stop_at is not None and barrier >= plan.stop_at:
            self.kill_job(f"checkpoint plan stop_at boundary {barrier}")

    def _snapshot_state(self, barrier: int, reports: dict[int, dict]) -> dict:
        runtime = self.runtime
        comm = runtime.comm
        fabric = comm.fabric
        inj_stats = getattr(self.faults, "stats", None)
        return {
            "clock": self.env.now,
            "barrier": barrier,
            "run_start_s": self._run_start_s,
            "alive": sorted(self._alive),
            "ranks": {r: dict(rec) for r, rec in sorted(reports.items())},
            "iteration_marks": dict(self._iteration_marks),
            "input_stall": self._input_stall,
            "completed_iterations": dict(self.completed_iterations),
            "runtime": {
                "stats": dataclasses.replace(runtime.stats),
                "response_cache": sorted(runtime._response_cache),
                "active": sorted(runtime.active),
                "removed": sorted(runtime._removed),
                "crash_reports": sorted(runtime._crash_reports),
                "suspects": {
                    r: dataclasses.replace(s)
                    for r, s in runtime._suspects.items()
                },
            },
            "comm": {
                "messages_sent": comm.messages_sent,
                "transfer_retries": comm.transfer_retries,
                "transfer_timeouts": comm.transfer_timeouts,
            },
            "fabric": {
                "stats": dataclasses.replace(
                    fabric.stats,
                    bytes_by_link_type=dict(fabric.stats.bytes_by_link_type),
                ),
                "links": [
                    (link.bytes_carried, link.busy_seconds)
                    for link in fabric.topology.links()
                ],
            },
            "timeline": list(runtime.timeline.events),
            "injector": (
                dataclasses.replace(inj_stats)
                if dataclasses.is_dataclass(inj_stats)
                else None
            ),
            "probe": (
                pickle.dumps(self.probe) if self.probe is not None else None
            ),
            "trace": (
                pickle.dumps(self.tracer) if self.tracer is not None else None
            ),
        }

    def _ckpt_count(self, name: str) -> None:
        registry = getattr(self.probe, "registry", None)
        if registry is not None:
            registry.counter(name, "checkpoint lifecycle events").inc()

    def _resumed_rank_loop(self, rank: int, rec: dict):
        job = self.job
        profile = self.profile
        streams = RandomStreams(job.seed).child(f"rank{rank}")
        jitter_gen = streams.get("compute-jitter")
        jitter_gen.bit_generator.state = rec["rng_state"]
        if rec["pipeline_ready_at"] is not None and job.pipeline is not None:
            clock = PipelineClock(job.pipeline, job.per_gpu_batch, self.env.now)
            clock._ready_at = list(rec["pipeline_ready_at"])
        else:
            clock = None
        try:
            # Finish the interrupted iteration's tail: the checkpoint was
            # captured at its barrier, before any optimizer time elapsed.
            iteration = rec["iteration"]
            jitter = rec["jitter"]
            yield self.env.timeout(
                profile.optimizer_s * jitter * self._fault_mult(rank)
            )
            self.completed_iterations[rank] = (
                self.completed_iterations.get(rank, 0) + 1
            )
            if self._alive and rank == min(self._alive):
                self._iteration_marks.setdefault(iteration, self.env.now)
            if self.probe is not None:
                from repro.telemetry.instrument import IterationSample

                s = rec["sample"]
                self.probe.on_iteration(IterationSample(
                    rank=rank,
                    iteration=iteration,
                    start_s=s[0],
                    stall_end_s=s[1],
                    forward_end_s=s[2],
                    last_emit_s=s[3],
                    barrier_s=s[4],
                    end_s=self.env.now,
                ))
            if self.tracer is not None:
                s = rec["sample"]
                self._trace_iteration(rank, iteration, s[0], s[1], s[2],
                                      s[3], s[4])
            while self._next_barrier < job.iterations:
                yield from self._one_iteration(
                    rank, self._next_barrier, jitter_gen, clock
                )
        except Interrupt:
            return
