"""The synchronous data-parallel training loop as simulation processes.

One process per rank, per iteration:

1. stall on the input pipeline if the next batch isn't ready
   (:class:`~repro.data.pipeline.PipelineClock`);
2. run forward (a timed compute segment);
3. run backward, submitting each gradient tensor to the
   :class:`~repro.horovod.runtime.HorovodRuntime` at its emission offset —
   this is where communication/computation overlap comes from;
4. wait for *all* averaged gradients (the synchronous-SGD barrier);
5. apply the optimizer update.

Per-rank compute jitter (a lognormal multiplier per rank × iteration)
models real kernel-time variation; it is what makes negotiation wait on
stragglers, one of the effects cycle-time tuning trades against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.pipeline import InputPipelineModel, PipelineClock
from repro.horovod.runtime import HorovodRuntime
from repro.models.costmodel import IterationProfile
from repro.mpi.payload import VirtualBuffer
from repro.sim import Environment
from repro.sim.rng import RandomStreams
from repro.train.stats import TrainStats

__all__ = ["DistributedTrainer", "TrainJob"]


@dataclass(frozen=True)
class TrainJob:
    """What to run: length, batch, jitter, input pipeline."""

    iterations: int = 5
    per_gpu_batch: int = 8
    warmup_iterations: int = 1
    #: Lognormal sigma of the per-rank, per-iteration compute multiplier.
    jitter_std: float = 0.0
    pipeline: InputPipelineModel | None = field(default_factory=InputPipelineModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.per_gpu_batch < 1:
            raise ValueError("per_gpu_batch must be >= 1")
        if not 0 <= self.warmup_iterations < self.iterations:
            raise ValueError("warmup_iterations must be in [0, iterations)")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be >= 0")


class DistributedTrainer:
    """Drives a training run over an existing runtime and profile.

    The ``profile`` must have been computed at ``job.per_gpu_batch``
    (checked).  ``run()`` owns the simulation clock: it executes the whole
    job, shuts the runtime's coordinator down, and returns statistics.
    """

    def __init__(self, runtime: HorovodRuntime, profile: IterationProfile,
                 job: TrainJob) -> None:
        if profile.batch_size != job.per_gpu_batch:
            raise ValueError(
                f"profile computed at batch {profile.batch_size}, "
                f"job uses {job.per_gpu_batch}"
            )
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.profile = profile
        self.job = job
        self._iteration_marks: list[float] = []
        self._input_stall = 0.0

    @property
    def world_size(self) -> int:
        """Number of ranks in the run."""
        return self.runtime.size

    def run(self) -> TrainStats:
        """Execute the job and return measured statistics."""
        start = self.env.now
        procs = [
            self.env.process(self._rank_loop(rank))
            for rank in range(self.world_size)
        ]
        self.env.run(until=self.env.all_of(procs))
        self.runtime.shutdown()
        self.env.run()
        marks = [start] + self._iteration_marks
        return TrainStats(
            world_size=self.world_size,
            per_gpu_batch=self.job.per_gpu_batch,
            iteration_seconds=[b - a for a, b in zip(marks, marks[1:])],
            warmup_iterations=self.job.warmup_iterations,
            input_stall_seconds=self._input_stall,
            runtime=self.runtime.stats,
            compute_iteration_seconds=self.profile.compute_s,
        )

    # -- per-rank process ------------------------------------------------------
    def _rank_loop(self, rank: int):
        job = self.job
        profile = self.profile
        streams = RandomStreams(job.seed).child(f"rank{rank}")
        jitter_gen = streams.get("compute-jitter")
        clock = (
            PipelineClock(job.pipeline, job.per_gpu_batch, self.env.now)
            if job.pipeline is not None
            else None
        )
        for iteration in range(job.iterations):
            if clock is not None:
                stall = clock.wait(self.env.now)
                if stall > 0:
                    yield self.env.timeout(stall)
                    self._input_stall += stall
            jitter = (
                float(jitter_gen.lognormal(0.0, job.jitter_std))
                if job.jitter_std > 0
                else 1.0
            )
            yield self.env.timeout(profile.forward_s * jitter)
            # Backward: submit each tensor at its (jittered) emission time.
            events = []
            previous = 0.0
            for offset, tensor in profile.emission_schedule:
                delta = (offset - previous) * jitter
                if delta > 0:
                    yield self.env.timeout(delta)
                previous = offset
                events.append(
                    self.runtime.submit(rank, tensor.name, VirtualBuffer(tensor.nbytes))
                )
            yield self.env.all_of(events)
            yield self.env.timeout(profile.optimizer_s * jitter)
            if rank == 0:
                self._iteration_marks.append(self.env.now)
