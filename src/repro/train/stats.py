"""Run statistics and the paper's scaling metrics.

The paper reports images/second, speedup over one GPU, and *scaling
efficiency* — measured throughput over (ideal linear) throughput.
:class:`TrainStats` is what a :class:`~repro.train.trainer.DistributedTrainer`
run returns; warmup iterations (cold caches, first negotiation) are kept
but excluded from the steady-state aggregates, mirroring how the paper's
measurements discard the first batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.horovod.runtime import RuntimeStats

__all__ = ["TrainStats"]


@dataclass
class TrainStats:
    """Measured outcome of one (simulated) training run."""

    world_size: int
    per_gpu_batch: int
    #: Wall time of every iteration (synchronous across ranks).
    iteration_seconds: list[float] = field(default_factory=list)
    #: Iterations excluded from steady-state aggregates.
    warmup_iterations: int = 1
    #: Per-rank total stall waiting on the input pipeline.
    input_stall_seconds: float = 0.0
    #: A copy of the Horovod runtime counters at run end.
    runtime: RuntimeStats | None = None
    #: Single-GPU compute-only iteration time (for efficiency baselines).
    compute_iteration_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.world_size < 1 or self.per_gpu_batch < 1:
            raise ValueError("world_size and per_gpu_batch must be >= 1")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")

    @property
    def global_batch(self) -> int:
        """World size × per-GPU batch."""
        return self.world_size * self.per_gpu_batch

    @property
    def steady_iterations(self) -> list[float]:
        """Iteration times after warmup."""
        steady = self.iteration_seconds[self.warmup_iterations:]
        if not steady:
            raise ValueError("no steady-state iterations recorded")
        return steady

    @property
    def mean_iteration_seconds(self) -> float:
        """Mean steady-state iteration time."""
        steady = self.steady_iterations
        return sum(steady) / len(steady)

    @property
    def images_per_second(self) -> float:
        """Aggregate steady-state throughput."""
        return self.global_batch / self.mean_iteration_seconds

    def speedup_over(self, single_gpu: "TrainStats") -> float:
        """Throughput speedup relative to a 1-GPU run."""
        return self.images_per_second / single_gpu.images_per_second

    def scaling_efficiency(self, single_gpu: "TrainStats") -> float:
        """Measured / ideal-linear throughput, in [0, 1+ε]."""
        ideal = single_gpu.images_per_second * self.world_size
        return self.images_per_second / ideal

    @property
    def comm_overhead_fraction(self) -> float:
        """Fraction of the steady iteration not covered by pure compute."""
        if self.compute_iteration_seconds <= 0:
            raise ValueError("compute_iteration_seconds not set")
        mean = self.mean_iteration_seconds
        return max(0.0, 1.0 - self.compute_iteration_seconds / mean)
