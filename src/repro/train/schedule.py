"""Learning-rate schedules for the DeepLab recipe.

DeepLab trains with the "poly" schedule — ``lr(step) = lr0 · (1 -
step/max_steps)^0.9`` — and distributed data parallelism uses the linear
scaling rule with gradual warmup (Goyal et al.): the base LR is scaled by
the number of workers and ramped up linearly over the first few epochs to
avoid early divergence at large batch.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LRSchedule", "linear_scaled_lr", "poly_schedule"]


@dataclass(frozen=True)
class LRSchedule:
    """A fully resolved step → learning-rate function.

    ``warmup_steps`` ramp linearly from ``warmup_init`` to ``base_lr``;
    afterwards the poly decay runs over the remaining steps.
    """

    base_lr: float
    max_steps: int
    power: float = 0.9
    warmup_steps: int = 0
    warmup_init: float = 0.0

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ValueError("base_lr must be > 0")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if not 0 <= self.warmup_steps < self.max_steps:
            raise ValueError("warmup_steps must be in [0, max_steps)")
        if self.warmup_init < 0:
            raise ValueError("warmup_init must be >= 0")

    def lr(self, step: int) -> float:
        """Learning rate at optimizer step ``step`` (0-based)."""
        if step < 0:
            raise ValueError("step must be >= 0")
        step = min(step, self.max_steps - 1)
        if self.warmup_steps and step < self.warmup_steps:
            frac = (step + 1) / self.warmup_steps
            return self.warmup_init + frac * (self.base_lr - self.warmup_init)
        decay_steps = self.max_steps - self.warmup_steps
        progress = (step - self.warmup_steps) / decay_steps
        return self.base_lr * (1.0 - progress) ** self.power


def poly_schedule(base_lr: float = 0.007, max_steps: int = 30_000,
                  power: float = 0.9) -> LRSchedule:
    """The standard single-worker DeepLab VOC schedule."""
    return LRSchedule(base_lr=base_lr, max_steps=max_steps, power=power)


def linear_scaled_lr(base_lr: float, world_size: int, max_steps: int,
                     warmup_epochs: float = 5.0, steps_per_epoch: int = 662,
                     power: float = 0.9) -> LRSchedule:
    """Linear-scaling rule with gradual warmup for ``world_size`` workers.

    The scaled peak LR is ``base_lr × world_size``; warmup covers
    ``warmup_epochs`` (at the *scaled* steps-per-epoch the caller passes).
    With one worker this reduces to the plain poly schedule.
    """
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    warmup = 0 if world_size == 1 else int(warmup_epochs * steps_per_epoch)
    warmup = min(warmup, max(0, max_steps - 1))
    return LRSchedule(
        base_lr=base_lr * world_size,
        max_steps=max_steps,
        power=power,
        warmup_steps=warmup,
        warmup_init=base_lr,
    )
