"""Training recipes: from throughput and epoch budgets to wall-clock time.

The practical consequence of the paper's tuning is *hours saved at
constant accuracy*: synchronous data parallelism at a fixed epoch budget
does the same optimization work regardless of scale (modulo the
large-batch penalty the convergence model prices), so end-to-end training
time is ``total_images / throughput``.  :class:`VOCSegmentationRecipe`
packages the standard DeepLab VOC recipe (30k steps at global batch 16 ≈
45.4 epochs) and converts any measured throughput into time-to-train and
predicted final mIOU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.voc import VOC2012_AUG, DatasetStats
from repro.train.convergence import ConvergenceModel, MIOU_MODEL

__all__ = ["RecipeOutcome", "VOCSegmentationRecipe"]


@dataclass(frozen=True)
class RecipeOutcome:
    """One scale point of a recipe: work, time and predicted accuracy."""

    gpus: int
    global_batch: int
    steps: int
    epochs: float
    wall_hours: float
    predicted_miou: float


@dataclass(frozen=True)
class VOCSegmentationRecipe:
    """The standard DeepLab PASCAL VOC recipe at constant epoch budget.

    Attributes
    ----------
    dataset:
        Dataset statistics (defaults to augmented VOC 2012).
    reference_steps / reference_batch:
        The single-worker recipe: 30k steps at global batch 16.
    per_gpu_batch:
        Per-GPU batch size when scaling out (the paper's 8).
    """

    dataset: DatasetStats = VOC2012_AUG
    reference_steps: int = 30_000
    reference_batch: int = 16
    per_gpu_batch: int = 8
    convergence: ConvergenceModel = MIOU_MODEL

    def __post_init__(self) -> None:
        if self.reference_steps < 1 or self.reference_batch < 1:
            raise ValueError("reference recipe must be positive")
        if self.per_gpu_batch < 1:
            raise ValueError("per_gpu_batch must be >= 1")

    @property
    def epoch_budget(self) -> float:
        """Epochs of the reference recipe (≈45.4 for DeepLab VOC)."""
        return self.dataset.epochs_for_steps(
            self.reference_steps, self.reference_batch
        )

    @property
    def total_images(self) -> int:
        """Images processed over the whole recipe (scale-invariant)."""
        return self.reference_steps * self.reference_batch

    def steps_at(self, gpus: int) -> int:
        """Optimizer steps at ``gpus`` workers (constant epoch budget)."""
        if gpus < 1:
            raise ValueError("gpus must be >= 1")
        return max(1, round(self.total_images / (gpus * self.per_gpu_batch)))

    def outcome(self, gpus: int, images_per_second: float,
                seed: int | None = 0) -> RecipeOutcome:
        """Time-to-train and predicted mIOU at a measured throughput."""
        if images_per_second <= 0:
            raise ValueError("throughput must be positive")
        global_batch = gpus * self.per_gpu_batch
        steps = self.steps_at(gpus)
        epochs = self.dataset.epochs_for_steps(steps, global_batch)
        wall_hours = self.total_images / images_per_second / 3600.0
        miou = self.convergence.miou(
            epochs, global_batch, lr_scaling=True, warmup=True, seed=seed
        )
        return RecipeOutcome(
            gpus=gpus,
            global_batch=global_batch,
            steps=steps,
            epochs=epochs,
            wall_hours=wall_hours,
            predicted_miou=miou,
        )
