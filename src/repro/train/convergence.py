"""Calibrated mIOU convergence model (experiment E7's substitute).

We cannot train the real DLv3+ to 80.8% mIOU in this environment (no
GPUs, no VOC); what the paper reports is a *final-accuracy* data point:
distributed training at scale, with standard LR scaling, matches the
published single-worker accuracy.  This module substitutes an empirical
convergence surface with the three well-established effects that govern
it, calibrated to published DeepLab numbers:

* **epoch saturation** — accuracy approaches an asymptote exponentially
  in epochs (the standard recipe, 30k steps at global batch 16 ≈ 45.4
  epochs, lands ~0.6 points below the asymptote);
* **large-batch penalty** — growing global batch at fixed epochs costs
  accuracy, roughly quadratic in ``log2(B/B0)`` (Goyal et al., Shallue et
  al.); the linear-scaling rule with warmup removes most but not all of
  it (≈0.1 pt per doubling with warmup, ≈0.45 pt without);
* **seeded run-to-run noise** (±0.15 pt).

Calibration anchors: DLv3+ (Xception-65, OS=16, VOC val, no COCO
pretrain) ≈ 81.6% at the standard recipe; the paper's distributed run
80.8%.  The npnn package provides the complementary *mechanistic* check
that the distributed gradient path is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import stable_seed

__all__ = ["ConvergenceModel", "MIOU_MODEL"]


@dataclass(frozen=True)
class ConvergenceModel:
    """mIOU as a function of (epochs, global batch, LR handling).

    Attributes
    ----------
    asymptote:
        mIOU (%) with unbounded epochs at the reference batch.
    epoch_gap0 / epoch_tau:
        Accuracy gap at epoch 0 and its exponential decay constant.
    ref_batch:
        Batch size at which no large-batch penalty applies.
    penalty_scaled / penalty_unscaled:
        Points lost per ``log2(B/ref_batch)²`` with and without the
        linear-scaling + warmup rule.
    noise_pt:
        Std-dev of seeded run-to-run noise, in points.
    """

    asymptote: float = 82.2
    epoch_gap0: float = 12.0
    epoch_tau: float = 15.0
    ref_batch: int = 16
    penalty_scaled: float = 0.10
    penalty_unscaled: float = 0.45
    noise_pt: float = 0.15

    def miou(self, epochs: float, global_batch: int,
             lr_scaling: bool = True, warmup: bool = True,
             seed: int | None = 0) -> float:
        """Predicted final mIOU (%) for one training run.

        ``lr_scaling and warmup`` selects the mild penalty slope; either
        missing selects the steep one.  ``seed=None`` disables noise.
        """
        if epochs < 0:
            raise ValueError("epochs must be >= 0")
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        value = self.asymptote - self.epoch_gap0 * np.exp(-epochs / self.epoch_tau)
        if global_batch > self.ref_batch:
            slope = (
                self.penalty_scaled if (lr_scaling and warmup)
                else self.penalty_unscaled
            )
            value -= slope * np.log2(global_batch / self.ref_batch) ** 2
        if seed is not None:
            rng = np.random.default_rng(
                stable_seed("miou", seed, epochs, global_batch, lr_scaling, warmup)
            )
            value += rng.normal(0.0, self.noise_pt)
        return float(max(0.0, value))


#: The calibrated instance every experiment uses.
MIOU_MODEL = ConvergenceModel()
