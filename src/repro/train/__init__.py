"""Distributed training: the synchronous SGD loop over the simulation.

:class:`~repro.train.trainer.DistributedTrainer` runs one simulation
process per rank: input-pipeline stall → forward → backward (submitting
each gradient tensor to the Horovod runtime at its emission time) →
barrier on all averaged gradients → optimizer step.  Communication
overlaps backward exactly as in real Horovod, so scaling efficiency is an
*output* of the simulation, not an assumption.

Support modules: LR schedules with the linear-scaling warmup rule
(:mod:`repro.train.schedule`), the calibrated mIOU convergence model
(:mod:`repro.train.convergence`), and run statistics
(:mod:`repro.train.stats`).
"""

from repro.train.convergence import ConvergenceModel, MIOU_MODEL
from repro.train.recipe import RecipeOutcome, VOCSegmentationRecipe
from repro.train.schedule import LRSchedule, linear_scaled_lr, poly_schedule
from repro.train.stats import TrainStats
from repro.train.trainer import DistributedTrainer, TrainJob

__all__ = [
    "ConvergenceModel",
    "DistributedTrainer",
    "LRSchedule",
    "MIOU_MODEL",
    "RecipeOutcome",
    "TrainJob",
    "TrainStats",
    "VOCSegmentationRecipe",
    "linear_scaled_lr",
    "poly_schedule",
]
