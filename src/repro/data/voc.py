"""PASCAL VOC 2012 statistics and the VOC-mini synthetic substitute.

:data:`VOC2012_AUG` carries the numbers the training recipes and the
benchmarks derive everything from (the standard DeepLab setup: SBD-
augmented train set, 30k steps at global batch 16 ≈ 45 epochs).

:class:`VOCMini` generates a miniature segmentation task with the same
*structure* as VOC — RGB images, integer masks, background-dominated class
distribution — at laptop scale: colored geometric shapes on textured
backgrounds, where each class has a characteristic (noisy) color, so a
small CNN can genuinely learn the mapping and real mIOU can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import stable_seed

__all__ = ["DatasetStats", "VOC2012_AUG", "VOCMini"]


@dataclass(frozen=True)
class DatasetStats:
    """Epoch geometry of a segmentation dataset."""

    name: str
    train_images: int
    val_images: int
    num_classes: int
    crop_size: int
    #: Mean encoded image+label bytes (JPEG+PNG), for I/O modeling.
    encoded_bytes_per_image: int

    def steps_per_epoch(self, global_batch: int) -> int:
        """Optimizer steps in one epoch at ``global_batch`` (ceil)."""
        if global_batch < 1:
            raise ValueError("global_batch must be >= 1")
        return -(-self.train_images // global_batch)

    def epochs_for_steps(self, steps: int, global_batch: int) -> float:
        """Fractional epochs covered by ``steps`` optimizer steps."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        return steps * global_batch / self.train_images


#: Augmented PASCAL VOC 2012 (train_aug from SBD), the paper's dataset.
VOC2012_AUG = DatasetStats(
    name="voc2012_aug",
    train_images=10_582,
    val_images=1_449,
    num_classes=21,
    crop_size=513,
    encoded_bytes_per_image=120_000,
)


class VOCMini:
    """Synthetic shapes-segmentation dataset (real pixels, real masks).

    Each sample is an RGB float image in [0, 1] with 1–``max_shapes``
    axis-aligned rectangles and circles; each foreground class ``c`` has a
    base color, perturbed per-shape and per-pixel with Gaussian noise, on
    a textured background (class 0).  Deterministic per ``(seed, index)``.
    """

    def __init__(self, size: int = 32, num_classes: int = 4,
                 max_shapes: int = 3, noise: float = 0.06, seed: int = 0) -> None:
        if size < 8:
            raise ValueError("size must be >= 8")
        if not 2 <= num_classes <= 12:
            raise ValueError("num_classes must be in [2, 12]")
        if max_shapes < 1:
            raise ValueError("max_shapes must be >= 1")
        self.size = size
        self.num_classes = num_classes
        self.max_shapes = max_shapes
        self.noise = noise
        self.seed = seed
        # Fixed, well-separated base colors per class (background = gray).
        palette_rng = np.random.default_rng(stable_seed("vocmini-palette"))
        self.palette = 0.15 + 0.7 * palette_rng.random((12, 3))
        self.palette[0] = (0.5, 0.5, 0.5)

    def sample(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Generate sample ``index``: (image HxWx3 float32, mask HxW int64)."""
        rng = np.random.default_rng(stable_seed(self.seed, "sample", index))
        s = self.size
        image = np.empty((s, s, 3), dtype=np.float32)
        background = self.palette[0]
        image[:] = background + rng.normal(0, self.noise, (s, s, 3))
        mask = np.zeros((s, s), dtype=np.int64)
        yy, xx = np.mgrid[0:s, 0:s]
        n_shapes = int(rng.integers(1, self.max_shapes + 1))
        for _ in range(n_shapes):
            cls = int(rng.integers(1, self.num_classes))
            color = self.palette[cls] + rng.normal(0, self.noise / 2, 3)
            if rng.random() < 0.5:  # rectangle
                h = int(rng.integers(s // 6, s // 2))
                w = int(rng.integers(s // 6, s // 2))
                top = int(rng.integers(0, s - h))
                left = int(rng.integers(0, s - w))
                region = (yy >= top) & (yy < top + h) & (xx >= left) & (xx < left + w)
            else:  # circle
                r = int(rng.integers(s // 8, s // 3))
                cy = int(rng.integers(r, s - r))
                cx = int(rng.integers(r, s - r))
                region = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
            mask[region] = cls
            image[region] = color + rng.normal(0, self.noise, (int(region.sum()), 3))
        np.clip(image, 0.0, 1.0, out=image)
        return image, mask

    def batch(self, indices: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Stack samples into (N,H,W,3) images and (N,H,W) masks."""
        samples = [self.sample(i) for i in indices]
        return (
            np.stack([im for im, _ in samples]),
            np.stack([m for _, m in samples]),
        )

    def shard_indices(self, n_samples: int, rank: int, world: int) -> list[int]:
        """Contiguous-stride shard of ``range(n_samples)`` for one rank.

        The standard Horovod sharding: rank r takes indices r, r+world,
        r+2*world, ... — disjoint across ranks, jointly covering the set.
        """
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} out of range for world {world}")
        return list(range(rank, n_samples, world))
