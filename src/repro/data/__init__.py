"""Dataset statistics and the synthetic data substrate.

The paper trains on the augmented PASCAL VOC 2012 segmentation set
(10,582 train / 1,449 val images, 21 classes, 513×513 crops).  We cannot
redistribute VOC; what the reproduction actually needs from it is:

* the **epoch geometry** (images per epoch → steps per epoch at a given
  global batch) and the **input-pipeline load** (bytes decoded and
  augmented per second) — provided by :data:`~repro.data.voc.VOC2012_AUG`
  and :class:`~repro.data.pipeline.InputPipelineModel`;
* **real label structure** for the npnn end-to-end trainer — provided by
  :class:`~repro.data.voc.VOCMini`, a seeded synthetic shapes dataset
  with pixel-accurate masks and a learnable color→class mapping.
"""

from repro.data.pipeline import InputPipelineModel, PipelineClock
from repro.data.voc import VOC2012_AUG, DatasetStats, VOCMini

__all__ = [
    "DatasetStats",
    "InputPipelineModel",
    "PipelineClock",
    "VOC2012_AUG",
    "VOCMini",
]
