"""Host-side input-pipeline timing model.

Summit nodes feed each GPU from POWER9 cores (read from GPFS, JPEG
decode, random crop/flip/scale augmentation, H2D copy).  The TF dataset
pipeline prefetches: the pipeline produces batches continuously and the
training step consumes them, so the *observed* stall per iteration is
``max(0, batch_production_time - step_time)`` once the prefetch buffer
drains.

The trainer models this with a producer clock per rank: batch ``i+1``
becomes ready ``batch_seconds`` after batch ``i`` started producing,
bounded by the prefetch depth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InputPipelineModel"]


@dataclass(frozen=True)
class InputPipelineModel:
    """Per-rank input pipeline parameters.

    Attributes
    ----------
    seconds_per_image:
        Host time to read + decode + augment one image with all reader
        threads accounted (i.e. already divided by parallelism).
    h2d_seconds_per_image:
        Host-to-device copy time per image (NVLink on Summit: fast).
    prefetch_batches:
        Producer work-ahead depth (TF ``prefetch``).
    """

    seconds_per_image: float = 1.1e-3
    h2d_seconds_per_image: float = 0.05e-3
    prefetch_batches: int = 2

    def __post_init__(self) -> None:
        if self.seconds_per_image < 0 or self.h2d_seconds_per_image < 0:
            raise ValueError("pipeline times must be >= 0")
        if self.prefetch_batches < 1:
            raise ValueError("prefetch depth must be >= 1")

    def batch_seconds(self, batch_size: int) -> float:
        """Production time of one batch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size * (self.seconds_per_image + self.h2d_seconds_per_image)


class PipelineClock:
    """Tracks when each batch becomes ready for one rank.

    A tiny piece of mutable state the trainer owns: ``wait(now)`` returns
    how long the consumer must stall for the next batch, and advances the
    producer clock (which can run ahead by ``prefetch_batches``).
    """

    def __init__(self, model: InputPipelineModel, batch_size: int,
                 start_time: float = 0.0) -> None:
        self.model = model
        self.batch_s = model.batch_seconds(batch_size)
        #: Completion times of produced-but-unconsumed batches.
        self._ready_at = [
            start_time + (i + 1) * self.batch_s
            for i in range(model.prefetch_batches)
        ]

    def wait(self, now: float) -> float:
        """Stall needed at time ``now`` to obtain the next batch."""
        ready = self._ready_at.pop(0)
        stall = max(0.0, ready - now)
        # Producer starts the replacement batch as soon as a slot frees
        # (bounded work-ahead): it cannot start before its predecessor
        # finished, nor before the consumer freed the slot (= now+stall).
        last = self._ready_at[-1] if self._ready_at else ready
        self._ready_at.append(max(last, now + stall) + self.batch_s)
        return stall
