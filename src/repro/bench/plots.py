"""Terminal figures: ASCII line charts for the paper's figure-shaped data.

Benchmarks and examples print tables; for the figure-shaped experiments
(scaling curves, sweeps, OSU latency curves) an actual *picture* of the
shape is worth having even in a terminal.  :func:`ascii_chart` renders
multiple named series over a shared x axis into a fixed-size character
grid with per-series markers and a legend — no plotting dependency.
"""

from __future__ import annotations

import math

__all__ = ["ascii_chart", "chart_result"]

MARKERS = "ox*+#@%&"


def ascii_chart(x: list[float], series: dict[str, list[float]],
                width: int = 64, height: int = 16,
                x_label: str = "", y_label: str = "",
                log_x: bool = False) -> str:
    """Render named y-series over shared x values as an ASCII chart.

    Points are plotted with one marker character per series and joined
    visually by proximity on the grid; the y axis is annotated with min /
    max, the x axis with its endpoints.  ``log_x`` spaces the x axis
    logarithmically (message-size sweeps).
    """
    if not x or not series:
        raise ValueError("need x values and at least one series")
    if any(len(ys) != len(x) for ys in series.values()):
        raise ValueError("every series must match the length of x")
    if len(series) > len(MARKERS):
        raise ValueError(f"at most {len(MARKERS)} series supported")
    if width < 16 or height < 4:
        raise ValueError("chart too small")
    if log_x and min(x) <= 0:
        raise ValueError("log_x requires positive x values")

    xs = [math.log10(v) for v in x] if log_x else list(x)
    x_lo, x_hi = min(xs), max(xs)
    all_y = [v for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(MARKERS, series.items()):
        for xv, yv in zip(xs, ys):
            col = round((xv - x_lo) / x_span * (width - 1))
            row = height - 1 - round((yv - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    y_hi_lab = f"{y_hi:g}"
    y_lo_lab = f"{y_lo:g}"
    pad = max(len(y_hi_lab), len(y_lo_lab))
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_lab.rjust(pad)
        elif i == height - 1:
            label = y_lo_lab.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}|")
    x_lo_lab = f"{x[0]:g}"
    x_hi_lab = f"{x[-1]:g}"
    axis = f"{' ' * pad} +{'-' * width}+"
    xline = (f"{' ' * pad}  {x_lo_lab}"
             f"{' ' * max(1, width - len(x_lo_lab) - len(x_hi_lab))}{x_hi_lab}")
    lines.append(axis)
    lines.append(xline)
    if x_label or y_label:
        lines.append(f"{' ' * pad}  x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(f"{' ' * pad}  {legend}")
    return "\n".join(lines)


def _numeric(value) -> float:
    """Coerce a table cell to float (accepts '93.2%' and '1,244')."""
    if isinstance(value, (int, float)):
        return float(value)
    return float(str(value).strip().rstrip("%").replace(",", ""))


def chart_result(result, x: str, y: str, group: str | None = None,
                 **kwargs) -> str:
    """Chart one column of an :class:`~repro.bench.harness.ExperimentResult`.

    Plots column ``y`` over column ``x`` of ``result.rows``.  With
    ``group``, each distinct value of that column becomes its own series
    (e.g. ``chart_result(res, x="gpus", y="efficiency", group="config")``
    for default-vs-tuned curves); every group must cover the same x
    values.  Percent and comma-formatted cells are parsed numerically.
    Remaining keyword arguments pass through to :func:`ascii_chart`.
    """
    rows = result.rows
    if not rows:
        raise ValueError(f"{result.experiment}: no rows to chart")
    for column in (x, y) + ((group,) if group else ()):
        if column not in rows[0]:
            raise ValueError(
                f"{result.experiment}: no column {column!r}; "
                f"available: {list(rows[0])}"
            )
    series: dict[str, dict[float, float]] = {}
    for row in rows:
        name = str(row[group]) if group else y
        series.setdefault(name, {})[_numeric(row[x])] = _numeric(row[y])
    xs = sorted(next(iter(series.values())))
    for name, points in series.items():
        if sorted(points) != xs:
            raise ValueError(
                f"{result.experiment}: series {name!r} covers x={sorted(points)}, "
                f"expected {xs}"
            )
    kwargs.setdefault("x_label", x)
    kwargs.setdefault("y_label", y)
    return ascii_chart(xs, {n: [p[v] for v in xs] for n, p in series.items()},
                       **kwargs)
