"""Result containers and table/JSON rendering for the experiment drivers.

Results are **schema-versioned**: :meth:`ExperimentResult.to_json` wraps
the payload in an envelope carrying ``schema_version`` and the producing
``package_version``, plus a free-form ``meta`` block (run variant, runner
cache/worker statistics) stamped by whoever ran the experiment.
:func:`load_result` is the inverse of :func:`save_result` — it reads both
current and pre-envelope (schema 0) files, so existing
``bench_results/*.json`` keep loading.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import package_version

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentResult",
    "format_rows",
    "load_result",
    "save_result",
]

#: Version of the on-disk result JSON layout.  History:
#: 0 — bare payload (no envelope);
#: 1 — envelope with schema/package version + ``meta`` block;
#: 2 — optional ``trace_summary`` block (critical-path digest).
SCHEMA_VERSION = 2


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    ``rows`` is a list of flat dicts sharing the same keys (the table
    columns); ``paper`` maps claim names to the paper's values and
    ``measured`` to ours, so EXPERIMENTS.md can be generated from runs.
    ``meta`` is producer metadata (run variant, runner workers and cache
    hit/miss counts) that travels with the result but is *not* part of
    the measurement payload — determinism comparisons ignore it.
    ``trace_summary`` is an optional critical-path digest (see
    :meth:`repro.trace.CriticalPathReport.trace_summary`) attached when
    the experiment ran with span tracing; it *is* part of the payload
    (the simulation is deterministic, so the digest is too).
    """

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    paper: dict[str, float | str] = field(default_factory=dict)
    measured: dict[str, float | str] = field(default_factory=dict)
    notes: str = ""
    meta: dict = field(default_factory=dict)
    trace_summary: dict | None = None

    def table(self) -> str:
        """Rendered fixed-width table plus the paper-vs-measured block."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            parts.append(format_rows(self.rows))
        if self.paper:
            parts.append("paper vs measured:")
            for key, pval in self.paper.items():
                mval = self.measured.get(key, "—")
                parts.append(f"  {key:<38} paper={_fmt(pval):>10}  ours={_fmt(mval):>10}")
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def payload(self) -> dict:
        """The measurement payload alone (no envelope, no ``meta``).

        This is what determinism gates compare: serial, parallel and
        warm-cache runs of the same experiment must agree byte-for-byte
        on ``json.dumps(result.payload(), ...)``.
        """
        out = {
            "experiment": self.experiment,
            "title": self.title,
            "rows": self.rows,
            "paper": self.paper,
            "measured": self.measured,
            "notes": self.notes,
        }
        if self.trace_summary is not None:
            out["trace_summary"] = self.trace_summary
        return out

    def to_json(self) -> str:
        """Versioned JSON form: envelope + payload + ``meta``."""
        return json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "package_version": package_version(),
                **self.payload(),
                "meta": self.meta,
            },
            indent=1,
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def format_rows(rows: list[dict]) -> str:
    """Fixed-width table from a list of same-keyed dicts."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows:
        if list(row) != columns:
            raise ValueError("rows must share identical column order")
    widths = {
        c: max(len(str(c)), max(len(_fmt(r[c])) for r in rows)) for c in columns
    }
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(f"{_fmt(row[c]):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


def save_result(result: ExperimentResult, directory: str | Path = "bench_results") -> Path:
    """Persist a result as ``<directory>/<experiment>.json``; returns the path."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.experiment.lower()}.json"
    path.write_text(result.to_json())
    return path


def load_result(source: str | Path) -> ExperimentResult:
    """Read a result saved by :func:`save_result` (any known schema).

    ``source`` is a path to a result JSON file.  Round-trips exactly:
    ``load_result(save_result(r)) == r``.  Files written before the
    envelope existed (schema 0) load with an empty ``meta``.
    """
    text = Path(source).read_text()
    data = json.loads(text)
    if not isinstance(data, dict) or "experiment" not in data:
        raise ValueError(f"{source}: not an ExperimentResult JSON file")
    version = data.get("schema_version", 0)
    if not 0 <= version <= SCHEMA_VERSION:
        raise ValueError(
            f"{source}: schema_version {version} is newer than this "
            f"package understands ({SCHEMA_VERSION})"
        )
    return ExperimentResult(
        experiment=data["experiment"],
        title=data.get("title", ""),
        rows=data.get("rows", []),
        paper=data.get("paper", {}),
        measured=data.get("measured", {}),
        notes=data.get("notes", ""),
        meta=data.get("meta", {}),
        trace_summary=data.get("trace_summary"),
    )
