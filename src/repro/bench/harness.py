"""Result containers and table/JSON rendering for the experiment drivers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentResult", "format_rows", "save_result"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure.

    ``rows`` is a list of flat dicts sharing the same keys (the table
    columns); ``paper`` maps claim names to the paper's values and
    ``measured`` to ours, so EXPERIMENTS.md can be generated from runs.
    """

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    paper: dict[str, float | str] = field(default_factory=dict)
    measured: dict[str, float | str] = field(default_factory=dict)
    notes: str = ""

    def table(self) -> str:
        """Rendered fixed-width table plus the paper-vs-measured block."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            parts.append(format_rows(self.rows))
        if self.paper:
            parts.append("paper vs measured:")
            for key, pval in self.paper.items():
                mval = self.measured.get(key, "—")
                parts.append(f"  {key:<38} paper={_fmt(pval):>10}  ours={_fmt(mval):>10}")
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """JSON form with every field."""
        return json.dumps(
            {
                "experiment": self.experiment,
                "title": self.title,
                "rows": self.rows,
                "paper": self.paper,
                "measured": self.measured,
                "notes": self.notes,
            },
            indent=1,
        )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def format_rows(rows: list[dict]) -> str:
    """Fixed-width table from a list of same-keyed dicts."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows:
        if list(row) != columns:
            raise ValueError("rows must share identical column order")
    widths = {
        c: max(len(str(c)), max(len(_fmt(r[c])) for r in rows)) for c in columns
    }
    header = "  ".join(f"{c:>{widths[c]}}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(f"{_fmt(row[c]):>{widths[c]}}" for c in columns))
    return "\n".join(lines)


def save_result(result: ExperimentResult, directory: str | Path = "bench_results") -> Path:
    """Persist a result as ``<directory>/<experiment>.json``; returns the path."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.experiment.lower()}.json"
    path.write_text(result.to_json())
    return path
