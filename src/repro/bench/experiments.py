"""Experiment drivers E1–E10 (see DESIGN.md §4 for the index).

Every driver is deterministic (seeded), returns an
:class:`~repro.bench.harness.ExperimentResult`, and accepts size
parameters so tests can run scaled-down versions while the benchmark
targets run the paper-scale configuration.

API conventions (normalized; legacy spellings warn once and forward):

* parameters are keyword-only; fixed-scale drivers take ``gpus``,
  scaling-curve drivers take ``gpu_counts``, and every driver that
  simulates training takes ``seed``;
* sweep-shaped drivers (E3–E6, E8, E9, E11, E12, E14) accept ``runner``
  — a :class:`~repro.runner.Runner` — and resolve their independent
  simulation points through it, so they parallelize and memoize for
  free; ``runner=None`` is an inline serial runner with no cache, which
  produces **bit-identical** results to the pre-runner serial code.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.bench.compat import as_gpu_counts, deprecated_kwargs
from repro.bench.harness import ExperimentResult
from repro.runner import OSUPoint, Runner, TrainPoint
from repro.core import (
    ScalingCurve,
    ScalingPoint,
    StagedTuner,
    measure_training,
    paper_default_config,
    paper_tuned_config,
)
from repro.core.sweep import model_profile
from repro.data import VOC2012_AUG, VOCMini
from repro.horovod.config import HorovodConfig
from repro.models import build_deeplabv3plus
from repro.mpi import MPI_LIBRARIES, MVAPICH2_GDR, SPECTRUM_MPI
from repro.mpi.osu import osu_allreduce
from repro.npnn import DataParallelTrainer, ParallelConfig
from repro.sim.units import KiB, MiB
from repro.train.convergence import MIOU_MODEL
from repro.train.recipe import VOCSegmentationRecipe
from repro.train.schedule import linear_scaled_lr

__all__ = [
    "e1_single_gpu_throughput",
    "e2_tensor_distribution",
    "e3_osu_allreduce",
    "e4_fusion_sweep",
    "e5_cycle_sweep",
    "e6_scaling_comparison",
    "e7_miou",
    "e7_npnn_training",
    "e8_efficiency_table",
    "e9_ablation",
    "e10_autotune_vs_staged",
    "e11_time_to_train",
    "e12_strong_vs_weak_scaling",
    "e13_degraded_rail",
    "e13_fault_injection",
    "e14_efficiency_attribution",
    "e15_interrupt_resume",
    "e16_critical_path",
    "e17_fastpath_speedup",
]

#: The paper evaluates up to 22 nodes × 6 V100 = 132 GPUs.
PAPER_MAX_GPUS = 132
#: GPU counts for scaling curves (Summit allocations grow by nodes).
SCALING_GPUS = (1, 6, 12, 24, 48, 96, 132)


def _resolve(points, runner: Runner | None) -> list:
    """Resolve simulation points through the given (or an inline) runner."""
    return (runner if runner is not None else Runner()).run(points)


# ---------------------------------------------------------------- E1 ----
def e1_single_gpu_throughput(*, iterations: int = 3,
                             seed: int = 0) -> ExperimentResult:
    """E1 — single-V100 throughput: DLv3+ 6.7 vs ResNet-50 300 img/s."""
    rows = []
    measured = {}
    paper_numbers = {"deeplab": 6.7, "resnet50": 300.0}
    for model, paper_ips in paper_numbers.items():
        profile = model_profile(model)
        m = measure_training(
            1, paper_default_config(), model=model, iterations=iterations,
            jitter_std=0.0, seed=seed,
        )
        rows.append({
            "model": model,
            "batch": profile.batch_size,
            "paper img/s": paper_ips,
            "compute img/s": round(profile.images_per_second, 2),
            "measured img/s": round(m.images_per_second, 2),
        })
        measured[f"{model}_img_per_s"] = round(m.images_per_second, 2)
    ratio = (
        measured["resnet50_img_per_s"] / measured["deeplab_img_per_s"]
    )
    measured["throughput_ratio"] = round(ratio, 1)
    return ExperimentResult(
        experiment="E1",
        title="Single-GPU training throughput (V100)",
        rows=rows,
        paper={
            "deeplab_img_per_s": 6.7,
            "resnet50_img_per_s": 300.0,
            "throughput_ratio": 44.8,
        },
        measured=measured,
    )


# ---------------------------------------------------------------- E2 ----
def e2_tensor_distribution(*, seed: int = 0) -> ExperimentResult:
    """E2 — DLv3+ gradient tensor-size distribution (fusion motivation).

    ``seed`` is accepted for signature uniformity with the other
    drivers; the layer graph is reconstructed deterministically, so it
    has no effect.
    """
    del seed  # deterministic reconstruction; kept for API uniformity
    graph = build_deeplabv3plus()
    sizes = np.array([t.nbytes for t in graph.grad_tensors()])
    buckets = [
        ("<= 4 KiB", sizes <= 4 * KiB),
        ("4-64 KiB", (sizes > 4 * KiB) & (sizes <= 64 * KiB)),
        ("64 KiB-1 MiB", (sizes > 64 * KiB) & (sizes <= 1 * MiB)),
        ("> 1 MiB", sizes > 1 * MiB),
    ]
    rows = [
        {
            "bucket": name,
            "tensors": int(mask.sum()),
            "bytes (MiB)": round(float(sizes[mask].sum()) / MiB, 2),
            "share of bytes": f"{sizes[mask].sum() / sizes.sum() * 100:.1f}%",
        }
        for name, mask in buckets
    ]
    return ExperimentResult(
        experiment="E2",
        title="DLv3+ gradient tensor size distribution",
        rows=rows,
        paper={"tensor_count": "hundreds (model has ~41M params)"},
        measured={
            "tensor_count": len(sizes),
            "median_bytes": int(np.median(sizes)),
            "max_bytes": int(sizes.max()),
            "total_MiB": round(float(sizes.sum()) / MiB, 1),
        },
        notes="the long tail of tiny tensors is what tensor fusion amortizes",
    )


# ---------------------------------------------------------------- E3 ----
def e3_osu_allreduce(*, gpus: int = 24, iterations: int = 3,
                     sizes: tuple[int, ...] | None = None,
                     runner: Runner | None = None) -> ExperimentResult:
    """E3 — OSU-style allreduce latency vs message size per library."""
    if sizes is None:
        sizes = tuple(4 ** i for i in range(2, 14))  # 16 B .. 64 MiB
    libraries = sorted(MPI_LIBRARIES.items())
    points = [
        OSUPoint(gpus=gpus, library=lib, nbytes=nbytes, iterations=iterations)
        for nbytes in sizes
        for _name, lib in libraries
    ]
    results = iter(_resolve(points, runner))
    rows = []
    for nbytes in sizes:
        row = {"bytes": nbytes}
        for name, _lib in libraries:
            row[f"{name} (us)"] = round(next(results).latency_us, 1)
        row["GDR speedup"] = round(
            row["SpectrumMPI (us)"] / row["MVAPICH2-GDR (us)"], 2
        )
        rows.append(row)
    small = rows[0]["GDR speedup"]
    large = rows[-1]["GDR speedup"]
    return ExperimentResult(
        experiment="E3",
        title=f"OSU allreduce latency, {gpus} GPUs",
        rows=rows,
        paper={"gdr_faster_at_all_sizes": "yes (published OSU comparisons)"},
        measured={
            "gdr_faster_at_all_sizes": "yes" if min(r["GDR speedup"] for r in rows) > 1 else "no",
            "small_msg_speedup": small,
            "large_msg_speedup": large,
        },
    )


# ---------------------------------------------------------------- E4 ----
def e4_fusion_sweep(*, gpus: int = 24, iterations: int = 3,
                    thresholds: tuple[int, ...] | None = None,
                    seed: int = 0,
                    runner: Runner | None = None) -> ExperimentResult:
    """E4 — HOROVOD_FUSION_THRESHOLD sweep at fixed scale.

    Swept on both bases: under the default Spectrum library (where
    exposed communication makes fusion a first-order throughput knob at
    scale) and under the tuned MVAPICH2-GDR setup (where communication
    hides and fusion only shows in serialized allreduce time).
    """
    if thresholds is None:
        thresholds = (1 * MiB, 8 * MiB, 32 * MiB, 64 * MiB, 128 * MiB, 256 * MiB)
    bases = [("Spectrum", paper_default_config()), ("GDR", paper_tuned_config())]
    points = [
        TrainPoint(
            gpus=gpus,
            config=dataclasses.replace(
                base,
                horovod=base.horovod.with_(fusion_threshold_bytes=threshold),
            ),
            iterations=iterations, jitter_std=0.0, seed=seed,
        )
        for threshold in thresholds
        for _base_name, base in bases
    ]
    results = iter(_resolve(points, runner))
    rows = []
    for threshold in thresholds:
        row = {"fusion": f"{threshold // MiB}MiB" if threshold else "off"}
        for base_name, _base in bases:
            m = next(results)
            iters = len(m.stats.iteration_seconds)
            row[f"{base_name} img/s"] = round(m.images_per_second, 1)
            row[f"{base_name} ops/iter"] = round(
                m.runtime_stats.fused_ops / iters, 1
            )
            row[f"{base_name} allreduce ms/iter"] = round(
                m.runtime_stats.allreduce_seconds / iters * 1e3, 1
            )
        rows.append(row)
    best = max(rows, key=lambda r: r["Spectrum img/s"])
    return ExperimentResult(
        experiment="E4",
        title=f"Fusion-threshold sweep, {gpus} GPUs",
        rows=rows,
        paper={"shape": "small thresholds are worst; large thresholds amortize latency"},
        measured={
            "worst_spectrum": min(rows, key=lambda r: r["Spectrum img/s"])["fusion"],
            "best_spectrum": best["fusion"],
            "small_fusion_penalty": round(
                best["Spectrum img/s"] / rows[0]["Spectrum img/s"], 3
            ),
        },
    )


# ---------------------------------------------------------------- E5 ----
def e5_cycle_sweep(*, gpus: int = 132, iterations: int = 3,
                   cycles_ms: tuple[float, ...] = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0),
                   seed: int = 0,
                   runner: Runner | None = None) -> ExperimentResult:
    """E5 — HOROVOD_CYCLE_TIME sweep (fragmentation vs stall).

    Under the default Spectrum library (exposed, α-heavy communication),
    small cycles fragment fusion into many expensive collectives and
    large cycles stall the backward tail — the interior optimum the
    paper's tuning finds.  Under the tuned GDR setup the same sweep is a
    gentle monotone (communication hides), also reported.
    """
    bases = [("Spectrum", paper_default_config()), ("GDR", paper_tuned_config())]
    points = [
        TrainPoint(
            gpus=gpus,
            config=dataclasses.replace(
                base, horovod=base.horovod.with_(cycle_time_s=cycle_ms * 1e-3)
            ),
            iterations=iterations, jitter_std=0.0, seed=seed,
        )
        for cycle_ms in cycles_ms
        for _base_name, base in bases
    ]
    results = iter(_resolve(points, runner))
    rows = []
    for cycle_ms in cycles_ms:
        row = {"cycle (ms)": cycle_ms}
        for base_name, _base in bases:
            m = next(results)
            iters = len(m.stats.iteration_seconds)
            row[f"{base_name} img/s"] = round(m.images_per_second, 1)
            row[f"{base_name} ops/iter"] = round(
                m.runtime_stats.fused_ops / iters, 1
            )
            row[f"{base_name} stall ms/iter"] = round(
                max(0.0, m.stats.mean_iteration_seconds
                    - m.stats.compute_iteration_seconds) * 1e3, 1
            )
        rows.append(row)
    best = max(rows, key=lambda r: r["Spectrum img/s"])
    worst = min(rows, key=lambda r: r["Spectrum img/s"])
    return ExperimentResult(
        experiment="E5",
        title=f"Cycle-time sweep, {gpus} GPUs",
        rows=rows,
        paper={"shape": "small cycles preferred; large cycles stall the tail"},
        measured={
            "best_cycle_ms_spectrum": best["cycle (ms)"],
            "large_cycle_penalty": round(
                best["Spectrum img/s"] / worst["Spectrum img/s"], 3
            ),
        },
        notes="model limitation: the host-CPU cost that penalizes sub-ms "
              "cycles in production Horovod is not modeled, so the small-"
              "cycle end is flat here instead of turning over",
    )


# ---------------------------------------------------------------- E6 ----
@deprecated_kwargs(gpus=("gpu_counts", as_gpu_counts))
def e6_scaling_comparison(*, gpu_counts: tuple[int, ...] = SCALING_GPUS,
                          iterations: int = 3,
                          jitter_std: float = 0.03,
                          seed: int = 0,
                          runner: Runner | None = None) -> ExperimentResult:
    """E6 — the headline figure: default vs tuned scaling to 132 GPUs.

    Small-scale points are cheap to simulate, so they run extra
    iterations: with per-rank compute jitter, a couple of steady
    iterations at 1 GPU would otherwise be a noisy efficiency baseline.
    """
    configs = [
        ("default (Spectrum MPI)", paper_default_config()),
        ("tuned (MVAPICH2-GDR)", paper_tuned_config()),
    ]
    points = [
        TrainPoint(
            gpus=gpus, config=cfg,
            iterations=iterations if gpus > 24 else max(iterations, 8),
            jitter_std=jitter_std, seed=seed,
        )
        for _name, cfg in configs
        for gpus in gpu_counts
    ]
    results = iter(_resolve(points, runner))
    curves = []
    for name, _cfg in configs:
        curve = ScalingCurve(name)
        for _gpus in gpu_counts:
            curve.add(ScalingPoint.from_measurement(next(results)))
        curves.append(curve)
    default, tuned = curves
    rows = []
    for gpus in gpu_counts:
        d, t = default.point(gpus), tuned.point(gpus)
        rows.append({
            "GPUs": gpus,
            "default img/s": round(d.images_per_second, 1),
            "default eff": f"{d.efficiency * 100:.1f}%",
            "tuned img/s": round(t.images_per_second, 1),
            "tuned eff": f"{t.efficiency * 100:.1f}%",
            "speedup": round(t.images_per_second / d.images_per_second, 2),
        })
    last = max(gpu_counts)
    d_eff = default.point(last).efficiency * 100
    t_eff = tuned.point(last).efficiency * 100
    return ExperimentResult(
        experiment="E6",
        title=f"Scaling comparison up to {last} GPUs (DLv3+, bs 8/GPU)",
        rows=rows,
        paper={
            "tuned_efficiency_at_132": 92.0,
            "default_efficiency_at_132": 92.0 / 1.3,
            "speedup_at_132": 1.3,
            "efficiency_gain_points": 23.9,
        },
        measured={
            "tuned_efficiency_at_132": round(t_eff, 1),
            "default_efficiency_at_132": round(d_eff, 1),
            "speedup_at_132": round(
                tuned.point(last).images_per_second
                / default.point(last).images_per_second, 2
            ),
            "efficiency_gain_points": round(t_eff - d_eff, 1),
        },
        notes="efficiency = throughput / (GPUs x calibrated 1-GPU compute throughput)",
    )


# ---------------------------------------------------------------- E7 ----
def e7_miou(*, seed: int = 0) -> ExperimentResult:
    """E7 — final accuracy: the paper's 80.8% mIOU distributed run.

    Distributed configuration: 16 GPUs × batch 8 = global batch 128 with
    the linear-scaling warmup rule, standard 45-epoch budget.
    """
    epochs = VOC2012_AUG.epochs_for_steps(30_000, 16)
    rows = []
    setups = [
        ("single-GPU baseline (B=16)", 16, True, True),
        ("distributed, LR scaled + warmup (B=128)", 128, True, True),
        ("distributed, no warmup (B=128)", 128, True, False),
    ]
    for name, batch, scaling, warmup in setups:
        miou = MIOU_MODEL.miou(epochs, batch, lr_scaling=scaling,
                               warmup=warmup, seed=seed)
        rows.append({
            "setup": name,
            "global batch": batch,
            "epochs": round(epochs, 1),
            "mIOU %": round(miou, 2),
        })
    schedule = linear_scaled_lr(
        0.007, world_size=16, max_steps=30_000 * 16 // 128,
        steps_per_epoch=VOC2012_AUG.steps_per_epoch(128),
    )
    distributed = rows[1]["mIOU %"]
    return ExperimentResult(
        experiment="E7",
        title="Final PASCAL VOC val mIOU (convergence model)",
        rows=rows,
        paper={"distributed_miou": 80.8},
        measured={
            "distributed_miou": distributed,
            "peak_lr": round(schedule.base_lr, 4),
            "warmup_steps": schedule.warmup_steps,
        },
        notes="mechanistic gradient-exactness is checked separately by the "
              "npnn trainer (e7_npnn_training)",
    )


def e7_npnn_training(*, steps: int = 120, world: int = 4,
                     seed: int = 0) -> ExperimentResult:
    """E7b — real distributed training on VOC-mini (actual compute)."""
    dataset = VOCMini(size=24, num_classes=4, seed=seed)
    trainer = DataParallelTrainer(
        dataset,
        ParallelConfig(world=world, per_replica_batch=4, width=8, lr=0.08,
                       seed=seed),
    )
    val = list(range(2000, 2048))
    initial = trainer.evaluate(val)
    rows = [{"step": 0, "loss": float("nan"), "mIOU": round(initial, 3)}]
    chunk = max(1, steps // 4)
    done = 0
    while done < steps:
        n = min(chunk, steps - done)
        trainer.train(n)
        done += n
        rows.append({
            "step": done,
            "loss": round(trainer.history[-1].mean_loss, 3),
            "mIOU": round(trainer.evaluate(val), 3),
        })
    return ExperimentResult(
        experiment="E7b",
        title=f"Real npnn data-parallel training, {world} replicas (VOC-mini)",
        rows=rows,
        paper={"replicas_bitwise_in_sync": "required by sync SGD"},
        measured={
            "replicas_bitwise_in_sync": "yes" if trainer.replicas_in_sync() else "NO",
            "initial_miou": round(initial, 3),
            "final_miou": rows[-1]["mIOU"],
        },
    )


# ---------------------------------------------------------------- E8 ----
@deprecated_kwargs(gpus=("gpu_counts", as_gpu_counts))
def e8_efficiency_table(*, e6: ExperimentResult | None = None,
                        runner: Runner | None = None,
                        **kwargs) -> ExperimentResult:
    """E8 — per-scale efficiency/speedup table derived from E6."""
    if e6 is None:
        e6 = e6_scaling_comparison(runner=runner, **kwargs)
    rows = []
    for row in e6.rows:
        d_eff = float(row["default eff"].rstrip("%"))
        t_eff = float(row["tuned eff"].rstrip("%"))
        rows.append({
            "GPUs": row["GPUs"],
            "default eff": row["default eff"],
            "tuned eff": row["tuned eff"],
            "gain (points)": round(t_eff - d_eff, 1),
            "tuned/default": row["speedup"],
        })
    return ExperimentResult(
        experiment="E8",
        title="Scaling efficiency and tuning gain per scale",
        rows=rows,
        paper=e6.paper,
        measured=e6.measured,
    )


# ---------------------------------------------------------------- E9 ----
def e9_ablation(*, gpus: int = PAPER_MAX_GPUS, iterations: int = 3,
                jitter_std: float = 0.03, seed: int = 0,
                runner: Runner | None = None) -> ExperimentResult:
    """E9 — which tuning step buys what, at full scale."""
    tuned = paper_tuned_config()
    default = paper_default_config()
    variants = [
        ("default", default),
        ("default + MVAPICH2-GDR only", dataclasses.replace(
            default, library=MVAPICH2_GDR)),
        ("default + fp16 compression", dataclasses.replace(
            default, horovod=default.horovod.with_(compression="fp16"))),
        ("tuned - hierarchical", dataclasses.replace(
            tuned, horovod=tuned.horovod.with_(hierarchical_allreduce=False))),
        ("tuned - GDR (Spectrum + tuned knobs)", dataclasses.replace(
            tuned, library=SPECTRUM_MPI)),
        ("tuned (all steps)", tuned),
        ("tuned + fp16 compression", dataclasses.replace(
            tuned, horovod=tuned.horovod.with_(compression="fp16"))),
    ]
    measurements = _resolve(
        [TrainPoint(gpus=gpus, config=cfg, iterations=iterations,
                    jitter_std=jitter_std, seed=seed)
         for _name, cfg in variants],
        runner,
    )
    rows = []
    for (name, _cfg), m in zip(variants, measurements):
        rows.append({
            "configuration": name,
            "img/s": round(m.images_per_second, 1),
            "efficiency": f"{m.scaling_efficiency * 100:.1f}%",
        })
    by_name = {r["configuration"]: r["img/s"] for r in rows}
    default_ips = by_name["default"]
    return ExperimentResult(
        experiment="E9",
        title=f"Tuning-step ablation at {gpus} GPUs",
        rows=rows,
        paper={"default_is_the_unique_poor_config": "yes"},
        measured={
            "default_is_the_unique_poor_config": "yes"
            if all(
                ips > 1.1 * default_ips
                for name, ips in by_name.items()
                if name != "default"
            )
            else "no",
            "gdr_only_gain": round(
                by_name["default + MVAPICH2-GDR only"] / default_ips, 2
            ),
            "knobs_only_gain": round(
                by_name["tuned - GDR (Spectrum + tuned knobs)"] / default_ips, 2
            ),
            "full_tuning_gain": round(
                by_name["tuned (all steps)"] / default_ips, 2
            ),
        },
        notes="in this model either escape route — the GDR library swap or "
              "the hierarchical/fusion knob changes — recovers near-linear "
              "scaling; the default configuration is poor because it has "
              "neither",
    )


# ---------------------------------------------------------------- E10 ----
def e10_autotune_vs_staged(*, probe_gpus: int = 24,
                           validate_gpus: int = PAPER_MAX_GPUS,
                           iterations: int = 3,
                           validate: bool = True,
                           run_autotuner: bool = True,
                           seed: int = 0,
                           runner: Runner | None = None) -> ExperimentResult:
    """E10 — staged manual tuning vs Horovod's runtime autotuner.

    The paper's method is the staged procedure; Horovod also ships an
    autotuner (``HOROVOD_AUTOTUNE``) that perturbs the same knobs at
    runtime.  Both search the same grids here against the same simulated
    objective; the comparison shows the staged procedure reaches an
    equivalent configuration in comparable (or fewer) measurements —
    which is the paper's justification for not modifying Horovod.
    """
    from repro.horovod.autotune import Autotuner
    from repro.mpi.libraries import MVAPICH2_GDR

    fusion_grid = (1 * MiB, 32 * MiB, 128 * MiB)
    cycle_grid = (1e-3, 5e-3, 25e-3)
    tuner = StagedTuner(
        probe_gpus=probe_gpus,
        iterations=iterations,
        fusion_grid=fusion_grid,
        cycle_grid=cycle_grid,
        seed=seed,
        runner=runner,
    )
    outcome = tuner.tune()
    rows = [
        {
            "method": "staged",
            "stage": s.stage,
            "candidates": len(s.candidates),
            "chosen": s.chosen,
        }
        for s in outcome.stages
    ]
    measured = {
        "staged_choice": outcome.best.label,
        "staged_measurements": outcome.measurements,
    }
    notes = outcome.report()

    if run_autotuner:
        # Horovod's autotuner runs per-process: it can vary the HOROVOD_*
        # knobs but not the MPI library underneath, so it starts from the
        # already-GDR setup (as it would inside an MVAPICH2-GDR job).
        base = dataclasses.replace(paper_default_config(), library=MVAPICH2_GDR)

        def objective(hvd_cfg: HorovodConfig) -> float:
            m = measure_training(
                probe_gpus,
                dataclasses.replace(base, horovod=hvd_cfg),
                iterations=iterations,
                jitter_std=0.0,
            )
            # Same composite the staged tuner effectively uses: throughput
            # minus the exposure risk (in img/s-equivalent units).
            stall = max(
                0.0,
                m.stats.mean_iteration_seconds
                - m.stats.compute_iteration_seconds,
            )
            iters = len(m.stats.steady_iterations)
            backlog = m.runtime_stats.allreduce_seconds / max(1, iters)
            return m.images_per_second - (stall + backlog) * 10.0

        auto = Autotuner(cycle_grid=cycle_grid, fusion_grid=fusion_grid)
        auto_result = auto.run(objective, base=base.horovod)
        rows.append({
            "method": "autotune",
            "stage": "(coordinate descent)",
            "candidates": auto_result.evaluations,
            "chosen": auto_result.best_config.describe(),
        })
        measured["autotune_choice"] = auto_result.best_config.describe()
        measured["autotune_measurements"] = auto_result.evaluations

    if validate:
        m_pick, m_hand = _resolve(
            [TrainPoint(gpus=validate_gpus, config=outcome.best,
                        iterations=iterations, jitter_std=0.03, seed=seed),
             TrainPoint(gpus=validate_gpus, config=paper_tuned_config(),
                        iterations=iterations, jitter_std=0.03, seed=seed)],
            runner,
        )
        measured["tuner_pick_eff_at_scale"] = round(
            m_pick.scaling_efficiency * 100, 1
        )
        measured["hand_tuned_eff_at_scale"] = round(
            m_hand.scaling_efficiency * 100, 1
        )
    return ExperimentResult(
        experiment="E10",
        title="Staged tuning vs runtime autotuning",
        rows=rows,
        paper={"tuning_without_code_changes_reaches_~92%": 92.0},
        measured=measured,
        notes=notes,
    )


# ---------------------------------------------------------------- E11 ----
@deprecated_kwargs(gpus=("gpu_counts", as_gpu_counts))
def e11_time_to_train(*, gpu_counts: tuple[int, ...] = (1, 24, 132),
                      iterations: int = 3,
                      jitter_std: float = 0.03, seed: int = 0,
                      runner: Runner | None = None) -> ExperimentResult:
    """E11 (extension) — wall-clock time to the standard VOC recipe.

    Not a table from the paper: this derives what the tuning *buys in
    practice* by combining measured throughput (E6 machinery), the
    constant-epoch DeepLab recipe, and the convergence model — hours of
    Summit time per trained model, default vs tuned, plus the predicted
    final mIOU at each global batch.
    """
    recipe = VOCSegmentationRecipe()
    configs = (("default", paper_default_config()),
               ("tuned", paper_tuned_config()))
    results = iter(_resolve(
        [TrainPoint(gpus=gpus, config=cfg, iterations=iterations,
                    jitter_std=jitter_std, seed=seed)
         for gpus in gpu_counts
         for _name, cfg in configs],
        runner,
    ))
    rows = []
    for gpus in gpu_counts:
        row = {"GPUs": gpus, "global batch": gpus * recipe.per_gpu_batch,
               "steps": recipe.steps_at(gpus)}
        for name, _cfg in configs:
            m = next(results)
            outcome = recipe.outcome(gpus, m.images_per_second)
            row[f"{name} hours"] = round(outcome.wall_hours, 2)
            if name == "tuned":
                row["predicted mIOU %"] = round(outcome.predicted_miou, 1)
        row["hours saved"] = round(row["default hours"] - row["tuned hours"], 2)
        rows.append(row)
    last = rows[-1]
    return ExperimentResult(
        experiment="E11",
        title="Time to train the standard VOC recipe (extension)",
        rows=rows,
        paper={"note": "derived extension, not a paper table"},
        measured={
            "single_gpu_hours": rows[0]["tuned hours"],
            "max_scale_tuned_hours": last["tuned hours"],
            "max_scale_hours_saved": last["hours saved"],
        },
        notes="constant-epoch scaling: same optimization work at every "
              "scale; accuracy at large batch priced by the convergence "
              "model",
    )


# ---------------------------------------------------------------- E12 ----
@deprecated_kwargs(gpus=("gpu_counts", as_gpu_counts))
def e12_strong_vs_weak_scaling(*,
                               gpu_counts: tuple[int, ...] = (6, 12, 24, 48, 96),
                               global_batch: int = 96,
                               iterations: int = 3, seed: int = 0,
                               runner: Runner | None = None) -> ExperimentResult:
    """E12 (extension) — strong vs weak scaling of the tuned setup.

    The paper scales *weakly* (fixed batch 8 per GPU).  This extension
    contrasts that with *strong* scaling at a fixed global batch: the
    per-GPU batch shrinks with scale, so launch overheads amortize less
    and communication gets less backward time to hide under.  Finding:
    DLv3+ is so compute-heavy per image that it strong-scales gracefully
    down to batch 1 (a few percent off weak scaling) — the wall sits
    below one image per GPU.
    """
    cfg = paper_tuned_config()
    weak_batch = 8
    for gpus in gpu_counts:
        if global_batch % gpus:
            raise ValueError(
                f"global_batch {global_batch} not divisible by {gpus} GPUs"
            )
    results = iter(_resolve(
        [TrainPoint(gpus=gpus, config=cfg, per_gpu_batch=batch,
                    iterations=iterations, jitter_std=0.0, seed=seed)
         for gpus in gpu_counts
         for batch in (weak_batch, global_batch // gpus)],
        runner,
    ))
    rows = []
    for gpus in gpu_counts:
        strong_batch = global_batch // gpus
        weak = next(results)
        strong = next(results)
        rows.append({
            "GPUs": gpus,
            "weak img/s (bs8/GPU)": round(weak.images_per_second, 1),
            "weak eff": f"{weak.scaling_efficiency * 100:.1f}%",
            f"strong img/s (G={global_batch})": round(
                strong.images_per_second, 1
            ),
            "strong bs/GPU": strong_batch,
            "strong iter (ms)": round(
                strong.stats.mean_iteration_seconds * 1e3, 1
            ),
        })
    first, last = rows[0], rows[-1]
    strong_col = f"strong img/s (G={global_batch})"
    strong_speedup = last[strong_col] / first[strong_col]
    ideal = gpu_counts[-1] / gpu_counts[0]
    return ExperimentResult(
        experiment="E12",
        title=f"Strong vs weak scaling (tuned config, global batch {global_batch})",
        rows=rows,
        paper={"note": "extension; the paper reports weak scaling only"},
        measured={
            "weak_eff_at_max": last["weak eff"],
            "strong_speedup": round(strong_speedup, 2),
            "ideal_speedup": round(ideal, 1),
            "strong_scaling_efficiency": round(strong_speedup / ideal * 100, 1),
        },
        notes="DLv3+ strong-scales gracefully to batch 1 per GPU: its "
              "per-image compute dwarfs both launch overheads and "
              "communication",
    )


# ---------------------------------------------------------------- E13 ----
def e13_degraded_rail(*, gpus: int = 132, iterations: int = 3,
                      factors: tuple[float, ...] = (1.0, 0.25, 0.05, 0.01),
                      seed: int = 0) -> ExperimentResult:
    """E13 (extension) — fault injection: one slow InfiniBand rail.

    Synchronous data parallelism is gated by its slowest participant.
    Degrading a single node's rail (flapping link, mis-seated cable)
    slows every allreduce that crosses it; this measures how gracefully
    the tuned configuration absorbs partial-bandwidth faults.
    """
    from repro.cluster.topology import Device

    cfg = paper_tuned_config()
    rows = []
    for factor in factors:
        def fault(topo, factor=factor):
            if factor < 1.0:
                # Node 0's rail 0: NIC to leaf switch.
                topo.degrade_link(Device.nic(0, 0), Device.switch(1), factor)

        # Arbitrary fault callables have no canonical form, so this
        # driver stays serial/uncached (see TrainPoint's docstring).
        m = measure_training(gpus, cfg, iterations=iterations,
                             jitter_std=0.0, seed=seed, fault=fault)
        rows.append({
            "rail bandwidth": f"{factor * 100:g}%",
            "img/s": round(m.images_per_second, 1),
            "efficiency": f"{m.scaling_efficiency * 100:.1f}%",
            "iter (ms)": round(m.stats.mean_iteration_seconds * 1e3, 1),
        })
    healthy = rows[0]["img/s"]
    by_factor = {f: row["img/s"] for f, row in zip(factors, rows)}
    return ExperimentResult(
        experiment="E13b",
        title=f"Fault injection: one degraded EDR rail, {gpus} GPUs",
        rows=rows,
        paper={"note": "extension; not a paper experiment"},
        measured={
            f"retained_at_{int(f * 100)}pct_rail": round(ips / healthy, 3)
            for f, ips in by_factor.items() if f < 1.0
        },
        notes="communication hidden under backward absorbs even a 20x "
              "single-rail degradation; only near-total rail loss gates "
              "the synchronous allreduce",
    )


def e13_fault_injection(*, gpus: int = 48, iterations: int = 6,
                        slowdowns: tuple[float, ...] = (1.5, 3.0),
                        flap_fractions: tuple[float, ...] = (0.1, 0.3),
                        crash_at_fraction: float = 0.4,
                        seed: int = 0) -> ExperimentResult:
    """E13 (extension) — scheduled fault injection & resilience sweep.

    Runs the tuned configuration through declarative fault schedules
    (:mod:`repro.faults`): straggler GPUs at several slowdowns, a
    flapping EDR rail at several duty cycles, a mid-run rank crash
    absorbed by the elastic failure detector, and the combination of all
    three.  Each row reports throughput retained relative to the
    fault-free run; crash rows also report the *delivered* retention
    (scaled to the surviving world size) and how long ranks sat under
    suspicion before the communicator shrank.
    """
    from repro.faults import (
        FaultSchedule,
        LinkFlap,
        RankCrash,
        StragglerGPU,
    )

    cfg = paper_tuned_config()
    baseline = measure_training(gpus, cfg, iterations=iterations,
                                jitter_std=0.0, seed=seed)
    t_iter = baseline.stats.mean_iteration_seconds
    span = t_iter * iterations
    rail = ("nic:0:0", "switch:-1:1")
    # Detector tuning: the deadline must exceed healthy submission skew
    # (zero here) but catch a crash well within one iteration.
    detector = dataclasses.replace(cfg, horovod=cfg.horovod.with_(
        negotiation_deadline_s=max(4 * cfg.horovod.cycle_time_s, 0.2 * t_iter),
        suspect_retries=1,
    ))

    scenarios: list[tuple[str, FaultSchedule | None, object]] = [
        ("baseline", None, cfg)
    ]
    for slowdown in slowdowns:
        scenarios.append((
            f"straggler x{slowdown:g}",
            FaultSchedule.of(StragglerGPU(
                rank=1, start_s=t_iter, duration_s=2 * t_iter,
                slowdown=slowdown,
            )),
            cfg,
        ))
    for frac in flap_fractions:
        scenarios.append((
            f"rail flap {frac * 100:g}%",
            FaultSchedule.of(LinkFlap(
                link=rail, start_s=t_iter, duration_s=span,
                period_s=t_iter, down_s=frac * t_iter,
            )),
            cfg,
        ))
    crash_at = crash_at_fraction * span
    scenarios.append((
        "rank crash",
        FaultSchedule.of(RankCrash(rank=gpus - 1, start_s=crash_at)),
        detector,
    ))
    scenarios.append((
        "straggler+flap+crash",
        FaultSchedule.of(
            StragglerGPU(rank=1, start_s=t_iter, duration_s=2 * t_iter,
                         slowdown=max(slowdowns)),
            LinkFlap(link=rail, start_s=t_iter, duration_s=span,
                     period_s=t_iter, down_s=max(flap_fractions) * t_iter),
            RankCrash(rank=gpus - 1, start_s=crash_at),
        ),
        detector,
    ))

    rows = []
    measured: dict[str, float] = {}
    for label, schedule, scen_cfg in scenarios:
        if schedule is None:
            m = baseline
        else:
            m = measure_training(gpus, scen_cfg, iterations=iterations,
                                 jitter_std=0.0, seed=seed,
                                 schedule=schedule)
        report = m.fault_report or {}
        survivors = report.get("surviving_ranks", gpus)
        retained = m.images_per_second / baseline.images_per_second
        delivered = retained * survivors / gpus
        rows.append({
            "scenario": label,
            "img/s": round(m.images_per_second, 1),
            "iter (ms)": round(m.stats.mean_iteration_seconds * 1e3, 1),
            "retained": f"{retained * 100:.1f}%",
            "delivered": f"{delivered * 100:.1f}%",
            "survivors": survivors,
            "suspect (ms)": round(report.get("suspect_seconds", 0.0) * 1e3, 1),
            "retries": report.get("transfer_retries", 0),
        })
        key = label.replace(" ", "_").replace("%", "pct").replace("+", "_")
        measured[f"retained_{key}"] = round(retained, 3)
    return ExperimentResult(
        experiment="E13",
        title=f"Fault injection & resilience sweep, {gpus} GPUs",
        rows=rows,
        paper={"note": "extension; not a paper experiment"},
        measured=measured,
        notes="stragglers are suspected but never evicted (the detector "
              "clears them when they catch up); a confirmed crash shrinks "
              "the communicator and the survivors keep training; flapped "
              "rails are absorbed by transfer retry with backoff",
    )


@deprecated_kwargs(gpus=("gpu_counts", as_gpu_counts))
def e14_efficiency_attribution(
    *,
    gpu_counts: tuple[int, ...] = (6, 24, 96, 132),
    iterations: int = 4,
    seed: int = 0,
    runner: Runner | None = None,
) -> ExperimentResult:
    """E14 (extension) — where does the efficiency go?

    Runs the default and tuned configurations at each GPU count with
    full telemetry and decomposes every steady-state iteration on the
    critical path (:mod:`repro.telemetry.attribution`) into buckets that
    sum to wall time: compute, input stall, straggler skew, exposed
    communication, fusion/cycle wait, and fault-suspect stall.  The
    per-bucket default-vs-tuned delta is the paper's efficiency claim
    (70% → 92% at 132 GPUs) *explained*: tuning must shrink the exposed
    communication + fusion-wait share, not just the headline number.
    """
    from repro.telemetry import BUCKETS, attribute_measurement

    configs = (("default", paper_default_config()),
               ("tuned", paper_tuned_config()))
    results = iter(_resolve(
        [TrainPoint(gpus=gpus, config=cfg, iterations=iterations,
                    seed=seed, telemetry=True)
         for gpus in gpu_counts
         for _name, cfg in configs],
        runner,
    ))
    rows = []
    measured: dict[str, float] = {}
    worst_sum_error = 0.0
    for gpus in gpu_counts:
        overheads = {}
        for name, cfg in configs:
            m = next(results)
            att = attribute_measurement(m)
            shares = att.shares()
            worst_sum_error = max(worst_sum_error, att.max_sum_error)
            overheads[name] = att.overhead_share()
            row = {
                "gpus": gpus,
                "config": name,
                "iter (ms)": round(att.mean_wall_s * 1e3, 1),
                "efficiency": f"{m.scaling_efficiency * 100:.1f}%",
            }
            for bucket in BUCKETS:
                row[bucket] = f"{shares[bucket] * 100:.1f}%"
            row["sum err"] = f"{att.max_sum_error * 100:.2f}%"
            rows.append(row)
            measured[f"overhead_share_{name}_{gpus}"] = round(
                overheads[name], 4
            )
            if gpus == PAPER_MAX_GPUS:
                measured[f"{name}_efficiency_132gpu"] = round(
                    m.scaling_efficiency, 3
                )
        measured[f"overhead_delta_{gpus}"] = round(
            overheads["default"] - overheads["tuned"], 4
        )
    measured["max_bucket_sum_error"] = round(worst_sum_error, 6)
    return ExperimentResult(
        experiment="E14",
        title="Efficiency attribution: default vs tuned "
              f"at {', '.join(str(g) for g in gpu_counts)} GPUs",
        rows=rows,
        paper={"tuned_efficiency_132gpu": 0.92,
               "default_efficiency_132gpu": 0.70},
        measured=measured,
        notes="buckets are a critical-path decomposition of the marking "
              "rank's iteration and sum to wall time by construction; "
              "tuning's win shows up as the exposed_comm + fusion_wait "
              "share collapsing while compute share rises",
    )


def e15_interrupt_resume(
    *,
    gpus: int = 24,
    iterations: int = 8,
    kill_fraction: float = 0.6,
    cadences: tuple[int, ...] = (1, 2),
    seed: int = 0,
) -> ExperimentResult:
    """E15 (extension) — interrupt/resume determinism and checkpoint cost.

    The crash-safety claim, measured: a tuned-config run is killed
    mid-flight (:class:`~repro.faults.ProcessKill` at ``kill_fraction``
    of the baseline wall time) while checkpointing every ``cadence``
    iteration boundaries; the captured
    :class:`~repro.checkpoint.TrainCheckpoint` is then resumed and the
    completed run compared against an uninterrupted baseline.  The gate
    is **bit-identical** equality of the full ``TrainStats`` payload
    (pickle bytes, not approximate throughput), plus the cost axes a
    checkpoint cadence trades off: work redone after the kill (the
    iterations between the last capture and the interrupt) and the
    serialized checkpoint size.
    """
    import pickle

    from repro.checkpoint import (
        CheckpointPlan,
        dumps_checkpoint,
        resume_training,
    )
    from repro.faults import FaultSchedule, ProcessKill

    cfg = paper_tuned_config()
    baseline = measure_training(gpus, cfg, iterations=iterations, seed=seed)
    baseline_blob = pickle.dumps(baseline.stats)
    wall_s = sum(baseline.stats.iteration_seconds)
    kill_at = kill_fraction * wall_s

    rows = []
    measured: dict[str, float] = {}
    all_identical = True
    for cadence in cadences:
        interrupted = measure_training(
            gpus, cfg, iterations=iterations, seed=seed,
            schedule=FaultSchedule.of(ProcessKill(start_s=kill_at)),
            checkpoint=CheckpointPlan(every=cadence),
        )
        if not interrupted.interrupted or interrupted.checkpoint is None:
            raise RuntimeError(
                f"E15 setup failed: kill at {kill_at:.3f}s did not leave a "
                f"resumable checkpoint (cadence {cadence})"
            )
        boundary = interrupted.checkpoint.boundary
        resumed = resume_training(interrupted.checkpoint)
        identical = pickle.dumps(resumed.stats) == baseline_blob
        all_identical = all_identical and identical
        redone = (iterations - boundary) / iterations
        ckpt_bytes = len(dumps_checkpoint(interrupted.checkpoint))
        rows.append({
            "cadence": cadence,
            "killed at": f"{kill_fraction * 100:.0f}% wall",
            "boundary": boundary,
            "resumed it": iterations - boundary,
            "bit identical": "yes" if identical else "NO",
            "redone": f"{redone * 100:.1f}%",
            "ckpt (KiB)": round(ckpt_bytes / 1024, 1),
        })
        measured[f"bit_identical_every_{cadence}"] = float(identical)
        measured[f"redone_fraction_every_{cadence}"] = round(redone, 4)
        measured[f"checkpoint_bytes_every_{cadence}"] = float(ckpt_bytes)
    measured["bit_identical_all"] = float(all_identical)
    return ExperimentResult(
        experiment="E15",
        title=f"Interrupt/resume determinism, {gpus} GPUs × "
              f"{iterations} iterations",
        rows=rows,
        paper={"note": "extension; not a paper experiment"},
        measured=measured,
        notes="a resumed run replays nothing: the checkpoint restores the "
              "simulation clock, runtime/fabric/comm counters, per-rank "
              "RNG state and the telemetry probe, so the completed stats "
              "are byte-for-byte those of the uninterrupted run; denser "
              "cadences shrink redone work at the cost of more capture "
              "points",
    )


def e16_critical_path(
    *,
    gpu_counts: tuple[int, ...] = (6, 24, 96, 132),
    iterations: int = 2,
    seed: int = 0,
    runner: Runner | None = None,
) -> ExperimentResult:
    """E16 (extension) — the simulated critical path, span by span.

    Runs default and tuned configurations at each GPU count with
    link-level span tracing, walks each run's dependency DAG into the
    exact simulated critical path (:mod:`repro.trace.critical`), and
    reports the path's composition: how much of the marking rank's wall
    time is exposed allreduce dwell, which phase/link/rank the path sits
    on longest, and per-span slack.  The headline claim is E14's
    efficiency story at span granularity — tuning collapses the exposed
    allreduce *critical-path share* at 132 GPUs, not just the aggregate
    overhead bucket.  Each critical path is reconciled against the E14
    attribution buckets; the worst absolute disagreement is a measured
    key (it must sit at float tolerance — both decompositions walk the
    same instants).
    """
    from repro.telemetry import BUCKETS, attribute_measurement
    from repro.trace import explain_measurement

    configs = (("default", paper_default_config()),
               ("tuned", paper_tuned_config()))
    results = iter(_resolve(
        [TrainPoint(gpus=gpus, config=cfg, iterations=iterations,
                    seed=seed, telemetry=True, trace="links")
         for gpus in gpu_counts
         for _name, cfg in configs],
        runner,
    ))
    rows = []
    measured: dict[str, float] = {}
    worst_reconcile = 0.0
    shares_at_max: dict[str, float] = {}
    summary_report = None
    for gpus in gpu_counts:
        for name, _cfg in configs:
            m = next(results)
            att = attribute_measurement(m)
            rep = explain_measurement(m)
            cp_tot, att_tot = rep.totals(), att.totals()
            worst_reconcile = max(
                worst_reconcile,
                max(abs(cp_tot[b] - att_tot[b]) for b in BUCKETS),
            )
            share = rep.exposed_allreduce_share
            dwell = rep.dwell_by_phase()
            rows.append({
                "gpus": gpus,
                "config": name,
                "path (ms)": round(rep.mean_path_s * 1e3, 1),
                "wall (ms)": round(rep.mean_wall_s * 1e3, 1),
                "allreduce share": f"{share * 100:.2f}%",
                "top dwell": dwell[0][0] if dwell else "—",
                "path err": f"{rep.max_sum_error * 1e3:.3f}ms",
            })
            measured[f"allreduce_cp_share_{name}_{gpus}"] = round(share, 4)
            if gpus == PAPER_MAX_GPUS:
                shares_at_max[name] = share
            if name == "default":
                summary_report = rep  # default at the largest count wins
    measured["max_reconcile_error_s"] = round(worst_reconcile, 9)
    if PAPER_MAX_GPUS in gpu_counts:
        measured["allreduce_share_drop"] = round(
            shares_at_max["default"] - shares_at_max["tuned"], 4
        )
    return ExperimentResult(
        experiment="E16",
        title="Critical-path diagnosis: default vs tuned "
              f"at {', '.join(str(g) for g in gpu_counts)} GPUs",
        rows=rows,
        paper={"note": "extension; not a paper experiment"},
        measured=measured,
        notes="the critical path is recovered from the span DAG of the "
              "marking (slowest) rank's iterations: backward-pass dwell, "
              "straggler skew, then exposed allreduce segments walked "
              "between last gradient emission and the optimizer barrier; "
              "it reconciles with the E14 attribution buckets because "
              "both decompositions visit the same simulated instants",
        trace_summary=(summary_report.trace_summary()
                       if summary_report is not None else None),
    )


def e17_fastpath_speedup(
    *,
    gpu_counts: tuple[int, ...] = (1, 6, 24),
    iterations: int = 2,
    seed: int = 0,
    ladder: tuple[int, ...] = (2, 3, 5),
    ladder_gpus: int = 6,
) -> ExperimentResult:
    """E17 (extension) — simulator fast path: equivalence and speedup.

    Two accelerations are measured against their correctness contracts.
    First, the **flow-level transfer shortcut**
    (:meth:`~repro.cluster.fabric.Fabric._fast_transfer_viable`): every
    E6-quick sweep point is simulated under both paths and compared
    component-by-component — the shortcut must be invisible in every
    compared payload, with the kernel event counter the only difference
    (the elision the shortcut exists to buy).  Second, **prefix
    memoization** (:mod:`repro.runner.prefix`): an iterations ladder is
    materialized from one shared simulation prefix and compared against
    fresh per-point runs, with the iteration accounting showing what was
    never re-simulated.

    The ``measured`` block holds only deterministic quantities
    (equivalence booleans, shortcut hit rates, elided event counts,
    iteration accounting) so the bench sentinel can baseline this
    experiment; wall-clock seconds and speedups are reported in the rows
    and notes, where run-to-run noise cannot trip the gate.
    """
    import pickle
    import tempfile
    import time

    from repro.core.sweep import clear_profile_cache
    from repro.runner.prefix import PrefixStore, prefix_run
    from repro.sim import fast_path

    def _equivalent(hot, ref) -> bool:
        """The differential-harness comparison, component by component.

        Whole-tuple pickles can differ in string-memoization structure
        alone, so each compared payload is pickled separately (the same
        rule the resume contract's tests follow).
        """
        if pickle.dumps(hot.stats) != pickle.dumps(ref.stats):
            return False
        he, re_ = hot.timeline.events, ref.timeline.events
        if len(he) != len(re_):
            return False
        if any(pickle.dumps(a) != pickle.dumps(b) for a, b in zip(he, re_)):
            return False
        return (
            pickle.dumps(hot.runtime_stats) == pickle.dumps(ref.runtime_stats)
            and pickle.dumps(hot.link_utilization)
            == pickle.dumps(ref.link_utilization)
        )

    configs = (("default", paper_default_config()),
               ("tuned", paper_tuned_config()))
    rows = []
    measured: dict[str, float] = {}
    all_identical = True
    ref_wall = fast_wall = 0.0
    total_elided = 0
    for gpus in gpu_counts:
        for name, cfg in configs:
            clear_profile_cache()
            t0 = time.perf_counter()
            with fast_path(False):
                ref = measure_training(gpus, cfg, iterations=iterations,
                                       seed=seed)
            t1 = time.perf_counter()
            clear_profile_cache()
            with fast_path(True):
                hot = measure_training(gpus, cfg, iterations=iterations,
                                       seed=seed)
            t2 = time.perf_counter()
            ref_wall += t1 - t0
            fast_wall += t2 - t1
            identical = _equivalent(hot, ref)
            all_identical = all_identical and identical
            fp = hot.fast_path or {}
            total_elided += fp.get("events_elided", 0)
            rows.append({
                "gpus": gpus,
                "config": name,
                "bit identical": "yes" if identical else "NO",
                "hit rate": f"{fp.get('hit_rate', 0.0) * 100:.1f}%",
                "elided": fp.get("events_elided", 0),
                "ref (ms)": round((t1 - t0) * 1e3, 1),
                "fast (ms)": round((t2 - t1) * 1e3, 1),
            })
            measured[f"bit_identical_{name}_{gpus}"] = float(identical)
            measured[f"fast_hit_rate_{name}_{gpus}"] = round(
                fp.get("hit_rate", 0.0), 6)
    measured["bit_identical_all"] = float(all_identical)
    measured["events_elided_total"] = float(total_elided)

    # Prefix memoization: a fresh ladder vs naive per-point runs.
    cfg = paper_tuned_config()
    points = [TrainPoint(gpus=ladder_gpus, config=cfg, iterations=n,
                         seed=seed) for n in ladder]
    t0 = time.perf_counter()
    naive = [p.execute() for p in points]
    t1 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        memoized, pstats = prefix_run(points, store=PrefixStore(tmp))
    t2 = time.perf_counter()
    memo_identical = all(
        pickle.dumps(a.stats) == pickle.dumps(b.stats)
        for a, b in zip(naive, memoized)
    )
    all_identical = all_identical and memo_identical
    saved = 1.0 - (pstats.iterations_simulated
                   / max(1, pstats.iterations_reference))
    rows.append({
        "gpus": ladder_gpus,
        "config": f"ladder it={list(ladder)}",
        "bit identical": "yes" if memo_identical else "NO",
        "hit rate": f"{saved * 100:.1f}% it saved",
        "elided": pstats.iterations_reference - pstats.iterations_simulated,
        "ref (ms)": round((t1 - t0) * 1e3, 1),
        "fast (ms)": round((t2 - t1) * 1e3, 1),
    })
    measured["prefix_bit_identical"] = float(memo_identical)
    measured["prefix_iterations_reference"] = float(
        pstats.iterations_reference)
    measured["prefix_iterations_simulated"] = float(
        pstats.iterations_simulated)
    measured["prefix_saved_fraction"] = round(saved, 4)
    measured["bit_identical_all"] = float(all_identical)

    sweep_speedup = ref_wall / fast_wall if fast_wall > 0 else 1.0
    memo_speedup = (t1 - t0) / (t2 - t1) if t2 > t1 else 1.0
    return ExperimentResult(
        experiment="E17",
        title="Fast-path equivalence and speedup "
              f"({', '.join(str(g) for g in gpu_counts)} GPUs + "
              f"it={list(ladder)} ladder)",
        rows=rows,
        paper={"note": "extension; not a paper experiment"},
        measured=measured,
        notes="transfer shortcut: every sweep point is bit-identical "
              "across paths (the kernel event counter is the only "
              "allowed difference); lock-step collectives keep route "
              "links contended, so the shortcut's wall win on this "
              f"sweep is {sweep_speedup:.2f}x — well below the 5x "
              "target (see EXPERIMENTS.md for why the guard rarely "
              "fires under collectives); prefix memoization "
              f"re-simulated {pstats.iterations_simulated} of "
              f"{pstats.iterations_reference} ladder iterations "
              f"({memo_speedup:.2f}x wall on the ladder)",
    )
