"""Declarative experiment registry.

One :class:`ExperimentSpec` per reproduced table/figure, replacing the
ad-hoc ``(description, fn, full_kwargs, quick_kwargs)`` tuples that the
CLI, the benchmark suite and the examples each used to maintain
separately.  The spec records the driver function, both argument sets,
classification tags and — the property the runner exploits — whether the
driver accepts a ``runner=`` for parallel cached execution.

``REGISTRY`` is the single source of truth; ``legacy_table()`` renders
the old tuple view for callers that still want it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.bench import experiments as E
from repro.bench.harness import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner import Runner

__all__ = ["REGISTRY", "ExperimentSpec", "get", "ids", "legacy_table"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to run one experiment at either scale.

    ``parallelizable`` marks drivers that accept ``runner=`` — sweeps of
    independent simulation points.  E1/E2/E7 are single measurements or
    pure analysis; E13/E13b build sequential, baseline-dependent fault
    scenarios (and arbitrary ``fault`` callables are uncacheable), so
    they stay serial.
    """

    id: str
    title: str
    fn: Callable[..., ExperimentResult]
    full_kwargs: dict = field(default_factory=dict)
    quick_kwargs: dict = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    parallelizable: bool = False

    def kwargs(self, quick: bool = False) -> dict:
        """The argument set for one scale (a copy — safe to mutate)."""
        return dict(self.quick_kwargs if quick else self.full_kwargs)

    def run(self, quick: bool = False,
            runner: "Runner | None" = None) -> ExperimentResult:
        """Execute the driver; the runner is passed only where accepted."""
        kwargs = self.kwargs(quick)
        if self.parallelizable and runner is not None:
            kwargs["runner"] = runner
        return self.fn(**kwargs)

    def to_api(self) -> dict:
        """JSON-able view for the service's ``GET /v1/experiments``."""
        return {
            "id": self.id,
            "title": self.title,
            "tags": list(self.tags),
            "parallelizable": self.parallelizable,
            "variants": ["quick", "full"],
        }


_SPECS = (
    ExperimentSpec(
        "E1", "single-GPU throughput (DLv3+ vs ResNet-50)",
        E.e1_single_gpu_throughput,
        quick_kwargs={"iterations": 2},
        tags=("paper", "compute"),
    ),
    ExperimentSpec(
        "E2", "DLv3+ gradient tensor size distribution",
        E.e2_tensor_distribution,
        tags=("paper", "model"),
    ),
    ExperimentSpec(
        "E3", "OSU allreduce latency per MPI library",
        E.e3_osu_allreduce,
        full_kwargs={"gpus": 24},
        quick_kwargs={"gpus": 12, "iterations": 2},
        tags=("paper", "mpi"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E4", "fusion-threshold sweep",
        E.e4_fusion_sweep,
        full_kwargs={"gpus": 132, "iterations": 2},
        quick_kwargs={"gpus": 24, "iterations": 2},
        tags=("paper", "tuning"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E5", "cycle-time sweep",
        E.e5_cycle_sweep,
        full_kwargs={"gpus": 132, "iterations": 2},
        quick_kwargs={"gpus": 24, "iterations": 2},
        tags=("paper", "tuning"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E6", "headline scaling comparison (default vs tuned)",
        E.e6_scaling_comparison,
        quick_kwargs={"gpu_counts": (1, 6, 24), "iterations": 2},
        tags=("paper", "scaling"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E7", "final mIOU (convergence model)",
        E.e7_miou,
        tags=("paper", "convergence"),
    ),
    ExperimentSpec(
        "E7b", "real npnn data-parallel training",
        E.e7_npnn_training,
        full_kwargs={"steps": 120},
        quick_kwargs={"steps": 30},
        tags=("paper", "convergence"),
    ),
    ExperimentSpec(
        "E8", "per-scale efficiency table",
        E.e8_efficiency_table,
        quick_kwargs={"gpu_counts": (1, 6, 24), "iterations": 2},
        tags=("paper", "scaling"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E9", "tuning-step ablation at scale",
        E.e9_ablation,
        full_kwargs={"gpus": 132, "iterations": 2},
        quick_kwargs={"gpus": 24, "iterations": 2},
        tags=("paper", "tuning"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E10", "staged tuning procedure",
        E.e10_autotune_vs_staged,
        quick_kwargs={"probe_gpus": 12, "iterations": 2, "validate": False,
                      "run_autotuner": False},
        tags=("paper", "tuning"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E11", "time to train the VOC recipe (extension)",
        E.e11_time_to_train,
        quick_kwargs={"gpu_counts": (1, 24), "iterations": 2},
        tags=("extension", "scaling"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E12", "strong vs weak scaling (extension)",
        E.e12_strong_vs_weak_scaling,
        quick_kwargs={"gpu_counts": (6, 12, 24), "global_batch": 48,
                      "iterations": 2},
        tags=("extension", "scaling"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E13", "fault injection & resilience sweep (extension)",
        E.e13_fault_injection,
        quick_kwargs={"gpus": 12, "iterations": 4,
                      "slowdowns": (3.0,), "flap_fractions": (0.3,)},
        tags=("extension", "faults"),
    ),
    ExperimentSpec(
        "E13b", "fault injection: degraded rail (extension)",
        E.e13_degraded_rail,
        quick_kwargs={"gpus": 48, "iterations": 2, "factors": (1.0, 0.05)},
        tags=("extension", "faults"),
    ),
    ExperimentSpec(
        "E14", "efficiency attribution: where the time goes (extension)",
        E.e14_efficiency_attribution,
        quick_kwargs={"gpu_counts": (6, 24), "iterations": 2},
        tags=("extension", "telemetry"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E15", "interrupt/resume determinism & checkpoint cost (extension)",
        E.e15_interrupt_resume,
        quick_kwargs={"gpus": 12, "iterations": 5, "cadences": (1,)},
        tags=("extension", "checkpoint"),
    ),
    ExperimentSpec(
        "E16", "critical-path diagnosis: span tracing (extension)",
        E.e16_critical_path,
        full_kwargs={"gpu_counts": (6, 24, 96, 132), "iterations": 2},
        quick_kwargs={"gpu_counts": (6, 24), "iterations": 2},
        tags=("extension", "trace"),
        parallelizable=True,
    ),
    ExperimentSpec(
        "E17", "simulator fast path: equivalence & speedup (extension)",
        E.e17_fastpath_speedup,
        full_kwargs={"gpu_counts": (1, 6, 24, 96), "iterations": 2,
                     "ladder": (2, 3, 5, 8)},
        quick_kwargs={"gpu_counts": (1, 6, 24), "iterations": 2,
                      "ladder": (2, 3, 5)},
        tags=("extension", "fastpath"),
    ),
)

#: id -> spec, in presentation order.
REGISTRY: dict[str, ExperimentSpec] = {spec.id: spec for spec in _SPECS}


def ids() -> tuple[str, ...]:
    """All experiment ids in presentation order."""
    return tuple(REGISTRY)


def get(exp_id: str) -> ExperimentSpec:
    """Look up one spec; raises ``KeyError`` with the known ids."""
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(REGISTRY)}"
        ) from None


def legacy_table() -> dict[str, tuple]:
    """The pre-registry ``(description, fn, full, quick)`` tuple view."""
    return {
        spec.id: (spec.title, spec.fn, dict(spec.full_kwargs),
                  dict(spec.quick_kwargs))
        for spec in _SPECS
    }
