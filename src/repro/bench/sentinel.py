"""Bench-regression sentinel: committed baselines vs a fresh quick run.

The guarded quantity is an :class:`~repro.bench.harness.ExperimentResult`
``measured`` block — the paper-facing numbers each driver distills from
its rows.  A *baseline* is a result JSON committed under
``bench_results/`` (any schema :func:`~repro.bench.harness.load_result`
understands); the sentinel re-runs the matching registry experiment at
the **quick** tier and diffs the two blocks key by key:

* numeric keys compare at a relative ``tolerance`` (the simulation is
  deterministic, so drift means the code changed — the tolerance only
  absorbs intentional recalibration noise);
* non-numeric keys compare for exact equality;
* missing-key semantics are **symmetric**: a baseline key missing from
  the fresh run fails the gate (a deleted metric is a silently dropped
  claim), and a fresh key absent from the baseline fails it too (an
  unreviewed new metric means the committed baseline no longer
  describes the experiment — refresh it in the same change).

:func:`run_sentinel` drives the whole check for a set of baseline files
and renders a JSON diff artifact for CI; the ``repro bench compare`` CLI
wraps it and exits nonzero on any regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.harness import ExperimentResult, load_result
from repro.bench.registry import REGISTRY

__all__ = [
    "DEFAULT_TOLERANCE",
    "KeyDelta",
    "SentinelReport",
    "compare_results",
    "run_sentinel",
]

#: Default relative tolerance for numeric ``measured`` keys.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True)
class KeyDelta:
    """One ``measured`` key's baseline-vs-fresh comparison."""

    key: str
    baseline: object
    fresh: object
    #: Relative error for numeric pairs; ``None`` otherwise.
    rel_error: float | None
    #: ``ok`` | ``regression`` | ``missing`` | ``new``.
    status: str

    def as_dict(self) -> dict:
        return {"key": self.key, "baseline": self.baseline,
                "fresh": self.fresh, "rel_error": self.rel_error,
                "status": self.status}


@dataclass
class SentinelReport:
    """Every key delta for one experiment's baseline-vs-fresh diff."""

    experiment: str
    tolerance: float
    deltas: list[KeyDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[KeyDelta]:
        """Deltas that fail the gate (regressed, missing or new keys)."""
        return [d for d in self.deltas
                if d.status in ("regression", "missing", "new")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "deltas": [d.as_dict() for d in self.deltas],
        }

    def summary(self) -> str:
        """One status line, e.g. ``E14: OK (12 keys)``."""
        if self.ok:
            return f"{self.experiment}: OK ({len(self.deltas)} keys)"
        worst = max(
            (d for d in self.regressions if d.rel_error is not None),
            key=lambda d: d.rel_error, default=None,
        )
        detail = (f", worst {worst.key} rel_error={worst.rel_error:.4f}"
                  if worst is not None else "")
        return (f"{self.experiment}: REGRESSION "
                f"({len(self.regressions)}/{len(self.deltas)} keys{detail})")


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _delta(key: str, base, fresh, tolerance: float) -> KeyDelta:
    if _numeric(base) and _numeric(fresh):
        rel = abs(fresh - base) / max(abs(base), 1e-12)
        status = "ok" if rel <= tolerance else "regression"
        return KeyDelta(key, base, fresh, rel, status)
    status = "ok" if base == fresh else "regression"
    return KeyDelta(key, base, fresh, None, status)


def compare_results(baseline: ExperimentResult, fresh: ExperimentResult,
                    tolerance: float = DEFAULT_TOLERANCE) -> SentinelReport:
    """Diff two results' ``measured`` blocks key by key."""
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    report = SentinelReport(experiment=baseline.experiment,
                            tolerance=tolerance)
    for key, base in baseline.measured.items():
        if key not in fresh.measured:
            report.deltas.append(KeyDelta(key, base, None, None, "missing"))
            continue
        report.deltas.append(_delta(key, base, fresh.measured[key],
                                    tolerance))
    for key, value in fresh.measured.items():
        if key not in baseline.measured:
            report.deltas.append(KeyDelta(key, None, value, None, "new"))
    return report


def run_sentinel(baseline_paths, tolerance: float = DEFAULT_TOLERANCE,
                 quick: bool = True, runner=None,
                 artifact: str | Path | None = None,
                 ) -> list[SentinelReport]:
    """Re-run each baseline's experiment and diff the measured blocks.

    ``baseline_paths`` are result JSON files written by
    :func:`~repro.bench.harness.save_result`; each maps to a registry
    experiment via its ``experiment`` field and is re-run at the
    ``quick`` tier (the CI-affordable scale — commit quick-tier
    baselines to guard with this).  When ``artifact`` is given, the full
    diff is written there as JSON regardless of outcome.  Raises
    ``ValueError`` for a baseline naming an unknown experiment.
    """
    reports = []
    for path in baseline_paths:
        baseline = load_result(path)
        if baseline.experiment not in REGISTRY:
            raise ValueError(
                f"{path}: baseline names unknown experiment "
                f"{baseline.experiment!r}; known: {', '.join(REGISTRY)}"
            )
        spec = REGISTRY[baseline.experiment]
        fresh = spec.run(quick=quick, runner=runner)
        reports.append(compare_results(baseline, fresh, tolerance))
    if artifact is not None:
        Path(artifact).write_text(json.dumps(
            {"tolerance": tolerance,
             "ok": all(r.ok for r in reports),
             "experiments": [r.as_dict() for r in reports]},
            indent=1,
        ))
    return reports
