"""Benchmark harness: one driver per paper table/figure.

Each experiment ``E1``–``E10`` in DESIGN.md has a driver in
:mod:`repro.bench.experiments` that runs the simulation, returns an
:class:`~repro.bench.harness.ExperimentResult` (structured rows +
paper-vs-measured summary), and can render itself as the table/series the
paper reports.  The ``benchmarks/`` pytest-benchmark targets are thin
wrappers that execute a driver, assert the reproduced *shape* (who wins,
by roughly what factor), print the table, and persist the rows as JSON
under ``bench_results/``.
"""

from repro.bench.harness import (
    SCHEMA_VERSION,
    ExperimentResult,
    format_rows,
    load_result,
    save_result,
)
from repro.bench.plots import ascii_chart, chart_result
from repro.bench import experiments
from repro.bench.registry import REGISTRY, ExperimentSpec
from repro.bench.sentinel import (
    SentinelReport,
    compare_results,
    run_sentinel,
)

__all__ = [
    "REGISTRY",
    "SCHEMA_VERSION",
    "ExperimentResult",
    "ExperimentSpec",
    "SentinelReport",
    "ascii_chart",
    "chart_result",
    "compare_results",
    "experiments",
    "format_rows",
    "load_result",
    "run_sentinel",
    "save_result",
]
