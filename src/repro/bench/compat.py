"""Deprecation shims for the experiment-function API normalization.

The drivers historically disagreed on spellings (``gpus`` vs
``gpu_counts``) and on which accepted ``seed``.  The normalized API is
keyword-only with one canonical name per concept;
:func:`deprecated_kwargs` keeps the old spellings working for one
transition cycle, warning **once per (function, keyword)** per process.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable

__all__ = ["as_gpu_counts", "deprecated_kwargs"]

_WARNED: set[tuple[str, str]] = set()


def as_gpu_counts(value) -> tuple[int, ...]:
    """Coerce a legacy scalar ``gpus=`` into a ``gpu_counts`` tuple."""
    if isinstance(value, bool):
        raise TypeError("gpus must be an int or a sequence of ints")
    if isinstance(value, int):
        return (value,)
    return tuple(value)


def deprecated_kwargs(**aliases) -> Callable:
    """Map legacy keyword names onto their canonical replacements.

    ``aliases`` maps ``old_name`` to either ``"new_name"`` or
    ``("new_name", converter)``.  Passing both spellings is an error;
    each legacy spelling warns once per process.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            for old, spec in aliases.items():
                if old not in kwargs:
                    continue
                new, convert = spec if isinstance(spec, tuple) else (spec, None)
                if new in kwargs:
                    raise TypeError(
                        f"{fn.__name__}() got both {old!r} (deprecated) "
                        f"and {new!r}"
                    )
                key = (fn.__qualname__, old)
                if key not in _WARNED:
                    _WARNED.add(key)
                    warnings.warn(
                        f"{fn.__name__}({old}=...) is deprecated; "
                        f"pass {new}= instead",
                        DeprecationWarning, stacklevel=2,
                    )
                value = kwargs.pop(old)
                kwargs[new] = convert(value) if convert is not None else value
            return fn(*args, **kwargs)

        return wrapper

    return decorate
