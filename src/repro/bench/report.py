"""Generate EXPERIMENTS.md from persisted benchmark results.

``python -m repro.bench.report`` reads every ``bench_results/*.json``
written by the benchmark targets and renders the paper-vs-measured record
the repository ships as ``EXPERIMENTS.md`` — so the document is always a
function of an actual run, never hand-edited numbers.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.harness import format_rows, load_result

__all__ = ["generate", "main"]

#: Static per-experiment commentary (the part that is *about* the claim,
#: not the numbers).
COMMENTARY = {
    "E1": "Both single-GPU throughputs are calibration anchors: the two "
          "kernel-class efficiency constants in `repro.models.costmodel` "
          "are the only fitted values, and both paper numbers follow from "
          "the reconstructed layer graphs.",
    "E2": "Reconstructed from the DLv3+ layer graph: hundreds of tiny "
          "gradient tensors (median <16 KB) carrying <4% of the bytes — "
          "the distribution that motivates Horovod's tensor fusion.",
    "E3": "The two MPI library profiles reproduce the published OSU "
          "shape: GPUDirect RDMA wins at every size; local dips at "
          "algorithm-selection switch points appear as in real curves.",
    "E4": "Under the exposed-communication default base, small fusion "
          "thresholds are a first-order throughput penalty at 132 GPUs; "
          "under the tuned base fusion only shows in serialized "
          "allreduce time (communication hides).",
    "E5": "Large cycle times stall the backward tail. Model limitation "
          "(documented): the host-CPU cost that penalizes sub-ms cycles "
          "in production is not priced, so the small end is flat.",
    "E6": "The headline reproduction. Efficiency = measured throughput / "
          "(GPUs × calibrated single-GPU compute throughput), with 3% "
          "per-rank compute jitter.",
    "E7": "The convergence-model half of the accuracy claim: the paper's "
          "distributed run (16 GPUs × batch 8 with the linear-scaling "
          "warmup rule at the standard 45-epoch recipe) lands on 80.8%.",
    "E7B": "The mechanistic half: real numpy replicas exchanging real "
           "gradients through the simulated Horovod runtime stay bitwise "
           "identical and genuinely learn the segmentation task.",
    "E8": "Derived per-scale view of E6: the tuning gain concentrates "
          "entirely at scale.",
    "E9": "Model prediction beyond the paper: either escape route — the "
          "GDR library swap or the hierarchical-allreduce knob — "
          "independently recovers near-linear scaling; the default "
          "configuration is poor because it has neither.",
    "E10": "The paper's methodological claim: staged knob tuning with no "
           "code changes reaches ~92% efficiency; our staged procedure "
           "and Horovod-style coordinate-descent autotuning agree.",
    "E11": "Extension (not a paper table): what the tuning buys in "
           "practice — Summit hours per trained model at the standard "
           "VOC recipe.",
    "E12": "Extension: strong scaling at fixed global batch. Finding: "
           "DLv3+ strong-scales gracefully down to one image per GPU — "
           "its per-image compute dwarfs launch overheads and "
           "communication alike.",
    "E13": "Extension (fault injection): declarative fault schedules "
           "(`repro.faults`) drive stragglers, a flapping EDR rail and a "
           "mid-run rank crash through the tuned configuration; the "
           "failure detector suspects-but-clears stragglers, retries "
           "absorb the flaps, and a confirmed crash elastically shrinks "
           "the communicator while the survivors keep training.",
    "E13B": "Extension (fault injection): a single degraded EDR rail is "
            "absorbed by communication/computation overlap down to ~5% of "
            "rail bandwidth; only near-total rail loss gates the "
            "synchronous allreduce.",
    "E14": "Extension (efficiency attribution): telemetry-instrumented "
           "runs decompose each iteration of the marking rank into "
           "compute, input stall, straggler skew, exposed communication, "
           "fusion wait and fault suspicion — buckets that sum exactly "
           "to wall time. The default config's efficiency loss at scale "
           "is attributed almost entirely to exposed communication plus "
           "fusion wait; the tuned config's overhead share is strictly "
           "smaller at every count >= 24 GPUs.",
    "E15": "Extension (crash safety): the run is killed by a "
           "`process_kill` fault at 60% of its wall time, resumed from "
           "the last checkpoint, and the completed statistics are "
           "compared byte-for-byte against an uninterrupted run — at "
           "every checkpoint cadence the resumed run is bit-identical.",
    "E16": "Extension (critical-path diagnosis): span-traced runs "
           "(`repro.trace`) walk each iteration's dependency DAG to the "
           "exact simulated critical path and restate the tuning win at "
           "span level — the default config's exposed-allreduce share "
           "of the 132-GPU critical path collapses from ~25% to ~0.03% "
           "under tuning, while the per-bucket path totals reconcile "
           "with E14's telemetry attribution to float precision "
           "(measured reconcile error: 0).",
    "E17": "Extension (simulator fast path): the flow-level transfer "
           "shortcut and prefix memoization, measured against their "
           "correctness contracts. Every sweep point is bit-identical "
           "under both transfer paths (the kernel event counter is the "
           "only allowed difference — the elided link-grant events), "
           "and an iterations ladder materialized from one shared "
           "prefix matches fresh per-point runs exactly. Honest "
           "speedup accounting: lock-step collectives keep route links "
           "contended, so the shortcut's hit rate on training sweeps "
           "is 0–8%, and the measured wall win (~1.0–1.1x) falls far "
           "short of the original 5x target; the robust saving is "
           "prefix memoization, which re-simulates only the largest "
           "ladder member (e.g. 8 of 18 iterations on the 2/3/5/8 "
           "ladder, ~2.3x wall on the ladder).",
}

HEADER = """\
# EXPERIMENTS — paper vs. measured

Generated by ``python -m repro.bench.report`` from ``bench_results/*.json``
(written by ``pytest benchmarks/ --benchmark-only``).  Do not edit by
hand; re-run the benchmarks and regenerate:

```bash
pytest benchmarks/ --benchmark-only   # ~20 minutes, fully deterministic
python -m repro.bench.report          # rewrites this file
```

Result JSONs are schema-versioned (`schema_version` + producing
`package_version`, see `repro.bench.harness`) and are produced through
the parallel cached runner (`repro.runner`); serial, parallel and
warm-cache runs of an experiment yield bit-identical payloads.

Every E-series experiment can also be run through the simulation
service instead of the CLI: `python -m repro serve`, then
`python -m repro submit E6 --variant quick --wait` (or `POST /v1/jobs`
with `{"experiment": "E6", "variant": "quick"}`). The envelope fetched
from `GET /v1/jobs/{id}/result` is byte-identical to the
`bench_results/*.json` a serial `repro run` writes, and identical
resubmissions resolve from the shared result cache without
re-simulating — see README "Running as a service" and DESIGN.md §11.

Reproduction scope note: absolute times come from a calibrated simulation
(see DESIGN.md §2/§5); the claims checked here are the paper's *shapes
and headline ratios* — who wins, by how much, and where the crossovers
fall — plus the two single-GPU throughputs the calibration is anchored
to.  E1–E10 reproduce the paper; E11–E17 are documented extensions.

Headline (abstract) claims at 132 GPUs:

| claim | paper | this repo |
|---|---|---|
| DLv3+ single-V100 throughput | 6.7 img/s | see E1 |
| ResNet-50 single-V100 throughput | 300 img/s | see E1 |
| tuned scaling efficiency | 92% | see E6 |
| default scaling efficiency | ≈92/1.3 ≈ 71% | see E6 |
| tuning speedup | 1.3× | see E6 |
| efficiency gain | +23.9 points | see E6 |
| distributed mIOU | 80.8% | see E7 |
"""


def generate(results_dir: str | Path = "bench_results") -> str:
    """Render the full EXPERIMENTS.md text from saved results."""
    results_dir = Path(results_dir)
    paths = sorted(
        results_dir.glob("e*.json"),
        key=lambda p: (len(p.stem), p.stem),
    )
    if not paths:
        raise FileNotFoundError(
            f"no results under {results_dir}; run the benchmarks first"
        )
    parts = [HEADER]
    for path in paths:
        result = load_result(path)
        exp = result.experiment
        parts.append(f"## {exp} — {result.title}\n")
        commentary = COMMENTARY.get(exp.upper())
        if commentary:
            parts.append(commentary + "\n")
        if result.paper:
            claim_rows = [
                {
                    "claim": key,
                    "paper": str(value),
                    "measured": str(result.measured.get(key, "—")),
                }
                for key, value in result.paper.items()
            ]
            parts.append("```\n" + format_rows(claim_rows) + "\n```\n")
        extra = {
            k: v for k, v in result.measured.items()
            if k not in result.paper
        }
        if extra:
            parts.append(
                "Additional measurements: "
                + ", ".join(f"{k} = {v}" for k, v in extra.items())
                + "\n"
            )
        if result.rows:
            parts.append("```\n" + format_rows(result.rows) + "\n```\n")
        if result.notes:
            note = result.notes.splitlines()[0]
            parts.append(f"*Note: {note}*\n")
    return "\n".join(parts)


def main() -> int:
    """Write EXPERIMENTS.md in the current directory."""
    text = generate()
    Path("EXPERIMENTS.md").write_text(text)
    print(f"wrote EXPERIMENTS.md ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
