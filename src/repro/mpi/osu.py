"""OSU-style microbenchmarks over the simulated MPI.

Reproduces the measurement methodology of the OSU Micro-Benchmarks suite
(from the same MVAPICH group as the paper): ``osu_latency`` is a ping-pong
between two ranks, ``osu_allreduce`` times repeated allreduces across the
full communicator and reports the mean per-iteration latency.

These drivers own the simulation clock: they repeatedly advance the
environment until their operations complete.  Use them on a dedicated
environment, not inside a larger training simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.communicator import Comm
from repro.mpi.payload import VirtualBuffer

__all__ = ["OSUResult", "osu_allreduce", "osu_bcast", "osu_latency",
           "sweep_allreduce"]


@dataclass(frozen=True)
class OSUResult:
    """One microbenchmark measurement."""

    benchmark: str
    nbytes: int
    ranks: int
    latency_s: float
    iterations: int

    @property
    def latency_us(self) -> float:
        """Latency in microseconds (OSU's reporting unit)."""
        return self.latency_s * 1e6

    @property
    def bandwidth_Bps(self) -> float:
        """Effective per-rank bandwidth (bytes / latency)."""
        return self.nbytes / self.latency_s if self.latency_s > 0 else float("inf")


def osu_latency(comm: Comm, nbytes: int, iterations: int = 10,
                ranks: tuple[int, int] = (0, 1)) -> OSUResult:
    """Ping-pong latency between two ranks (half round-trip, like OSU)."""
    if comm.size < 2:
        raise ValueError("osu_latency needs at least 2 ranks")
    a, b = ranks
    env = comm.env
    start = env.now
    tag = comm.fresh_tag_block()
    size = _aligned(nbytes)

    def side_a(env):
        for it in range(iterations):
            yield comm.isend(a, b, VirtualBuffer(size), tag + 2 * it)
            yield comm.recv(a, b, tag + 2 * it + 1)

    def side_b(env):
        for it in range(iterations):
            got = yield comm.recv(b, a, tag + 2 * it)
            yield comm.isend(b, a, got, tag + 2 * it + 1)

    pa = env.process(side_a(env))
    pb = env.process(side_b(env))
    env.run(until=env.all_of([pa, pb]))
    elapsed = env.now - start
    return OSUResult("osu_latency", nbytes, 2, elapsed / (2 * iterations), iterations)


def osu_allreduce(comm: Comm, nbytes: int, iterations: int = 5,
                  algorithm: str | None = None) -> OSUResult:
    """Mean allreduce latency over ``iterations`` back-to-back operations."""
    env = comm.env
    start = env.now
    size = _aligned(nbytes)
    for _ in range(iterations):
        done = comm.allreduce(
            [VirtualBuffer(size) for _ in range(comm.size)], algorithm=algorithm
        )
        env.run(until=done)
    elapsed = env.now - start
    return OSUResult("osu_allreduce", nbytes, comm.size, elapsed / iterations, iterations)


def osu_bcast(comm: Comm, nbytes: int, iterations: int = 5,
              root: int = 0) -> OSUResult:
    """Mean binomial-broadcast latency over ``iterations`` operations."""
    env = comm.env
    start = env.now
    size = _aligned(nbytes)
    for _ in range(iterations):
        done = comm.bcast(VirtualBuffer(size), root=root)
        env.run(until=done)
    elapsed = env.now - start
    return OSUResult("osu_bcast", nbytes, comm.size, elapsed / iterations,
                     iterations)


def sweep_allreduce(make_comm, sizes: list[int], iterations: int = 5,
                    algorithm: str | None = None) -> list[OSUResult]:
    """Run ``osu_allreduce`` for each size on a fresh communicator.

    ``make_comm`` is a zero-argument factory returning a fresh
    :class:`Comm` (fresh environment) per measurement, so sizes don't
    interact through link-state carryover.
    """
    return [
        osu_allreduce(make_comm(), size, iterations=iterations, algorithm=algorithm)
        for size in sizes
    ]


def _aligned(nbytes: int) -> int:
    """Round up to fp32 alignment (OSU sizes are powers of two anyway)."""
    if nbytes < 0:
        raise ValueError(f"negative message size {nbytes}")
    return ((nbytes + 3) // 4) * 4
