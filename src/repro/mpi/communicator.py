"""The simulated communicator: point-to-point semantics + collective driver.

:class:`Comm` binds a set of GPU devices (one per rank, in topology order)
to an :class:`~repro.mpi.libraries.MPILibrary` profile over a
:class:`~repro.cluster.fabric.Fabric`.  It provides:

* ``isend`` / ``recv`` with (source, tag) matching, eager/rendezvous
  protocol selection, and per-(src, dst, tag) FIFO ordering;
* an ``allreduce`` driver that spawns one process per rank running the
  selected collective algorithm (see :mod:`repro.mpi.collectives`);
* the linear-gather + binomial-broadcast control-plane primitives the
  Horovod coordinator uses for tensor negotiation.

Protocol model
--------------
Messages at or below the library's eager threshold start moving
immediately.  Larger messages use rendezvous: the sender blocks until the
receiver has posted a matching receive, then pays the library's RTS/CTS
round-trip before the payload moves.  This is what makes late receivers
(stragglers) delay senders — the effect Horovod's negotiation phase exists
to avoid.

Usage discipline: at most one outstanding message per (src, dst, tag)
triple — the collectives use per-step tags to guarantee it.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.fabric import Fabric, LinkDownError
from repro.cluster.topology import Device
from repro.mpi.libraries import MPILibrary
from repro.mpi.payload import PayloadOps, ops_for
from repro.sim import Environment, Event, Process

__all__ = ["CollCtx", "Comm", "TransferTimeout"]


class TransferTimeout(RuntimeError):
    """A point-to-point transfer exhausted its retry/timeout budget.

    Raised by the sender when every retry of a transfer found its route
    down and the accumulated backoff exceeded the communicator's
    ``transfer_timeout_s`` — the MPI-level symptom of a link that flapped
    down and never came back."""

#: Tag stride reserved per collective invocation (must exceed the tag span
#: any single algorithm uses; ring uses 2p, hierarchical uses 3 blocks).
TAG_BLOCK = 1 << 20


@dataclass
class _Mailbox:
    """Per-rank matching state: arrivals, posted receives, RTS waiters."""

    arrivals: dict[tuple[int, int], deque] = field(default_factory=dict)
    recv_waiters: dict[tuple[int, int], deque] = field(default_factory=dict)
    posted: dict[tuple[int, int], int] = field(default_factory=dict)
    rts_waiters: dict[tuple[int, int], deque] = field(default_factory=dict)


class Comm:
    """An MPI-like communicator over simulated GPUs.

    Parameters
    ----------
    fabric:
        The cluster data-movement service.
    devices:
        One GPU :class:`~repro.cluster.topology.Device` per rank; rank
        order is the list order.
    library:
        MPI library performance profile.
    """

    def __init__(self, fabric: Fabric, devices: list[Device], library: MPILibrary,
                 retry_backoff_s: float = 100e-6,
                 transfer_timeout_s: float = 5.0) -> None:
        if not devices:
            raise ValueError("communicator needs at least one rank")
        if len(set(devices)) != len(devices):
            raise ValueError("duplicate devices in communicator")
        if retry_backoff_s <= 0 or transfer_timeout_s <= 0:
            raise ValueError("retry backoff and transfer timeout must be > 0")
        self.fabric = fabric
        self.env: Environment = fabric.env
        self.devices = list(devices)
        self.library = library
        #: First retry wait after a transfer finds its route down; doubles
        #: on every consecutive failed attempt of the same transfer.
        self.retry_backoff_s = retry_backoff_s
        #: Total backoff budget per transfer before :class:`TransferTimeout`.
        self.transfer_timeout_s = transfer_timeout_s
        self._mailboxes = [_Mailbox() for _ in devices]
        self._tags = itertools.count()
        #: Optional telemetry hook (``on_allreduce(algorithm, nbytes,
        #: ranks, seconds)``) — see :class:`repro.telemetry.TelemetryProbe`.
        self.probe: Any = None
        #: Optional span recorder (``repro.trace``); observation only.
        self.tracer: Any = None
        #: Number of point-to-point messages sent (control + data).
        self.messages_sent = 0
        #: Transfers that found a down link and backed off before retrying.
        self.transfer_retries = 0
        #: Transfers abandoned after exhausting the retry budget.
        self.transfer_timeouts = 0

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.devices)

    def fast_path_report(self) -> dict:
        """Fabric fast-path counters for this communicator's transfers.

        Diagnostics only — the split between shortcut and reference
        transfers is excluded from every compared payload (see
        :class:`~repro.cluster.fabric.FastPathStats`).
        """
        return self.fabric.fast_stats.as_dict()

    def node_of(self, rank: int) -> int:
        """Physical node hosting ``rank``."""
        return self.devices[rank].node

    def ranks_by_node(self) -> dict[int, list[int]]:
        """Mapping node id -> ranks on that node (ascending)."""
        groups: dict[int, list[int]] = {}
        for rank, dev in enumerate(self.devices):
            groups.setdefault(dev.node, []).append(rank)
        return groups

    def fresh_tag_block(self) -> int:
        """Reserve a tag block for one collective invocation."""
        return next(self._tags) * TAG_BLOCK

    # -- point to point ----------------------------------------------------
    def isend(self, src: int, dst: int, payload: Any, tag: int) -> Process:
        """Send ``payload`` from ``src`` to ``dst``; completes at delivery."""
        self._check_rank(src)
        self._check_rank(dst)
        self.messages_sent += 1
        return self.env.process(self._send_proc(src, dst, payload, tag))

    def recv(self, rank: int, src: int, tag: int) -> Event:
        """An event firing with the payload of the matching message."""
        self._check_rank(rank)
        self._check_rank(src)
        mb = self._mailboxes[rank]
        key = (src, tag)
        arrived = mb.arrivals.get(key)
        if arrived:
            ev = Event(self.env)
            ev.succeed(arrived.popleft())
            if not arrived:
                del mb.arrivals[key]
            return ev
        # Post the receive: release a rendezvous sender if one is waiting.
        rts = mb.rts_waiters.get(key)
        if rts:
            rts.popleft().succeed()
            if not rts:
                del mb.rts_waiters[key]
        else:
            mb.posted[key] = mb.posted.get(key, 0) + 1
        ev = Event(self.env)
        mb.recv_waiters.setdefault(key, deque()).append(ev)
        return ev

    def _send_proc(self, src: int, dst: int, payload: Any, tag: int):
        ops = ops_for(payload)
        nbytes = ops.nbytes(payload)
        key = (src, tag)
        if src == dst:
            self._deposit(dst, key, payload)
            return 0.0
        lib = self.library
        mb = self._mailboxes[dst]
        if lib.uses_rendezvous(nbytes):
            if mb.posted.get(key, 0) > 0:
                mb.posted[key] -= 1
                if not mb.posted[key]:
                    del mb.posted[key]
            else:
                ready = Event(self.env)
                mb.rts_waiters.setdefault(key, deque()).append(ready)
                yield ready
            yield self.env.timeout(lib.rendezvous_rtt_s)
        src_dev, dst_dev = self.devices[src], self.devices[dst]
        same = self.fabric.topology.same_node(src_dev, dst_dev)
        # Retry-with-backoff: a route through a flapped-down link fails
        # fast; the sender sleeps (exponentially longer each attempt) and
        # retries until the link recovers or the timeout budget runs out.
        attempt = 0
        waited = 0.0
        while True:
            try:
                elapsed = yield from self.fabric.transfer_gen(
                    src_dev,
                    dst_dev,
                    nbytes,
                    extra_latency=lib.sw_latency(same),
                    bandwidth_derate=lib.bw_derate(same),
                )
                break
            except LinkDownError as down:
                backoff = self.retry_backoff_s * (2 ** attempt)
                if waited + backoff > self.transfer_timeout_s:
                    self.transfer_timeouts += 1
                    raise TransferTimeout(
                        f"transfer {src}->{dst} ({nbytes} B) gave up after "
                        f"{attempt} retries / {waited:.3f}s backoff: {down}"
                    ) from down
                self.transfer_retries += 1
                attempt += 1
                waited += backoff
                yield self.env.timeout(backoff)
        self._deposit(dst, key, payload)
        return elapsed

    def _deposit(self, dst: int, key: tuple[int, int], payload: Any) -> None:
        mb = self._mailboxes[dst]
        waiters = mb.recv_waiters.get(key)
        if waiters:
            waiters.popleft().succeed(payload)
            if not waiters:
                del mb.recv_waiters[key]
        else:
            mb.arrivals.setdefault(key, deque()).append(payload)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    # -- collectives ---------------------------------------------------------
    def allreduce(
        self,
        payloads: list[Any],
        algorithm: str | None = None,
        average: bool = False,
        ranks: list[int] | None = None,
    ) -> Process:
        """Allreduce one payload per rank; completes with the result list.

        ``algorithm`` overrides the library's size-based selection
        (``"ring"``, ``"recursive_doubling"``, ``"rabenseifner"``,
        ``"tree"``, ``"hierarchical"``).  With ``average`` the sum is
        scaled by ``1/participants`` (Horovod's default reduction).

        ``ranks`` restricts the collective to a subgroup of world ranks
        (``payloads[i]`` belongs to ``ranks[i]``) — the elastic-shrink
        path the Horovod runtime uses after a confirmed rank crash runs
        over the surviving subgroup without building a new communicator.
        """
        group = list(range(self.size)) if ranks is None else list(ranks)
        if not group:
            raise ValueError("allreduce needs at least one participating rank")
        if len(set(group)) != len(group):
            raise ValueError(f"duplicate ranks in allreduce subgroup {group}")
        for r in group:
            self._check_rank(r)
        if len(payloads) != len(group):
            raise ValueError(f"expected {len(group)} payloads, got {len(payloads)}")
        return self.env.process(self._allreduce_proc(payloads, algorithm, average, group))

    def _allreduce_proc(self, payloads, algorithm, average, group):
        from repro.mpi.collectives import get_algorithm

        ops = ops_for(payloads[0])
        nbytes = ops.nbytes(payloads[0])
        name = algorithm or self.library.allreduce_algorithm(nbytes, len(group))
        fn = get_algorithm(name)
        ctx = CollCtx(self, ops, self.fresh_tag_block(), group)
        started_s = self.env.now
        cspan = None
        if self.tracer is not None:
            cspan = self.tracer.begin(
                "COLLECTIVE", name, started_s, parent=self.tracer.comm_parent,
                bytes=int(nbytes), ranks=len(group))
            gens = [self.tracer.wrap_alg(fn(ctx, g, payloads[g]), group[g],
                                         cspan, name)
                    for g in range(len(group))]
        else:
            gens = [fn(ctx, g, payloads[g]) for g in range(len(group))]
        procs = [self.env.process(gen) for gen in gens]
        yield self.env.all_of(procs)
        if cspan is not None:
            self.tracer.end(cspan, self.env.now)
        if self.probe is not None:
            self.probe.on_allreduce(
                name, nbytes, len(group), self.env.now - started_s
            )
        results = [p.value for p in procs]
        if average:
            results = [ops.scale(r, 1.0 / len(group)) for r in results]
        return results

    # -- control plane (Horovod negotiation) ---------------------------------
    def gather_linear(self, payloads: list[Any], root: int = 0) -> Process:
        """Linear gather to ``root`` (Horovod's worker→coordinator pattern).

        Every non-root rank sends its payload directly to the root; the
        root receives all of them.  Completes with the list of payloads in
        rank order.  Linear because that is what Horovod's coordinator
        actually does — and why negotiation cost grows linearly in ranks.
        """
        return self.env.process(self._gather_linear_proc(payloads, root))

    def _gather_linear_proc(self, payloads, root):
        tag = self.fresh_tag_block()
        sends = [
            self.isend(r, root, payloads[r], tag + r)
            for r in range(self.size)
            if r != root
        ]
        recvs = [
            self.recv(root, r, tag + r) for r in range(self.size) if r != root
        ]
        yield self.env.all_of(sends + recvs)
        out = list(payloads)
        idx = 0
        for r in range(self.size):
            if r != root:
                out[r] = recvs[idx].value
                idx += 1
        return out

    def control_round_seconds(self, per_rank_bytes: int, cached: bool = False) -> float:
        """Closed-form cost of one Horovod negotiation round.

        Models the linear gather of tiny eager control messages into rank
        0 (bounded by the slowest sender's latency plus serialization at
        rank 0's most-shared ingress link) followed by a binomial-tree
        response broadcast.  With ``cached`` (the bitvector fast path)
        only the broadcast is paid.

        The message-level simulation (``negotiation="messages"`` on the
        runtime) is the ground truth; tests pin this formula to it.
        """
        if per_rank_bytes < 0:
            raise ValueError("per_rank_bytes must be >= 0")
        lib = self.library
        if self.size == 1:
            return lib.sw_latency_intra_s
        if not hasattr(self, "_control_profile"):
            topo = self.fabric.topology
            root_dev = self.devices[0]
            alphas = []
            ingress_counts: dict[int, tuple[Any, int]] = {}
            for rank in range(1, self.size):
                dev = self.devices[rank]
                same = topo.same_node(dev, root_dev)
                alphas.append(topo.route_latency(dev, root_dev) + lib.sw_latency(same))
                last = topo.route(dev, root_dev)[-1]
                link, count = ingress_counts.get(last.order_key, (last, 0))
                ingress_counts[last.order_key] = (link, count + 1)
            self._control_profile = (max(alphas), list(ingress_counts.values()))
        alpha_max, ingress = self._control_profile
        serial = max(
            count * (link.latency_s + per_rank_bytes / link.bandwidth_Bps)
            for link, count in ingress
        )
        bcast = math.ceil(math.log2(self.size)) * alpha_max
        if cached:
            return bcast
        return alpha_max + serial + bcast

    def bcast(self, payload: Any, root: int = 0) -> Process:
        """Binomial-tree broadcast from ``root``; completes with per-rank copies."""
        return self.env.process(self._bcast_proc(payload, root))

    def _bcast_proc(self, payload, root):
        from repro.mpi.collectives.tree import binomial_bcast

        ops = ops_for(payload)
        ctx = CollCtx(self, ops, self.fresh_tag_block(), list(range(self.size)))
        # Rotate so the tree is rooted at `root` in group-rank space.
        order = [(root + i) % self.size for i in range(self.size)]
        ctx = CollCtx(self, ops, ctx.tag, order)
        procs = [
            self.env.process(
                binomial_bcast(ctx, g, payload if order[g] == root else None)
            )
            for g in range(self.size)
        ]
        yield self.env.all_of(procs)
        results = [None] * self.size
        for g, p in enumerate(procs):
            results[order[g]] = p.value
        return results


@dataclass
class CollCtx:
    """Execution context handed to collective algorithms.

    Algorithms address *group ranks* ``0..size-1``; ``ranks`` maps them to
    world ranks, which lets hierarchical collectives run sub-collectives on
    arbitrary subgroups without building new communicators.
    """

    comm: Comm
    ops: PayloadOps
    tag: int
    ranks: list[int]

    @property
    def size(self) -> int:
        """Number of group ranks."""
        return len(self.ranks)

    @property
    def env(self) -> Environment:
        """The simulation environment."""
        return self.comm.env

    def isend(self, gsrc: int, gdst: int, payload: Any, tag: int) -> Process:
        """Send between group ranks (translated to world ranks)."""
        return self.comm.isend(self.ranks[gsrc], self.ranks[gdst], payload, tag)

    def recv(self, grank: int, gsrc: int, tag: int) -> Event:
        """Receive between group ranks (translated to world ranks)."""
        return self.comm.recv(self.ranks[grank], self.ranks[gsrc], tag)

    def node_of(self, grank: int) -> int:
        """Physical node of a group rank."""
        return self.comm.node_of(self.ranks[grank])

    def subctx(self, granks: list[int], tag_offset: int) -> "CollCtx":
        """A context for a subgroup, with a disjoint tag subspace."""
        return CollCtx(
            self.comm,
            self.ops,
            self.tag + tag_offset,
            [self.ranks[g] for g in granks],
        )
