"""Simulated MPI: real collective algorithms over the simulated fabric.

This package reimplements the MPI functionality the paper depends on:

* **Point-to-point** messaging with MPI semantics — eager vs. rendezvous
  protocol selection by message size, (source, tag) matching, per-pair
  FIFO ordering (:mod:`repro.mpi.communicator`).
* **Collectives** — ring, recursive doubling, Rabenseifner
  (recursive-halving reduce-scatter + recursive-doubling allgather),
  binomial tree, and two-level hierarchical allreduce, all executed as
  real message schedules over the fabric (:mod:`repro.mpi.collectives`).
* **Library profiles** — the observable differences between IBM Spectrum
  MPI (Summit's default, host-staged GPU buffers) and MVAPICH2-GDR
  (GPU-Direct RDMA): per-message software latency, achievable bandwidth
  fraction, protocol thresholds and algorithm selection tables
  (:mod:`repro.mpi.libraries`).
* **Microbenchmarks** — OSU-style latency / allreduce drivers used by
  experiment E3 (:mod:`repro.mpi.osu`).

Collectives are *data-carrying*: with numpy payloads they move and reduce
real arrays (bit-exactness is tested), and with
:class:`~repro.mpi.payload.VirtualBuffer` payloads the same schedules run
at scale without allocating gradient-sized memory.
"""

from repro.mpi.communicator import Comm, TransferTimeout
from repro.mpi.libraries import (
    ALL_LIBRARIES,
    MPI_LIBRARIES,
    MVAPICH2_GDR,
    NCCL,
    SPECTRUM_MPI,
    MPILibrary,
)
from repro.mpi.payload import (
    NUMPY_OPS,
    VIRTUAL_OPS,
    NumpyOps,
    PayloadOps,
    VirtualBuffer,
    VirtualOps,
    ops_for,
)

__all__ = [
    "ALL_LIBRARIES",
    "Comm",
    "MPI_LIBRARIES",
    "MPILibrary",
    "MVAPICH2_GDR",
    "NCCL",
    "NUMPY_OPS",
    "NumpyOps",
    "PayloadOps",
    "SPECTRUM_MPI",
    "TransferTimeout",
    "VIRTUAL_OPS",
    "VirtualBuffer",
    "VirtualOps",
    "ops_for",
]
