"""Bandwidth-optimal ring allreduce.

The classic two-phase ring (Baidu/Horovod style): the buffer is split into
``p`` balanced segments; a reduce-scatter phase of ``p-1`` neighbor
exchanges leaves each rank with one fully reduced segment, then an
allgather phase of ``p-1`` exchanges circulates the reduced segments.

Total traffic per rank is ``2 (p-1)/p · n`` bytes — asymptotically optimal
— at the cost of ``2 (p-1)`` latency terms, which is why libraries only
select it for large messages.

A useful property this implementation preserves: every rank applies the
reductions for a given segment in the same order (ring order), so the ring
allreduce result is **bitwise identical across ranks** even in floating
point.  The npnn data-parallel trainer relies on this.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.communicator import CollCtx

__all__ = ["ring_allreduce"]


def ring_allreduce(ctx: CollCtx, grank: int, payload: Any):
    """One rank's ring-allreduce process; returns the reduced payload."""
    p = ctx.size
    ops = ctx.ops
    if p == 1:
        return payload
        yield  # pragma: no cover - marks this function as a generator
    segments = ops.split(payload, p)
    right = (grank + 1) % p
    left = (grank - 1) % p

    # Phase 1: reduce-scatter.  After p-1 steps, this rank holds the fully
    # reduced segment (grank + 1) mod p.
    for step in range(p - 1):
        send_idx = (grank - step) % p
        recv_idx = (grank - step - 1) % p
        send_done = ctx.isend(grank, right, segments[send_idx], ctx.tag + step)
        incoming = yield ctx.recv(grank, left, ctx.tag + step)
        segments[recv_idx] = ops.add(incoming, segments[recv_idx])
        yield send_done

    # Phase 2: allgather of the reduced segments.
    base = ctx.tag + p
    for step in range(p - 1):
        send_idx = (grank + 1 - step) % p
        recv_idx = (grank - step) % p
        send_done = ctx.isend(grank, right, segments[send_idx], base + step)
        incoming = yield ctx.recv(grank, left, base + step)
        segments[recv_idx] = incoming
        yield send_done

    return ops.concat(segments)
