"""Collective algorithm implementations and registry.

Each algorithm is a generator function ``fn(ctx, grank, payload)`` that
runs as one simulation process per rank, exchanges real payloads through
``ctx.isend`` / ``ctx.recv``, and returns that rank's reduced result.

Available allreduce algorithms:

========================  =====================================================
``ring``                  bandwidth-optimal: reduce-scatter + allgather rings
``recursive_doubling``    latency-optimal: log2(p) full-size exchanges
``rabenseifner``          recursive-halving reduce-scatter + recursive-
                          doubling allgather (bandwidth-optimal, log latency)
``tree``                  binomial reduce to rank 0 + binomial broadcast
``hierarchical``          two-level: intra-node reduce → inter-node allreduce
                          among node leaders → intra-node broadcast (the
                          HOROVOD_HIERARCHICAL_ALLREDUCE path)
========================  =====================================================
"""

from repro.mpi.collectives.hierarchical import hierarchical_allreduce
from repro.mpi.collectives.rabenseifner import rabenseifner_allreduce
from repro.mpi.collectives.recursive import recursive_doubling_allreduce
from repro.mpi.collectives.ring import ring_allreduce
from repro.mpi.collectives.tree import binomial_bcast, binomial_reduce, tree_allreduce

__all__ = [
    "ALGORITHMS",
    "binomial_bcast",
    "binomial_reduce",
    "get_algorithm",
    "hierarchical_allreduce",
    "rabenseifner_allreduce",
    "recursive_doubling_allreduce",
    "ring_allreduce",
    "tree_allreduce",
]

#: Registry mapping algorithm name -> generator function.
ALGORITHMS = {
    "ring": ring_allreduce,
    "recursive_doubling": recursive_doubling_allreduce,
    "rabenseifner": rabenseifner_allreduce,
    "tree": tree_allreduce,
    "hierarchical": hierarchical_allreduce,
}


def get_algorithm(name: str):
    """Look up a collective algorithm by registry name."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown collective algorithm {name!r}; "
            f"available: {sorted(ALGORITHMS)}"
        ) from None
