"""Binomial-tree reduce, broadcast, and the tree allreduce they compose.

Binomial trees give ``log2(p)`` rounds with full-size messages and no
intermediate buffers beyond one payload — the textbook choice for tiny
payloads and for the intra-node stages of hierarchical allreduce (6 ranks:
3 rounds over NVLink).

``binomial_reduce`` reduces to group rank 0 in *descending-mask* order so
that the reduction tree (and therefore the floating-point result) is a
fixed function of the group size.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.communicator import CollCtx

__all__ = ["binomial_bcast", "binomial_reduce", "tree_allreduce"]


def binomial_reduce(ctx: CollCtx, grank: int, payload: Any):
    """Reduce all payloads to group rank 0.

    Returns the reduced payload at rank 0 and ``None`` elsewhere.
    Round ``k`` (mask = 2^k): ranks whose low ``k`` bits are zero and whose
    bit ``k`` is set send to ``grank ^ mask``.
    """
    p = ctx.size
    ops = ctx.ops
    data = payload
    if p == 1:
        return data
        yield  # pragma: no cover
    mask = 1
    level = 0
    while mask < p:
        if grank & mask:
            yield ctx.isend(grank, grank ^ mask, data, ctx.tag + level)
            return None
        src = grank ^ mask
        if src < p:
            incoming = yield ctx.recv(grank, src, ctx.tag + level)
            data = ops.add(data, incoming)
        mask <<= 1
        level += 1
    return data


def binomial_bcast(ctx: CollCtx, grank: int, payload: Any):
    """Broadcast from group rank 0; every rank returns the payload.

    Non-root ranks must pass ``payload=None``.  Level ``mask`` (descending
    from the smallest power of two ≥ p): ranks ≡ 0 (mod 2·mask) send to
    rank + mask; ranks ≡ mask receive.
    """
    p = ctx.size
    if p == 1:
        return payload
        yield  # pragma: no cover
    if grank != 0 and payload is not None:
        raise ValueError("non-root ranks must not supply a payload to bcast")
    data = payload
    top = 1 << ((p - 1).bit_length())
    mask = top >> 1
    level = 0
    while mask >= 1:
        if grank % (2 * mask) == 0:
            dst = grank + mask
            if dst < p:
                yield ctx.isend(grank, dst, data, ctx.tag + level)
        elif grank % (2 * mask) == mask:
            data = yield ctx.recv(grank, grank - mask, ctx.tag + level)
        mask >>= 1
        level += 1
    return data


def tree_allreduce(ctx: CollCtx, grank: int, payload: Any):
    """Binomial reduce to rank 0 followed by binomial broadcast."""
    p = ctx.size
    if p == 1:
        return payload
        yield  # pragma: no cover
    reduce_ctx = ctx.subctx(list(range(p)), tag_offset=0)
    bcast_ctx = ctx.subctx(list(range(p)), tag_offset=64)
    reduced = yield from binomial_reduce(reduce_ctx, grank, payload)
    result = yield from binomial_bcast(bcast_ctx, grank, reduced)
    return result
