"""Latency-optimal recursive-doubling allreduce.

``log2(p)`` rounds; in round ``k`` every rank exchanges its full buffer
with the partner whose rank differs in bit ``k`` and reduces.  Traffic per
rank is ``log2(p) · n`` bytes — far worse than ring for large ``n`` — but
only ``log2(p)`` latency terms, which makes it the library choice for
small messages.

Non-power-of-two communicator sizes use the standard MPICH fold: the first
``2r`` ranks (where ``r = p - 2^⌊log2 p⌋``) pair up, odd ranks fold their
contribution into their even neighbor and sit out the doubling rounds,
then receive the final result back.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.communicator import CollCtx

__all__ = ["largest_pow2_leq", "recursive_doubling_allreduce"]


def largest_pow2_leq(p: int) -> int:
    """The largest power of two ≤ ``p`` (p ≥ 1)."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return 1 << (p.bit_length() - 1)


def recursive_doubling_allreduce(ctx: CollCtx, grank: int, payload: Any):
    """One rank's recursive-doubling process; returns the reduced payload."""
    p = ctx.size
    ops = ctx.ops
    if p == 1:
        return payload
        yield  # pragma: no cover
    pof2 = largest_pow2_leq(p)
    rem = p - pof2
    data = payload
    fold_tag = ctx.tag
    final_tag = ctx.tag + 1
    round_base = ctx.tag + 2

    # Fold phase: ranks [0, 2*rem) pair up (even, odd).
    if grank < 2 * rem:
        if grank % 2 == 1:
            yield ctx.isend(grank, grank - 1, data, fold_tag)
            data = yield ctx.recv(grank, grank - 1, final_tag)
            return data
        incoming = yield ctx.recv(grank, grank + 1, fold_tag)
        data = ops.add(data, incoming)
        newrank = grank // 2
    else:
        newrank = grank - rem

    # Doubling rounds among the pof2 surviving ranks.
    mask = 1
    round_idx = 0
    while mask < pof2:
        partner_new = newrank ^ mask
        partner = partner_new * 2 if partner_new < rem else partner_new + rem
        send_done = ctx.isend(grank, partner, data, round_base + round_idx)
        incoming = yield ctx.recv(grank, partner, round_base + round_idx)
        # Canonical order (lower contribution first) so that partners
        # compute bitwise-identical sums.
        if newrank < partner_new:
            data = ops.add(data, incoming)
        else:
            data = ops.add(incoming, data)
        yield send_done
        mask <<= 1
        round_idx += 1

    # Unfold: even survivors return the result to their folded partner.
    if grank < 2 * rem:
        yield ctx.isend(grank, grank + 1, data, final_tag)
    return data
