"""Two-level hierarchical allreduce (Horovod's HIERARCHICAL_ALLREDUCE path).

Three stages:

1. **Intra-node reduce** — within each node, a binomial reduce over NVLink
   to the node's leader rank (the lowest rank on the node).
2. **Inter-node allreduce** — the leaders run a full-size allreduce over
   InfiniBand.  The inner algorithm is selected by the library table for
   the leader-count communicator (or forced via ``inner``).
3. **Intra-node broadcast** — each leader broadcasts the result back over
   NVLink.

This trades extra intra-node traffic (cheap: 47 GB/s NVLink) for a 6×
smaller inter-node communicator (expensive: 12.3 GB/s shared rail), which
is exactly why the paper's tuned configuration enables it on Summit.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.communicator import CollCtx
from repro.mpi.collectives.tree import binomial_bcast, binomial_reduce

__all__ = ["hierarchical_allreduce"]

# Tag-space layout inside the collective's tag block.  The inner
# allreduce gets a wide subspace: ring uses 2p tags, which can reach a few
# thousand on large communicators.
_REDUCE_OFF = 0
_BCAST_OFF = 1024
_INNER_OFF = 65536


def hierarchical_allreduce(ctx: CollCtx, grank: int, payload: Any, inner: str | None = None):
    """One rank's hierarchical-allreduce process; returns the reduced payload.

    ``inner`` forces the leader-level algorithm (default: the library's
    size-based selection for the leader communicator).
    """
    from repro.mpi.collectives import get_algorithm

    p = ctx.size
    ops = ctx.ops
    if p == 1:
        return payload
        yield  # pragma: no cover

    # Group ranks by physical node, in group-rank order.
    nodes: dict[int, list[int]] = {}
    for g in range(p):
        nodes.setdefault(ctx.node_of(g), []).append(g)
    # Deterministic node order (by first member), so every rank builds the
    # identical leader list.
    node_groups = sorted(nodes.values(), key=lambda ranks: ranks[0])
    my_group = next(ranks for ranks in node_groups if grank in ranks)
    local_index = my_group.index(grank)
    leaders = [ranks[0] for ranks in node_groups]

    if len(node_groups) == 1:
        # Single node: hierarchical degenerates to the inner algorithm run
        # flat over NVLink.
        name = inner or ctx.comm.library.allreduce_algorithm(
            ops.nbytes(payload), p
        )
        flat_ctx = ctx.subctx(list(range(p)), _INNER_OFF)
        result = yield from get_algorithm(name)(flat_ctx, grank, payload)
        return result

    # Stage 1: intra-node binomial reduce to the node leader.
    local_ctx = ctx.subctx(my_group, _REDUCE_OFF)
    reduced = yield from binomial_reduce(local_ctx, local_index, payload)

    # Stage 2: leaders allreduce across nodes.
    if local_index == 0:
        name = inner or ctx.comm.library.allreduce_algorithm(
            ops.nbytes(reduced), len(leaders)
        )
        leader_ctx = ctx.subctx(leaders, _INNER_OFF)
        leader_index = leaders.index(grank)
        reduced = yield from get_algorithm(name)(leader_ctx, leader_index, reduced)

    # Stage 3: intra-node broadcast of the global result.
    bcast_ctx = ctx.subctx(my_group, _BCAST_OFF)
    result = yield from binomial_bcast(bcast_ctx, local_index, reduced)
    return result
