"""Rabenseifner's allreduce: recursive halving + recursive doubling.

Phase 1 (reduce-scatter by recursive halving): in round ``k`` each rank
exchanges *half* of its current working range with a partner at distance
``pof2 / 2^(k+1)`` and reduces the half it keeps.  After ``log2(p)``
rounds every rank owns one fully reduced segment.

Phase 2 (allgather by recursive doubling): the owned ranges are exchanged
pairwise in the reverse pattern, doubling each round.

Traffic per rank is ``2 (p-1)/p · n`` (like ring) with only ``2 log2(p)``
latency terms (like recursive doubling) — the sweet spot for mid-size
messages, and what MPICH-family libraries (including MVAPICH2) select
there.

Non-power-of-two sizes use the same full-buffer fold as
:mod:`repro.mpi.collectives.recursive` (real implementations fold halves;
the full fold costs one extra n/2 transfer for folded ranks and keeps the
code auditable — noted as a modeling simplification).
"""

from __future__ import annotations

from typing import Any

from repro.mpi.communicator import CollCtx
from repro.mpi.collectives.recursive import largest_pow2_leq

__all__ = ["rabenseifner_allreduce"]


def rabenseifner_allreduce(ctx: CollCtx, grank: int, payload: Any):
    """One rank's Rabenseifner process; returns the reduced payload."""
    p = ctx.size
    ops = ctx.ops
    if p == 1:
        return payload
        yield  # pragma: no cover
    pof2 = largest_pow2_leq(p)
    rem = p - pof2
    data = payload
    fold_tag = ctx.tag
    final_tag = ctx.tag + 1
    halve_base = ctx.tag + 2
    double_base = ctx.tag + 2 + pof2.bit_length()

    if grank < 2 * rem:
        if grank % 2 == 1:
            yield ctx.isend(grank, grank - 1, data, fold_tag)
            data = yield ctx.recv(grank, grank - 1, final_tag)
            return data
        incoming = yield ctx.recv(grank, grank + 1, fold_tag)
        data = ops.add(data, incoming)
        newrank = grank // 2
    else:
        newrank = grank - rem

    def world(partner_new: int) -> int:
        return partner_new * 2 if partner_new < rem else partner_new + rem

    segments = ops.split(data, pof2)
    lo, hi = 0, pof2

    # Phase 1: recursive halving reduce-scatter.
    distance = pof2 // 2
    round_idx = 0
    while distance >= 1:
        partner = world(newrank ^ distance)
        mid = (lo + hi) // 2
        if newrank & distance:
            send_lo, send_hi = lo, mid
            keep_lo, keep_hi = mid, hi
        else:
            send_lo, send_hi = mid, hi
            keep_lo, keep_hi = lo, mid
        outgoing = ctx.ops.concat(segments[send_lo:send_hi])
        send_done = ctx.isend(grank, partner, outgoing, halve_base + round_idx)
        incoming = yield ctx.recv(grank, partner, halve_base + round_idx)
        in_segs = ops.split(incoming, keep_hi - keep_lo)
        for i in range(keep_hi - keep_lo):
            # Canonical order: lower-newrank contribution first, so all
            # ranks build the same reduction tree bit-for-bit.
            if newrank & distance:
                segments[keep_lo + i] = ops.add(in_segs[i], segments[keep_lo + i])
            else:
                segments[keep_lo + i] = ops.add(segments[keep_lo + i], in_segs[i])
        yield send_done
        lo, hi = keep_lo, keep_hi
        distance //= 2
        round_idx += 1

    # Phase 2: recursive doubling allgather of owned ranges.
    distance = 1
    round_idx = 0
    while distance < pof2:
        partner = world(newrank ^ distance)
        outgoing = ops.concat(segments[lo:hi])
        send_done = ctx.isend(grank, partner, outgoing, double_base + round_idx)
        incoming = yield ctx.recv(grank, partner, double_base + round_idx)
        width = hi - lo
        if newrank & distance:
            in_lo, in_hi = lo - width, lo
            new_lo, new_hi = lo - width, hi
        else:
            in_lo, in_hi = hi, hi + width
            new_lo, new_hi = lo, hi + width
        in_segs = ops.split(incoming, in_hi - in_lo)
        segments[in_lo:in_hi] = in_segs
        yield send_done
        lo, hi = new_lo, new_hi
        distance <<= 1
        round_idx += 1

    result = ops.concat(segments)
    if grank < 2 * rem:
        yield ctx.isend(grank, grank + 1, result, final_tag)
    return result
