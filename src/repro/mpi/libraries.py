"""MPI library profiles: Spectrum MPI vs. MVAPICH2-GDR.

The paper's central systems comparison is IBM Spectrum MPI (Summit's
default) against MVAPICH2-GDR.  The observable differences for
GPU-resident buffers are:

* **Data path.**  Spectrum MPI (as configured by default in the paper's
  timeframe) stages GPU buffers through host memory: a D2H copy, a
  host-to-host network transfer, and an H2D copy.  MVAPICH2-GDR uses
  GPUDirect RDMA: the NIC reads/writes GPU memory directly.  In the flow
  model this appears as a large per-message latency gap for small messages
  and a bandwidth derate for large ones (imperfect staging pipelining).
* **Protocol thresholds.**  Eager vs rendezvous switchover.
* **Collective algorithm selection.**  Both libraries switch algorithms by
  message size and communicator size; MVAPICH2-GDR's GPU-tuned tables are
  a key part of its advantage.

Calibration sources: published OSU micro-benchmark comparisons of
MVAPICH2-GDR vs Spectrum MPI on Summit-class systems (GPU-GPU inter-node
small-message latency ≈3–5 µs vs ≈20–25 µs; large-message bandwidth ≈95%
vs ≈65–75% of link rate).  These constants, like the GPU efficiency
factors, are set once and never refitted per-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.units import KiB, MiB, microseconds

__all__ = ["MPI_LIBRARIES", "MPILibrary", "MVAPICH2_GDR", "SPECTRUM_MPI"]


@dataclass(frozen=True)
class MPILibrary:
    """Performance profile of one MPI library for GPU-resident buffers.

    Attributes
    ----------
    name:
        Display name.
    gdr:
        True when GPUDirect RDMA is used (no host staging).
    eager_threshold_bytes:
        Messages at or below this size use the eager protocol (no
        rendezvous handshake).
    sw_latency_intra_s / sw_latency_inter_s:
        Per-message software overhead added on top of fabric latency for
        intra-node / inter-node sends (stack traversal, staging setup).
    bw_derate_intra / bw_derate_inter:
        Fraction of bottleneck link bandwidth actually achieved for
        intra-node / inter-node payload movement.
    rendezvous_rtt_s:
        Extra handshake cost (RTS/CTS round trip) for rendezvous sends,
        added on top of the matched-receive wait.
    small_allreduce_threshold_bytes / large_allreduce_threshold_bytes:
        Algorithm selection: ≤ small → recursive doubling; ≥ large →
        ring; in between → Rabenseifner.
    """

    name: str
    gdr: bool
    eager_threshold_bytes: int
    sw_latency_intra_s: float
    sw_latency_inter_s: float
    bw_derate_intra: float
    bw_derate_inter: float
    rendezvous_rtt_s: float
    small_allreduce_threshold_bytes: int = 16 * KiB
    large_allreduce_threshold_bytes: int = 1 * MiB
    #: Free-form notes rendered in reports.
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.eager_threshold_bytes < 0:
            raise ValueError("eager_threshold_bytes must be >= 0")
        for f in ("sw_latency_intra_s", "sw_latency_inter_s", "rendezvous_rtt_s"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0")
        for f in ("bw_derate_intra", "bw_derate_inter"):
            if not 0 < getattr(self, f) <= 1:
                raise ValueError(f"{f} must be in (0, 1]")
        if self.small_allreduce_threshold_bytes > self.large_allreduce_threshold_bytes:
            raise ValueError("small threshold exceeds large threshold")

    # -- per-message costs -------------------------------------------------
    def sw_latency(self, same_node: bool) -> float:
        """Per-message software latency for this locality."""
        return self.sw_latency_intra_s if same_node else self.sw_latency_inter_s

    def bw_derate(self, same_node: bool) -> float:
        """Achieved fraction of link bandwidth for this locality."""
        return self.bw_derate_intra if same_node else self.bw_derate_inter

    def uses_rendezvous(self, nbytes: int) -> bool:
        """True when a message of this size takes the rendezvous path."""
        return nbytes > self.eager_threshold_bytes

    # -- collective algorithm selection -------------------------------------
    def allreduce_algorithm(self, nbytes: int, comm_size: int) -> str:
        """Algorithm name for an allreduce of ``nbytes`` over ``comm_size``.

        Mirrors the size-switched selection tables real libraries ship:
        latency-optimal recursive doubling for small messages,
        Rabenseifner in the middle, bandwidth-optimal ring for large.
        Tiny communicators always use recursive doubling.
        """
        if comm_size <= 2:
            return "recursive_doubling"
        if nbytes <= self.small_allreduce_threshold_bytes:
            return "recursive_doubling"
        if nbytes >= self.large_allreduce_threshold_bytes:
            return "ring"
        return "rabenseifner"


#: IBM Spectrum MPI as deployed on Summit in the paper's timeframe,
#: with default settings (GPU buffers staged through host memory).
#:
#: Two deliberate pathologies, both documented for this era and central
#: to the paper's "poor default scaling" observation:
#:
#: * GPU buffers stage through host memory, which shows up as a large
#:   per-message software latency (≈21 µs vs ≈3 µs for GDR) and a
#:   bandwidth derate;
#: * the device-buffer allreduce path used a latency-oriented
#:   recursive-doubling algorithm regardless of message size (both
#:   selection thresholds pushed to the GiB range), multiplying wire
#:   traffic by log2(p) relative to ring at large p — at 132 ranks this
#:   is what breaks overlap and produces the paper's ~70% default
#:   scaling efficiency (reproduced end-to-end by experiment E6).
SPECTRUM_MPI = MPILibrary(
    name="SpectrumMPI",
    gdr=False,
    eager_threshold_bytes=4 * KiB,
    sw_latency_intra_s=microseconds(7.0),
    sw_latency_inter_s=microseconds(21.0),
    bw_derate_intra=0.80,
    bw_derate_inter=0.80,
    rendezvous_rtt_s=microseconds(6.0),
    small_allreduce_threshold_bytes=1 << 30,
    large_allreduce_threshold_bytes=1 << 31,
    notes="default Summit MPI; host-staged GPU buffers (no GDR), "
          "doubling-based device allreduce at all sizes",
)

#: MVAPICH2-GDR 2.3.x with GPUDirect RDMA enabled, as tuned in the paper.
MVAPICH2_GDR = MPILibrary(
    name="MVAPICH2-GDR",
    gdr=True,
    eager_threshold_bytes=8 * KiB,
    sw_latency_intra_s=microseconds(1.6),
    sw_latency_inter_s=microseconds(3.2),
    bw_derate_intra=0.95,
    bw_derate_inter=0.93,
    rendezvous_rtt_s=microseconds(2.5),
    notes="GPUDirect RDMA; GPU-tuned collective selection tables",
)

#: NCCL 2.4-era profile, for context: Horovod's other GPU backend.  Not
#: an MPI library and not part of the paper's tuning surface (the paper's
#: point is reaching NCCL-class performance *with MPI*), so it lives
#: outside :data:`MPI_LIBRARIES`; the OSU example includes it for
#: comparison.  Ring-based at nearly all sizes, GPU-direct transports,
#: very low per-message software overhead.
NCCL = MPILibrary(
    name="NCCL",
    gdr=True,
    eager_threshold_bytes=64 * KiB,
    sw_latency_intra_s=microseconds(1.2),
    sw_latency_inter_s=microseconds(2.4),
    bw_derate_intra=0.97,
    bw_derate_inter=0.95,
    rendezvous_rtt_s=microseconds(1.5),
    small_allreduce_threshold_bytes=8 * KiB,
    large_allreduce_threshold_bytes=32 * KiB,
    notes="ring-based GPU collectives; context baseline, not a tuning target",
)

#: The paper's tuning surface: the two MPI libraries compared on Summit.
MPI_LIBRARIES: dict[str, MPILibrary] = {
    lib.name: lib for lib in (SPECTRUM_MPI, MVAPICH2_GDR)
}

#: Every modeled communication backend (including NCCL context profile).
ALL_LIBRARIES: dict[str, MPILibrary] = {
    **MPI_LIBRARIES,
    NCCL.name: NCCL,
}
