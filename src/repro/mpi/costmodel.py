"""Analytic α–β cost model for collectives.

Closed-form predictions of allreduce time under the classic Hockney model
(per-message latency α, per-byte cost β).  Two uses:

* **Cross-validation** — tests assert the discrete-event results track
  these formulas on uniform topologies (where the formulas are exact up to
  protocol overheads), guarding against schedule bugs in the simulated
  collectives.
* **Fast what-if sweeps** — the tuner can pre-screen knob settings
  analytically before running the full simulation.

Formulas (p ranks, n bytes):

========================  ====================================================
ring                      ``2(p-1)·α + 2·(p-1)/p·n·β``
recursive doubling        ``⌈log2 p⌉·(α + n·β)`` (+ fold round if p not 2^k)
Rabenseifner              ``2·log2(p)·α + 2·(p-1)/p·n·β`` (power of two)
tree (reduce+bcast)       ``2·⌈log2 p⌉·(α + n·β)``
========================  ====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mpi.communicator import Comm
from repro.mpi.libraries import MPILibrary

__all__ = ["AlphaBeta", "allreduce_time", "alpha_beta_for"]


@dataclass(frozen=True)
class AlphaBeta:
    """Hockney parameters: α seconds per message, β seconds per byte."""

    alpha: float
    beta: float

    def message(self, nbytes: float) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        return self.alpha + nbytes * self.beta


def alpha_beta_for(comm: Comm, inter_node: bool = True,
                   rendezvous: bool = True) -> AlphaBeta:
    """Derive α–β parameters from a communicator's fabric and library.

    Uses the route between the first pair of inter-node (or intra-node)
    ranks as representative; α includes the library software latency and,
    optionally, the rendezvous round trip.
    """
    topo = comm.fabric.topology
    lib: MPILibrary = comm.library
    pair = None
    for i in range(comm.size):
        for j in range(comm.size):
            if i != j and topo.same_node(comm.devices[i], comm.devices[j]) != inter_node:
                pair = (i, j)
                break
        if pair:
            break
    if pair is None:
        raise ValueError(
            f"communicator has no {'inter' if inter_node else 'intra'}-node pair"
        )
    src, dst = comm.devices[pair[0]], comm.devices[pair[1]]
    same = topo.same_node(src, dst)
    alpha = topo.route_latency(src, dst) + lib.sw_latency(same)
    if rendezvous:
        alpha += lib.rendezvous_rtt_s
    beta = 1.0 / (topo.route_bandwidth(src, dst) * lib.bw_derate(same))
    return AlphaBeta(alpha, beta)


def allreduce_time(algorithm: str, p: int, nbytes: int, ab: AlphaBeta) -> float:
    """Predicted allreduce time for ``algorithm`` on uniform parameters.

    For ``p == 1`` every algorithm is free.  Non-power-of-two sizes add the
    fold exchange where the implementation performs one.
    """
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if p == 1:
        return 0.0
    log2p = math.ceil(math.log2(p))
    pof2 = 1 << (p.bit_length() - 1)
    fold = 0.0 if p == pof2 else 2 * ab.message(nbytes)
    if algorithm == "ring":
        return 2 * (p - 1) * ab.alpha + 2 * ((p - 1) / p) * nbytes * ab.beta
    if algorithm == "recursive_doubling":
        rounds = int(math.log2(pof2))
        return fold + rounds * ab.message(nbytes)
    if algorithm == "rabenseifner":
        rounds = int(math.log2(pof2))
        return fold + 2 * rounds * ab.alpha + 2 * ((pof2 - 1) / pof2) * nbytes * ab.beta
    if algorithm == "tree":
        return 2 * log2p * ab.message(nbytes)
    raise KeyError(f"no analytic model for algorithm {algorithm!r}")
